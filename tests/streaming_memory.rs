//! Peak-memory regression harness for streaming tiled segmentation.
//!
//! The whole point of `segment_streaming` is that transient matrix memory
//! stays ≈ one halo-padded tile regardless of the image size. The
//! [`TileArena`] byte counter makes that guarantee observable; this test
//! pins it so it cannot silently rot.

// These tests run through the deprecated `SegHdc` wrappers on purpose:
// since the engine redesign they double as the regression suite proving the
// legacy entry points still delegate to `SegEngine` without observable
// change (see `tests/engine_equivalence.rs` for the direct comparison).
#![allow(deprecated)]

use seghdc_suite::prelude::*;

/// Bytes of one packed hypervector row at dimension `dim`.
fn row_bytes(dim: usize) -> usize {
    dim.div_ceil(64) * 8
}

#[test]
fn streaming_a_512x512_scan_stays_within_two_tiles_of_matrix_memory() {
    let dim = 2048;
    let (tile_edge, halo) = (128, 8);

    // A synthetic 512x512 scan (the workload class the paper's edge devices
    // cannot fit as one matrix).
    let profile = DatasetProfile::microscopy_scan_like().scaled(512, 512);
    let generator = NucleiImageGenerator::new(profile, 41).unwrap();
    let sample = generator.generate(0).unwrap();

    let config = SegHdcConfig::builder()
        .dimension(dim)
        .iterations(1)
        .beta(8)
        .build()
        .unwrap();
    let pipeline = SegHdc::new(config).unwrap();
    let tiles = TileConfig::square(tile_edge, halo).unwrap();
    let result = pipeline
        .segment_streaming(&ImageView::full(&sample.image), &tiles)
        .unwrap();

    assert_eq!(result.label_map.pixel_count(), 512 * 512);
    assert_eq!(result.tile_count(), 16);

    // The bound itself: no more matrix bytes than ~2 halo-padded tiles.
    let padded_tile_bytes = (tile_edge + 2 * halo) * (tile_edge + 2 * halo) * row_bytes(dim);
    assert!(result.peak_matrix_bytes > 0);
    assert!(
        result.peak_matrix_bytes <= 2 * padded_tile_bytes,
        "peak {} exceeds two padded tiles ({})",
        result.peak_matrix_bytes,
        2 * padded_tile_bytes
    );

    // Sanity on both sides: at least one full tile was actually resident,
    // and the whole-image matrix would have been an order of magnitude more.
    assert!(result.peak_matrix_bytes >= tile_edge * tile_edge * row_bytes(dim));
    let whole_image_bytes = 512 * 512 * row_bytes(dim);
    assert!(result.peak_matrix_bytes * 8 <= whole_image_bytes);
}

#[test]
fn arena_peak_scales_with_the_tile_not_the_image() {
    // Same tile size over two image sizes: the recorded peak must not grow
    // with the image.
    let config = SegHdcConfig::builder()
        .dimension(1024)
        .iterations(1)
        .beta(4)
        .build()
        .unwrap();
    let pipeline = SegHdc::new(config).unwrap();
    let tiles = TileConfig::square(16, 2).unwrap();

    let small = DynamicImage::Gray(GrayImage::filled(48, 48, 90).unwrap());
    let large = DynamicImage::Gray(GrayImage::filled(96, 96, 90).unwrap());
    let small_run = pipeline
        .segment_streaming(&ImageView::full(&small), &tiles)
        .unwrap();
    let large_run = pipeline
        .segment_streaming(&ImageView::full(&large), &tiles)
        .unwrap();
    assert_eq!(small_run.peak_matrix_bytes, large_run.peak_matrix_bytes);
}
