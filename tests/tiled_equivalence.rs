//! Tier-1 harness for the streaming tiled segmenter: `segment_streaming`
//! must be an observationally equivalent, memory-bounded spelling of
//! `segment`.
//!
//! * Single-tile runs are **byte-identical** to the whole-image path, for
//!   arbitrary (noise) images — the code paths share the encoder and the
//!   clusterer, and the stitcher must be the identity.
//! * Multi-tile runs are **permutation-equivalent** (the same partition of
//!   the pixels under a relabelling) for separable images, across
//!   randomized image dims, tile sizes and halos.
//! * Tile geometry invariants (exact interior cover, halo clamping) hold
//!   for arbitrary grids.

// These tests run through the deprecated `SegHdc` wrappers on purpose:
// since the engine redesign they double as the regression suite proving the
// legacy entry points still delegate to `SegEngine` without observable
// change (see `tests/engine_equivalence.rs` for the direct comparison).
#![allow(deprecated)]

use proptest::prelude::*;
use seghdc_suite::imaging::TileRect;
use seghdc_suite::prelude::*;

/// A deterministic pseudo-random grayscale image (pure noise; used where
/// only bit-level equivalence matters, not segmentation quality).
fn noise_image(width: usize, height: usize, seed: u64) -> DynamicImage {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 24) as u8
    };
    let data: Vec<u8> = (0..width * height).map(|_| next()).collect();
    DynamicImage::Gray(GrayImage::from_raw(width, height, data).unwrap())
}

/// A separable two-class image: a bright rectangle with deterministic
/// intensity jitter on a jittered dark background. High contrast and no
/// blur keep the clustering perfectly separable, which is what makes exact
/// partition equivalence between tiled and whole-image runs a fair demand.
fn rectangle_image(width: usize, height: usize, rect: TileRect) -> (DynamicImage, LabelMap) {
    let mut img = GrayImage::new(width, height).unwrap();
    let mut truth = LabelMap::new(width, height).unwrap();
    for y in 0..height {
        for x in 0..width {
            let jitter = ((x * 7 + y * 3) % 30) as u8;
            if rect.contains(x, y) {
                img.set(x, y, 200 + jitter).unwrap();
                truth.set(x, y, 1).unwrap();
            } else {
                img.set(x, y, 15 + jitter).unwrap();
            }
        }
    }
    (DynamicImage::Gray(img), truth)
}

fn config_for(seed: u64, dimension: usize, iterations: usize) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(dimension)
        .iterations(iterations)
        .beta(4)
        .seed(seed)
        .build()
        .unwrap()
}

/// Asserts that two label maps induce the same partition of the pixels
/// (see [`LabelMap::is_permutation_of`]).
fn assert_permutation_equivalent(stitched: &LabelMap, whole: &LabelMap, context: &str) {
    assert!(
        stitched.is_permutation_of(whole),
        "{context}: stitched map is not a relabelling of the whole-image map"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One tile covering the whole image must reproduce `segment` (and
    /// therefore `segment_batch`) byte for byte, even on pure noise.
    #[test]
    fn single_tile_streaming_is_byte_identical_to_segment(
        seed in any::<u64>(),
        width in 6usize..18,
        height in 6usize..18,
        halo in 0usize..3,
    ) {
        let image = noise_image(width, height, seed);
        let pipeline = SegHdc::new(config_for(seed, 512, 2)).unwrap();
        let whole = pipeline.segment(&image).unwrap();
        let batched = pipeline.segment_batch(std::slice::from_ref(&image)).unwrap();

        // Tile edge >= image edge: the grid degenerates to a single tile.
        let tiles = TileConfig::square(32, halo).unwrap();
        let streamed = pipeline
            .segment_streaming(&ImageView::full(&image), &tiles)
            .unwrap();

        prop_assert_eq!((streamed.tiles_x, streamed.tiles_y), (1, 1));
        prop_assert_eq!(streamed.label_map.as_raw(), whole.label_map.as_raw());
        prop_assert_eq!(
            streamed.label_map.as_raw(),
            batched[0].label_map.as_raw()
        );
    }

    /// Multi-tile runs produce the same pixel partition as the whole-image
    /// run across randomized dims, tile sizes and halos.
    #[test]
    fn multi_tile_streaming_is_permutation_equivalent(
        seed in any::<u64>(),
        width in 18usize..36,
        height in 18usize..36,
        tile_edge in 6usize..14,
        halo in 0usize..4,
        rect_seed in any::<u64>(),
    ) {
        // A bright rectangle somewhere well inside the image, covering
        // roughly a quarter of it so every run has both classes.
        let rect = TileRect {
            x: 2 + (rect_seed % 5) as usize,
            y: 2 + ((rect_seed >> 8) % 5) as usize,
            width: width / 2,
            height: height / 2,
        };
        let (image, _) = rectangle_image(width, height, rect);
        let pipeline = SegHdc::new(config_for(seed, 768, 3)).unwrap();
        let whole = pipeline.segment(&image).unwrap();

        let tiles = TileConfig::square(tile_edge, halo).unwrap();
        let streamed = pipeline
            .segment_streaming(&ImageView::full(&image), &tiles)
            .unwrap();

        prop_assert!(streamed.tile_count() > 1, "meant to exercise stitching");
        assert_permutation_equivalent(
            &streamed.label_map,
            &whole.label_map,
            &format!("{width}x{height}, tile {tile_edge}, halo {halo}, seed {seed}"),
        );
    }

    /// Geometry invariants for arbitrary grids: when the planner accepts
    /// the parameters, tile interiors cover every pixel exactly once and
    /// padded regions are clamped supersets of their interiors.
    #[test]
    fn tile_grid_interiors_partition_any_image(
        width in 1usize..40,
        height in 1usize..40,
        tile_width in 1usize..12,
        tile_height in 1usize..12,
        halo in 0usize..4,
    ) {
        let grid = match TileGrid::new(width, height, tile_width, tile_height, halo) {
            Ok(grid) => grid,
            Err(_) => {
                // The only data-dependent rejection: a halo at least as
                // large as a (clamped) tile edge.
                let clamped = tile_width.min(width).min(tile_height.min(height));
                prop_assert!(halo >= clamped);
                return Ok(());
            }
        };
        let mut covered = vec![0u32; width * height];
        for tile in grid.iter() {
            prop_assert!(tile.padded.x <= tile.interior.x);
            prop_assert!(tile.padded.y <= tile.interior.y);
            prop_assert!(tile.padded.right() >= tile.interior.right());
            prop_assert!(tile.padded.bottom() >= tile.interior.bottom());
            prop_assert!(tile.padded.right() <= width);
            prop_assert!(tile.padded.bottom() <= height);
            prop_assert!(tile.interior.x + tile.interior.width <= width);
            for y in tile.interior.y..tile.interior.bottom() {
                for x in tile.interior.x..tile.interior.right() {
                    covered[y * width + x] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        prop_assert!(grid.max_padded_pixels() >= grid.tile_width() * grid.tile_height());
    }
}

/// A class that exists only in the *last* tile must not be absorbed into an
/// unrelated earlier group: every other tile is pure background, so the
/// object cluster has no similar earlier centroid and — crucially — no
/// halo-overlap votes, and the stitcher must leave it as its own group,
/// exactly as the whole-image run separates it.
#[test]
fn object_confined_to_the_last_tile_keeps_its_own_label() {
    // 32x32, 16px tiles: object strictly inside the bottom-right tile,
    // more than `halo` pixels away from every tile boundary.
    let rect = TileRect {
        x: 21,
        y: 21,
        width: 8,
        height: 8,
    };
    let (image, _) = rectangle_image(32, 32, rect);
    let pipeline = SegHdc::new(config_for(3, 768, 3)).unwrap();
    let whole = pipeline.segment(&image).unwrap();
    let streamed = pipeline
        .segment_streaming(
            &ImageView::full(&image),
            &TileConfig::square(16, 2).unwrap(),
        )
        .unwrap();
    assert_eq!(streamed.tile_count(), 4);
    assert_permutation_equivalent(&streamed.label_map, &whole.label_map, "confined object");
    // The object really is separated from the background in the output.
    let object_label = streamed.label_map.get(25, 25).unwrap();
    let background_label = streamed.label_map.get(2, 2).unwrap();
    assert_ne!(object_label, background_label);
}

/// RGB images stream and stitch exactly like grayscale ones.
#[test]
fn rgb_multi_tile_streaming_matches_the_whole_image_partition() {
    let rect = TileRect {
        x: 6,
        y: 5,
        width: 14,
        height: 12,
    };
    let (gray, _) = rectangle_image(28, 26, rect);
    let image = DynamicImage::Rgb(gray.to_rgb());
    let pipeline = SegHdc::new(config_for(11, 768, 3)).unwrap();
    let whole = pipeline.segment(&image).unwrap();
    let streamed = pipeline
        .segment_streaming(
            &ImageView::full(&image),
            &TileConfig::square(10, 2).unwrap(),
        )
        .unwrap();
    assert!(streamed.tile_count() > 1);
    assert_permutation_equivalent(&streamed.label_map, &whole.label_map, "rgb");
}

/// `segment_streaming_batch` pipelines images in parallel and agrees with
/// per-image streaming runs.
#[test]
fn streaming_batch_agrees_with_per_image_runs() {
    let (a, _) = rectangle_image(
        24,
        20,
        TileRect {
            x: 3,
            y: 3,
            width: 12,
            height: 10,
        },
    );
    let (b, _) = rectangle_image(
        30,
        30,
        TileRect {
            x: 8,
            y: 8,
            width: 15,
            height: 15,
        },
    );
    let pipeline = SegHdc::new(config_for(5, 512, 2)).unwrap();
    let tiles = TileConfig::square(12, 2).unwrap();
    let batch = pipeline
        .segment_streaming_batch(&[a.clone(), b.clone()], &tiles)
        .unwrap();
    assert_eq!(batch.len(), 2);
    for (image, batched) in [a, b].iter().zip(&batch) {
        let single = pipeline
            .segment_streaming(&ImageView::full(image), &tiles)
            .unwrap();
        assert_eq!(single.label_map.as_raw(), batched.label_map.as_raw());
    }
}

/// Slow full-scale check (run with `cargo test --release -- --ignored`):
/// a 1024×1024 synthetic microscopy scan streams through bounded tiles,
/// stitches into at most `clusters` groups, closely agrees with the
/// whole-image segmentation and respects the arena memory bound.
#[test]
#[ignore = "slow: segments a 1024x1024 scan twice; run with --release -- --ignored"]
fn large_scan_1024_stitches_consistently() {
    let profile = DatasetProfile::microscopy_scan_like();
    let generator = NucleiImageGenerator::new(profile, 2023).unwrap();
    let sample = generator.generate(0).unwrap();
    assert_eq!(sample.image.width(), 1024);

    let config = config_for(7, 2048, 3);
    let pipeline = SegHdc::new(config).unwrap();
    let tiles = TileConfig::square(256, 8).unwrap();

    let streamed = pipeline
        .segment_streaming(&ImageView::full(&sample.image), &tiles)
        .unwrap();
    assert_eq!((streamed.tiles_x, streamed.tiles_y), (4, 4));
    // Background and nuclei groups, plus at most a handful of extra groups
    // for nuclei confined to a single tile's interior (the vote-gated
    // stitcher deliberately keeps those separate rather than force-merging).
    assert!(streamed.stitched_labels >= 2);
    assert!(
        streamed.stitched_labels <= 2 + streamed.tile_count(),
        "unexpected fragmentation: {} groups",
        streamed.stitched_labels
    );

    // Memory bound: at most ~2 halo-padded tiles' worth of matrix bytes,
    // far below the ~268 MB whole-image matrix.
    let stride_bytes = 2048usize.div_ceil(64) * 8;
    let padded_tile_bytes = (256 + 2 * 8) * (256 + 2 * 8) * stride_bytes;
    assert!(streamed.peak_matrix_bytes <= 2 * padded_tile_bytes);
    assert!(streamed.peak_matrix_bytes < 1024 * 1024 * stride_bytes / 8);

    // Quality: close agreement with the whole-image run (boundary pixels on
    // blurred nucleus rims may legitimately flip) and with the ground truth.
    let whole = pipeline.segment(&sample.image).unwrap();
    let agreement =
        metrics::matched_binary_iou(&streamed.label_map, &whole.label_map.to_binary()).unwrap();
    assert!(agreement > 0.95, "tiled vs whole agreement IoU {agreement}");
    let truth = sample.ground_truth.to_binary();
    let whole_iou = metrics::matched_binary_iou(&whole.label_map, &truth).unwrap();
    let tiled_iou = metrics::matched_binary_iou(&streamed.label_map, &truth).unwrap();
    assert!(
        (whole_iou - tiled_iou).abs() < 0.05,
        "whole {whole_iou} vs tiled {tiled_iou}"
    );
    assert!(tiled_iou > 0.8, "tiled IoU {tiled_iou}");
}
