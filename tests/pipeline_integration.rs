//! Cross-crate integration tests: synthetic data generation → SegHDC
//! segmentation → metric scoring, exercising the whole stack (through the
//! `SegEngine` request API) the way the experiment harnesses do.

use seghdc_suite::prelude::*;

fn segment_one(engine: &SegEngine, image: &DynamicImage) -> seghdc::SegmentOutput {
    engine
        .run(&SegmentRequest::image(image))
        .unwrap()
        .outputs
        .remove(0)
}

fn quick_config(clusters: usize) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(1500)
        .beta(6)
        .clusters(clusters)
        .iterations(4)
        .build()
        .expect("parameters are valid")
}

#[test]
fn seghdc_segments_synthetic_bbbc005_images_accurately() {
    let dataset =
        SyntheticDataset::new(DatasetProfile::bbbc005_like().scaled(72, 72), 31, 2).unwrap();
    let engine = SegEngine::new(quick_config(2)).unwrap();
    for sample in dataset.iter() {
        let segmentation = segment_one(&engine, &sample.image);
        let iou =
            metrics::matched_binary_iou(&segmentation.label_map, &sample.ground_truth.to_binary())
                .unwrap();
        assert!(iou > 0.7, "{}: IoU {iou}", sample.name);
    }
}

#[test]
fn seghdc_beats_the_ablations_on_dsb2018_style_images() {
    // The qualitative ordering of Table I: SegHDC > RColor and SegHDC > RPos.
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(64, 64), 17, 2).unwrap();
    let score = |config: SegHdcConfig| -> f64 {
        let engine = SegEngine::new(config).unwrap();
        let mut total = 0.0;
        for sample in dataset.iter() {
            let segmentation = segment_one(&engine, &sample.image);
            total += metrics::matched_binary_iou(
                &segmentation.label_map,
                &sample.ground_truth.to_binary(),
            )
            .unwrap();
        }
        total / dataset.len() as f64
    };
    let seghdc = score(quick_config(2));
    let rpos = score(SegHdcConfig {
        position_encoding: PositionEncoding::Random,
        ..quick_config(2)
    });
    let rcolor = score(SegHdcConfig {
        color_encoding: ColorEncoding::Random,
        ..quick_config(2)
    });
    assert!(seghdc > rpos, "SegHDC {seghdc} vs RPos {rpos}");
    assert!(seghdc > rcolor, "SegHDC {seghdc} vs RColor {rcolor}");
}

#[test]
fn seghdc_handles_grayscale_and_rgb_profiles_alike() {
    for profile in [
        DatasetProfile::bbbc005_like().scaled(48, 48), // 1 channel
        DatasetProfile::monuseg_like().scaled(48, 48), // 3 channels
    ] {
        let clusters = if profile.name.starts_with("MoNuSeg") {
            3
        } else {
            2
        };
        let dataset = SyntheticDataset::new(profile, 3, 1).unwrap();
        let sample = dataset.sample(0).unwrap();
        let engine = SegEngine::new(quick_config(clusters)).unwrap();
        let segmentation = segment_one(&engine, &sample.image);
        assert_eq!(segmentation.label_map.pixel_count(), 48 * 48);
        assert!(segmentation.label_map.distinct_labels() <= clusters);
    }
}

#[test]
fn segmentation_results_are_reproducible_across_pipeline_instances() {
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(56, 56), 77, 1).unwrap();
    let sample = dataset.sample(0).unwrap();
    let a = segment_one(&SegEngine::new(quick_config(2)).unwrap(), &sample.image);
    let b = segment_one(&SegEngine::new(quick_config(2)).unwrap(), &sample.image);
    assert_eq!(a.label_map, b.label_map);
    assert_eq!(a.cluster_sizes, b.cluster_sizes);
}

#[test]
fn predicted_masks_roundtrip_through_pnm_files() {
    let dataset =
        SyntheticDataset::new(DatasetProfile::bbbc005_like().scaled(40, 40), 5, 1).unwrap();
    let sample = dataset.sample(0).unwrap();
    let engine = SegEngine::new(quick_config(2)).unwrap();
    let segmentation = segment_one(&engine, &sample.image);
    let visualization = segmentation.label_map.to_gray_visualization();

    let mut buffer = Vec::new();
    imaging::pnm::write_pgm(&visualization, &mut buffer).unwrap();
    let reloaded = imaging::pnm::read_pgm(buffer.as_slice()).unwrap();
    assert_eq!(reloaded, visualization);
}
