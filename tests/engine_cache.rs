//! Cache-semantics harness for the engine's persistent codebook cache at
//! the public API level: keying, byte-capacity eviction, and cross-thread
//! sharing under `segment_batch`-style parallelism.

use seghdc_suite::prelude::*;
use std::sync::Arc;

fn images(count: usize, edge: usize) -> Vec<DynamicImage> {
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(edge, edge), 29, count)
            .unwrap();
    dataset.iter().map(|s| s.image).collect()
}

fn config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(512)
        .beta(4)
        .iterations(2)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn a_parallel_batch_of_one_shape_builds_codebooks_exactly_once() {
    let batch = images(6, 32);
    let engine = SegEngine::new(config(0)).unwrap();
    let first = engine.run(&SegmentRequest::batch(&batch)).unwrap();
    // Six parallel images, one shape: one miss, zero redundant builds.
    assert_eq!(first.telemetry.cache_misses, 1);
    assert_eq!(first.telemetry.cache_entries, 1);
    // The next batch is fully warm.
    let second = engine.run(&SegmentRequest::batch(&batch)).unwrap();
    assert_eq!(second.telemetry.cache_misses, 1);
    assert_eq!(second.telemetry.cache_hits, 1);
    for (a, b) in first.outputs.iter().zip(&second.outputs) {
        assert_eq!(a.label_map.as_raw(), b.label_map.as_raw());
    }
}

#[test]
fn different_seed_shape_or_encoding_misses_the_cache() {
    let image_a = images(1, 32).remove(0);
    let image_b = images(1, 24).remove(0);
    let cache = Arc::new(CodebookCache::with_capacity(usize::MAX));

    let engine = SegEngine::builder(config(0))
        .cache(Arc::clone(&cache))
        .build()
        .unwrap();
    engine.run(&SegmentRequest::image(&image_a)).unwrap();
    assert_eq!(cache.stats().misses, 1);

    // Different shape: miss.
    engine.run(&SegmentRequest::image(&image_b)).unwrap();
    assert_eq!(cache.stats().misses, 2);

    // Different seed, same shape: miss.
    let other_seed = SegEngine::builder(config(1))
        .cache(Arc::clone(&cache))
        .build()
        .unwrap();
    other_seed.run(&SegmentRequest::image(&image_a)).unwrap();
    assert_eq!(cache.stats().misses, 3);

    // Different encoding variant, same seed and shape: miss.
    let mut ablation = config(0);
    ablation.position_encoding = PositionEncoding::Random;
    let other_encoding = SegEngine::builder(ablation)
        .cache(Arc::clone(&cache))
        .build()
        .unwrap();
    other_encoding
        .run(&SegmentRequest::image(&image_a))
        .unwrap();
    assert_eq!(cache.stats().misses, 4);

    // Same seed/shape/encoding but different iteration count: HIT — the
    // codebooks do not depend on clustering parameters.
    let mut more_iterations = config(0);
    more_iterations.iterations = 5;
    let same_codebooks = SegEngine::builder(more_iterations)
        .cache(Arc::clone(&cache))
        .build()
        .unwrap();
    same_codebooks
        .run(&SegmentRequest::image(&image_a))
        .unwrap();
    assert_eq!(cache.stats().misses, 4);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn byte_capacity_bounds_the_cache_and_evicts_lru_first() {
    let image_a = images(1, 32).remove(0);
    let image_b = images(1, 28).remove(0);
    let image_c = images(1, 24).remove(0);

    // Measure one entry, then bound the engine cache to roughly two.
    let probe = SegEngine::new(config(0)).unwrap();
    probe.run(&SegmentRequest::image(&image_a)).unwrap();
    let one_entry = probe.telemetry().cache_bytes;
    assert!(one_entry > 0);

    let engine = SegEngine::builder(config(0))
        .codebook_cache_bytes(one_entry * 2 + one_entry / 2)
        .build()
        .unwrap();
    engine.run(&SegmentRequest::image(&image_a)).unwrap();
    engine.run(&SegmentRequest::image(&image_b)).unwrap();
    // Touch A so B is the least recently used, then insert C.
    engine.run(&SegmentRequest::image(&image_a)).unwrap();
    engine.run(&SegmentRequest::image(&image_c)).unwrap();
    let telemetry = engine.telemetry();
    assert_eq!(telemetry.cache_evictions, 1);
    assert!(telemetry.cache_bytes <= one_entry * 2 + one_entry / 2);

    // A must still be resident (recently used), B must rebuild.
    engine.run(&SegmentRequest::image(&image_a)).unwrap();
    assert_eq!(engine.telemetry().cache_misses, 3);
    engine.run(&SegmentRequest::image(&image_b)).unwrap();
    assert_eq!(engine.telemetry().cache_misses, 4);
}

#[test]
fn one_engine_is_shareable_across_request_threads() {
    let batch = images(2, 24);
    let engine = Arc::new(SegEngine::new(config(0)).unwrap());
    let mut label_maps = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let batch = &batch;
                scope.spawn(move || {
                    engine
                        .run(&SegmentRequest::batch(batch))
                        .unwrap()
                        .outputs
                        .into_iter()
                        .map(|o| o.label_map)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            label_maps.push(handle.join().unwrap());
        }
    });
    // One codebook build total, shared by every thread; identical outputs.
    assert_eq!(engine.telemetry().cache_misses, 1);
    assert_eq!(engine.telemetry().cache_hits, 3);
    for maps in &label_maps[1..] {
        for (a, b) in label_maps[0].iter().zip(maps) {
            assert_eq!(a.as_raw(), b.as_raw());
        }
    }
}
