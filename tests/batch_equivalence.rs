//! Property tests for the batched engine: `segment_batch` must be an
//! observationally exact, faster spelling of per-image `segment`.

// These tests run through the deprecated `SegHdc` wrappers on purpose:
// since the engine redesign they double as the regression suite proving the
// legacy entry points still delegate to `SegEngine` without observable
// change (see `tests/engine_equivalence.rs` for the direct comparison).
#![allow(deprecated)]

use proptest::prelude::*;
use seghdc_suite::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and cluster count, segmenting a batch of images (two of
    /// them sharing a shape, so the codebook is genuinely reused) produces
    /// byte-identical label maps to segmenting each image on its own.
    #[test]
    fn segment_batch_equals_per_image_segment(
        seed in any::<u64>(),
        clusters in 2usize..4,
    ) {
        let profile = DatasetProfile::dsb2018_like().scaled(32, 32);
        let dataset = SyntheticDataset::new(profile, seed, 2).unwrap();
        let other = SyntheticDataset::new(
            DatasetProfile::bbbc005_like().scaled(24, 40),
            seed,
            1,
        )
        .unwrap();
        let images = vec![
            dataset.sample(0).unwrap().image,
            dataset.sample(1).unwrap().image,
            other.sample(0).unwrap().image,
        ];

        let config = SegHdcConfig::builder()
            .dimension(512)
            .beta(4)
            .clusters(clusters)
            .iterations(2)
            .seed(seed)
            .build()
            .unwrap();
        let pipeline = SegHdc::new(config).unwrap();

        let batch = pipeline.segment_batch(&images).unwrap();
        prop_assert_eq!(batch.len(), images.len());
        for (image, batched) in images.iter().zip(&batch) {
            let single = pipeline.segment(image).unwrap();
            prop_assert_eq!(single.label_map.as_raw(), batched.label_map.as_raw());
            prop_assert_eq!(&single.cluster_sizes, &batched.cluster_sizes);
            prop_assert_eq!(single.iterations_run, batched.iterations_run);
        }
    }

    /// The encoder's matrix path and per-pixel path agree bit-for-bit on
    /// real synthetic images, for any seed and odd dimensions.
    #[test]
    fn encode_matrix_equals_encode_pixel(
        seed in any::<u64>(),
        dim in 256usize..700,
    ) {
        let dataset = SyntheticDataset::new(
            DatasetProfile::monuseg_like().scaled(16, 16),
            seed,
            1,
        )
        .unwrap();
        let image = dataset.sample(0).unwrap().image;
        let config = SegHdcConfig::builder()
            .dimension(dim)
            .beta(4)
            .iterations(1)
            .seed(seed)
            .build()
            .unwrap();
        let pipeline = SegHdc::new(config).unwrap();
        let encoder = pipeline
            .build_encoder(image.width(), image.height(), image.channels())
            .unwrap();
        let matrix = encoder.encode_matrix(&image).unwrap();
        prop_assert_eq!(matrix.rows(), image.pixel_count());
        for index in [0usize, 7, 100, 255] {
            let x = index % image.width();
            let y = index / image.width();
            let scalar = encoder.encode_pixel(&image, x, y).unwrap();
            prop_assert_eq!(matrix.row(index).to_hypervector(), scalar);
        }
    }
}
