//! Equivalence harness for the engine redesign: every one of the five
//! legacy `SegHdc` entry points must behave as a thin wrapper over
//! `SegEngine` —
//!
//! * `segment` / `segment_batch`: **byte-identical** label maps to the
//!   engine's whole-image request path;
//! * `segment_streaming` / `segment_streaming_in` /
//!   `segment_streaming_batch`: byte-identical to the engine's tiled
//!   request path, and **permutation-equivalent** (the same partition of
//!   the pixels) to whole-image execution.
#![allow(deprecated)]

use seghdc_suite::prelude::*;

/// A bright square on a dark background with intensity jitter: the
/// high-contrast case whose multi-tile stitching is stable, used for the
/// permutation-equivalence assertions (cf. `tests/tiled_equivalence.rs`).
fn square_image(size: usize) -> DynamicImage {
    let mut img = GrayImage::new(size, size).unwrap();
    let lo = size / 4;
    let hi = 3 * size / 4;
    for y in 0..size {
        for x in 0..size {
            let jitter = ((x * 7 + y * 3) % 30) as u8;
            if (lo..hi).contains(&x) && (lo..hi).contains(&y) {
                img.set(x, y, 200 + jitter).unwrap();
            } else {
                img.set(x, y, 15 + jitter).unwrap();
            }
        }
    }
    DynamicImage::Gray(img)
}

fn sample_images() -> Vec<DynamicImage> {
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(40, 40), 19, 2).unwrap();
    let mut images: Vec<DynamicImage> = dataset.iter().map(|s| s.image).collect();
    // A second shape so batch paths resolve two codebooks.
    let other = SyntheticDataset::new(DatasetProfile::bbbc005_like().scaled(32, 32), 23, 1)
        .unwrap()
        .sample(0)
        .unwrap()
        .image;
    images.push(other);
    images
}

fn config() -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(768)
        .beta(4)
        .iterations(3)
        .build()
        .unwrap()
}

#[test]
fn legacy_segment_is_byte_identical_to_an_engine_whole_image_run() {
    let engine = SegEngine::new(config()).unwrap();
    let legacy = SegHdc::new(config()).unwrap();
    for image in sample_images() {
        let wrapped = legacy.segment(&image).unwrap();
        let direct = engine
            .run(&SegmentRequest::image(&image).whole_image())
            .unwrap();
        assert_eq!(
            wrapped.label_map.as_raw(),
            direct.outputs[0].label_map.as_raw()
        );
        assert_eq!(wrapped.cluster_sizes, direct.outputs[0].cluster_sizes);
        assert_eq!(wrapped.iterations_run, direct.outputs[0].iterations_run);
    }
}

#[test]
fn legacy_segment_batch_is_byte_identical_to_an_engine_batch_run() {
    let images = sample_images();
    let engine = SegEngine::new(config()).unwrap();
    let legacy = SegHdc::new(config()).unwrap();
    let wrapped = legacy.segment_batch(&images).unwrap();
    let direct = engine
        .run(&SegmentRequest::batch(&images).whole_image())
        .unwrap();
    assert_eq!(wrapped.len(), direct.outputs.len());
    for (w, d) in wrapped.iter().zip(&direct.outputs) {
        assert_eq!(w.label_map.as_raw(), d.label_map.as_raw());
        assert_eq!(w.cluster_sizes, d.cluster_sizes);
    }
    assert!(legacy.segment_batch(&[]).unwrap().is_empty());
}

#[test]
fn legacy_streaming_matches_engine_tiled_and_permutes_whole_image() {
    let image = square_image(40);
    let tiles = TileConfig::square(16, 2).unwrap();
    let engine = SegEngine::new(config()).unwrap();
    let legacy = SegHdc::new(config()).unwrap();

    let wrapped = legacy
        .segment_streaming(&ImageView::full(&image), &tiles)
        .unwrap();
    let direct = engine
        .run(&SegmentRequest::image(&image).tiled(tiles))
        .unwrap();
    assert_eq!(
        wrapped.label_map.as_raw(),
        direct.outputs[0].label_map.as_raw()
    );
    let ExecutedMode::Tiled {
        tiles_x,
        tiles_y,
        stitched_labels,
    } = direct.outputs[0].mode
    else {
        panic!("tiled request must execute tiled");
    };
    assert_eq!((wrapped.tiles_x, wrapped.tiles_y), (tiles_x, tiles_y));
    assert_eq!(wrapped.stitched_labels, stitched_labels);

    // Permutation-equivalence against the whole-image engine path.
    let whole = engine
        .run(&SegmentRequest::image(&image).whole_image())
        .unwrap();
    assert!(wrapped
        .label_map
        .is_permutation_of(&whole.outputs[0].label_map));
}

#[test]
fn legacy_streaming_in_reuses_the_caller_arena_like_the_engine_does() {
    let image = sample_images().remove(0);
    let tiles = TileConfig::square(16, 2).unwrap();
    let legacy = SegHdc::new(config()).unwrap();
    let engine = SegEngine::new(config()).unwrap();

    let mut wrapper_arena = TileArena::new();
    let wrapped = legacy
        .segment_streaming_in(&ImageView::full(&image), &tiles, &mut wrapper_arena)
        .unwrap();
    let mut engine_arena = TileArena::new();
    let direct = engine
        .run_tiled_in(&ImageView::full(&image), &tiles, &mut engine_arena)
        .unwrap();
    assert_eq!(wrapped.label_map.as_raw(), direct.label_map.as_raw());
    assert_eq!(
        wrapper_arena.peak_matrix_bytes(),
        engine_arena.peak_matrix_bytes()
    );
    // The caller-owned arena keeps accumulating across calls.
    let peak = wrapper_arena.peak_matrix_bytes();
    assert!(peak > 0);
    legacy
        .segment_streaming_in(&ImageView::full(&image), &tiles, &mut wrapper_arena)
        .unwrap();
    assert_eq!(wrapper_arena.peak_matrix_bytes(), peak);
}

#[test]
fn legacy_streaming_batch_is_byte_identical_to_an_engine_tiled_batch() {
    let images = vec![square_image(40), square_image(32), square_image(24)];
    let tiles = TileConfig::square(16, 2).unwrap();
    let engine = SegEngine::new(config()).unwrap();
    let legacy = SegHdc::new(config()).unwrap();
    let wrapped = legacy.segment_streaming_batch(&images, &tiles).unwrap();
    let direct = engine
        .run(&SegmentRequest::batch(&images).tiled(tiles))
        .unwrap();
    assert_eq!(wrapped.len(), direct.outputs.len());
    for (w, d) in wrapped.iter().zip(&direct.outputs) {
        assert_eq!(w.label_map.as_raw(), d.label_map.as_raw());
    }
    for (image, w) in images.iter().zip(&wrapped) {
        // Every streaming-batch output is permutation-equivalent to its
        // whole-image segmentation...
        let whole = engine
            .run(&SegmentRequest::image(image).whole_image())
            .unwrap();
        assert!(w.label_map.is_permutation_of(&whole.outputs[0].label_map));
        // ...and carries its *own* arena peak (legacy semantics: one fresh
        // arena per image), not a batch-wide maximum.
        let single = legacy
            .segment_streaming(&ImageView::full(image), &tiles)
            .unwrap();
        assert_eq!(w.peak_matrix_bytes, single.peak_matrix_bytes);
    }
    // Differently-sized images must report different peaks.
    assert_ne!(
        wrapped[0].peak_matrix_bytes, wrapped[2].peak_matrix_bytes,
        "per-image peaks must not be flattened to the batch maximum"
    );
    assert!(legacy
        .segment_streaming_batch(&[], &tiles)
        .unwrap()
        .is_empty());
}

#[test]
fn auto_planned_runs_match_forced_modes() {
    // Auto mode must not change outputs, only pick between the same two
    // executors: under the budget it is byte-identical to whole-image,
    // over the budget byte-identical to tiled.
    let image = sample_images().remove(0);
    let under = SegEngine::new(config()).unwrap();
    let auto = under.run(&SegmentRequest::image(&image)).unwrap();
    let whole = under
        .run(&SegmentRequest::image(&image).whole_image())
        .unwrap();
    assert_eq!(
        auto.outputs[0].label_map.as_raw(),
        whole.outputs[0].label_map.as_raw()
    );
    assert!(matches!(auto.outputs[0].mode, ExecutedMode::WholeImage));

    let tiles = TileConfig::square(16, 2).unwrap();
    let over = SegEngine::builder(config())
        .matrix_budget_bytes(1)
        .auto_tile(tiles)
        .build()
        .unwrap();
    let auto = over.run(&SegmentRequest::image(&image)).unwrap();
    let tiled = over
        .run(&SegmentRequest::image(&image).tiled(tiles))
        .unwrap();
    assert_eq!(
        auto.outputs[0].label_map.as_raw(),
        tiled.outputs[0].label_map.as_raw()
    );
    assert!(matches!(auto.outputs[0].mode, ExecutedMode::Tiled { .. }));
}
