//! Workspace-level property-based tests: invariants that must hold across
//! crate boundaries for arbitrary (small) inputs.

// These tests run through the deprecated `SegHdc` wrappers on purpose:
// since the engine redesign they double as the regression suite proving the
// legacy entry points still delegate to `SegEngine` without observable
// change (see `tests/engine_equivalence.rs` for the direct comparison).
#![allow(deprecated)]

use proptest::prelude::*;
use seghdc_suite::prelude::*;

fn arb_profile() -> impl Strategy<Value = DatasetProfile> {
    (0usize..3, 32usize..72, 32usize..72).prop_map(|(which, width, height)| {
        let base = match which {
            0 => DatasetProfile::bbbc005_like(),
            1 => DatasetProfile::dsb2018_like(),
            _ => DatasetProfile::monuseg_like(),
        };
        base.scaled(width, height)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated sample has a consistent shape and a non-degenerate
    /// ground truth, for any profile and seed.
    #[test]
    fn synthetic_samples_are_well_formed(profile in arb_profile(), seed in any::<u64>()) {
        let dataset = SyntheticDataset::new(profile, seed, 1).unwrap();
        let sample = dataset.sample(0).unwrap();
        prop_assert_eq!(sample.image.width(), sample.ground_truth.width());
        prop_assert_eq!(sample.image.height(), sample.ground_truth.height());
        let coverage = sample.ground_truth.foreground_pixels() as f64
            / sample.ground_truth.pixel_count() as f64;
        prop_assert!(coverage > 0.0);
        prop_assert!(coverage < 0.95);
    }

    /// The SegHDC label map always covers every pixel with a label smaller
    /// than the cluster count, whatever the seed and cluster count.
    #[test]
    fn seghdc_labels_are_always_in_range(
        seed in any::<u64>(),
        clusters in 2usize..4,
        dim in 256usize..1024,
    ) {
        let dataset = SyntheticDataset::new(
            DatasetProfile::dsb2018_like().scaled(40, 40),
            seed,
            1,
        )
        .unwrap();
        let sample = dataset.sample(0).unwrap();
        let config = SegHdcConfig::builder()
            .dimension(dim)
            .beta(4)
            .clusters(clusters)
            .iterations(2)
            .seed(seed)
            .build()
            .unwrap();
        let segmentation = SegHdc::new(config).unwrap().segment(&sample.image).unwrap();
        prop_assert_eq!(segmentation.label_map.pixel_count(), 1600);
        for &label in segmentation.label_map.as_raw() {
            prop_assert!((label as usize) < clusters);
        }
        let assigned: usize = segmentation.cluster_sizes.iter().sum();
        prop_assert_eq!(assigned, 1600);
    }

    /// Matched IoU is invariant under any relabelling of the prediction's
    /// cluster identifiers (the property that makes unsupervised scoring
    /// fair).
    #[test]
    fn matched_iou_is_invariant_to_label_permutation(seed in any::<u64>()) {
        let dataset = SyntheticDataset::new(
            DatasetProfile::bbbc005_like().scaled(40, 40),
            seed,
            1,
        )
        .unwrap();
        let sample = dataset.sample(0).unwrap();
        let truth = sample.ground_truth.to_binary();
        let config = SegHdcConfig::builder()
            .dimension(512)
            .beta(4)
            .iterations(2)
            .build()
            .unwrap();
        let prediction = SegHdc::new(config).unwrap().segment(&sample.image).unwrap().label_map;
        let original = metrics::matched_binary_iou(&prediction, &truth).unwrap();

        // Swap the two cluster ids.
        let mut mapping = std::collections::BTreeMap::new();
        mapping.insert(0u32, 1u32);
        mapping.insert(1u32, 0u32);
        let swapped = prediction.remap(&mapping);
        let after = metrics::matched_binary_iou(&swapped, &truth).unwrap();
        prop_assert!((original - after).abs() < 1e-12);
    }

    /// The device model is monotone: a strictly larger workload never gets a
    /// smaller latency estimate, and adding memory never causes an OOM.
    #[test]
    fn device_model_is_monotone(
        width in 32usize..512,
        height in 32usize..512,
        dim in 200usize..2000,
        iterations in 1usize..10,
    ) {
        let pi = DeviceProfile::raspberry_pi_4();
        let small = Workload::seghdc(width, height, 3, dim, 2, iterations);
        let bigger = Workload::seghdc(width, height, 3, dim * 2, 2, iterations + 1);
        let small_estimate = pi.estimate(&small).unwrap().total();
        let bigger_estimate = pi.estimate(&bigger).unwrap().total();
        prop_assert!(bigger_estimate >= small_estimate);
        prop_assert!(bigger.peak_memory_bytes >= small.peak_memory_bytes);
    }
}
