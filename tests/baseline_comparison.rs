//! Integration tests comparing SegHDC with the CNN baseline across crates —
//! the qualitative claims of Table I and Table II at test scale.

// These tests run through the deprecated `SegHdc` wrappers on purpose:
// since the engine redesign they double as the regression suite proving the
// legacy entry points still delegate to `SegEngine` without observable
// change (see `tests/engine_equivalence.rs` for the direct comparison).
#![allow(deprecated)]

use seghdc_suite::prelude::*;

#[test]
fn seghdc_matches_or_beats_the_scaled_baseline_on_an_easy_profile() {
    let dataset =
        SyntheticDataset::new(DatasetProfile::bbbc005_like().scaled(56, 56), 9, 1).unwrap();
    let sample = dataset.sample(0).unwrap();
    let truth = sample.ground_truth.to_binary();

    let baseline_config = KimConfig {
        feature_channels: 20,
        max_iterations: 25,
        ..KimConfig::tiny()
    };
    let baseline = KimSegmenter::new(baseline_config)
        .unwrap()
        .segment(&sample.image)
        .unwrap();
    let baseline_iou = metrics::matched_binary_iou(&baseline.label_map, &truth).unwrap();

    let seghdc_config = SegHdcConfig::builder()
        .dimension(1500)
        .beta(6)
        .iterations(4)
        .build()
        .unwrap();
    let seghdc = SegHdc::new(seghdc_config)
        .unwrap()
        .segment(&sample.image)
        .unwrap();
    let seghdc_iou = metrics::matched_binary_iou(&seghdc.label_map, &truth).unwrap();

    assert!(
        seghdc_iou + 0.05 >= baseline_iou,
        "SegHDC {seghdc_iou} should not trail the baseline {baseline_iou} by a margin"
    );
    assert!(seghdc_iou > 0.7, "SegHDC IoU {seghdc_iou}");
}

#[test]
fn seghdc_is_much_faster_than_the_baseline_at_equal_image_size() {
    // Wall-clock version of the Table II asymmetry, at test scale. The
    // baseline here runs far fewer iterations and channels than the
    // reference configuration, so the true gap is much larger still.
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(48, 48), 3, 1).unwrap();
    let sample = dataset.sample(0).unwrap();

    let start = std::time::Instant::now();
    let seghdc_config = SegHdcConfig::builder()
        .dimension(800)
        .beta(6)
        .iterations(3)
        .build()
        .unwrap();
    SegHdc::new(seghdc_config)
        .unwrap()
        .segment(&sample.image)
        .unwrap();
    let seghdc_time = start.elapsed();

    let start = std::time::Instant::now();
    let baseline_config = KimConfig {
        feature_channels: 32,
        max_iterations: 20,
        ..KimConfig::tiny()
    };
    KimSegmenter::new(baseline_config)
        .unwrap()
        .segment(&sample.image)
        .unwrap();
    let baseline_time = start.elapsed();

    assert!(
        baseline_time > seghdc_time,
        "baseline {baseline_time:?} should be slower than SegHDC {seghdc_time:?}"
    );
}

#[test]
fn device_model_reproduces_the_table_two_conclusions() {
    let pi = DeviceProfile::raspberry_pi_4();

    // Paper-scale workloads.
    let cnn_small = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
    let cnn_large = Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000);
    let seghdc_small = Workload::seghdc(320, 256, 3, 800, 2, 3);
    let seghdc_large = Workload::seghdc(696, 520, 1, 2000, 2, 3);

    // The baseline runs on the small image but not on the large one.
    assert!(pi.estimate(&cnn_small).is_ok());
    assert!(pi.estimate(&cnn_large).is_err());
    // SegHDC fits on both.
    assert!(pi.estimate(&seghdc_small).is_ok());
    assert!(pi.estimate(&seghdc_large).is_ok());
    // And is orders of magnitude faster where both run.
    let speedup = pi.speedup(&cnn_small, &seghdc_small).unwrap();
    assert!(speedup > 100.0, "speedup {speedup}");
}

#[test]
fn baseline_outcome_exposes_training_diagnostics() {
    let dataset =
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(40, 40), 13, 1).unwrap();
    let sample = dataset.sample(0).unwrap();
    let outcome = KimSegmenter::new(KimConfig::tiny())
        .unwrap()
        .segment(&sample.image)
        .unwrap();
    assert!(outcome.iterations_run >= 1);
    assert_eq!(outcome.losses.len(), outcome.iterations_run);
    assert!(outcome.parameter_count > 0);
    assert!(outcome.final_label_count >= 1);
    assert_eq!(outcome.label_map.pixel_count(), 1600);
}
