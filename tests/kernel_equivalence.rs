//! Scalar-versus-SIMD kernel equivalence suite.
//!
//! The kernel layer's contract (`hdc::kernels`) is that every
//! implementation is **bit-exact** with the scalar reference: identical
//! integers out, identical buffers written, for every input — including
//! word counts that are not a multiple of the SIMD lane width. This suite
//! pins that contract at three levels:
//!
//! 1. raw kernels over random word slices of random widths;
//! 2. the bundled/bit-sliced `Accumulator` arithmetic built on them;
//! 3. the full engine: segmentation labels must be **byte-identical**
//!    between a scalar-pinned backend and the SIMD-auto backend, in both
//!    whole-image and streaming tiled modes.
//!
//! On hardware without SIMD support (or a `--no-default-features` build)
//! `kernels::auto()` is the scalar implementation and the suite still runs
//! — the comparisons are then trivially exact, which is precisely the
//! fallback behaviour being guaranteed.

use hdc::kernels;
use hdc::{Accumulator, BinaryHypervector, HdcRng, HvMatrix};
use proptest::prelude::*;
use seghdc::TileConfig as Tiles;
use seghdc::{DistanceMetric, HvKmeans};
use seghdc_suite::prelude::*;

fn random_words(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = HdcRng::seed_from(seed);
    (0..len).map(|_| rng.next_word()).collect()
}

/// Word widths that straddle every lane boundary: empty, sub-lane, exact
/// lane multiples and ragged tails (AVX2 processes 4 words per lane group,
/// NEON 2).
fn arb_width() -> impl Strategy<Value = usize> {
    0usize..67
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn popcount_kernels_agree(len in arb_width(), seed in any::<u64>()) {
        let words = random_words(len, seed);
        prop_assert_eq!(
            kernels::scalar().popcount(&words),
            kernels::auto().popcount(&words)
        );
    }

    #[test]
    fn hamming_and_and_popcount_kernels_agree(len in arb_width(), seed in any::<u64>()) {
        let a = random_words(len, seed);
        let b = random_words(len, seed.wrapping_add(1));
        prop_assert_eq!(
            kernels::scalar().hamming(&a, &b),
            kernels::auto().hamming(&a, &b)
        );
        prop_assert_eq!(
            kernels::scalar().and_popcount(&a, &b),
            kernels::auto().and_popcount(&a, &b)
        );
    }

    #[test]
    fn xor_into_kernels_agree(len in arb_width(), seed in any::<u64>()) {
        let src = random_words(len, seed);
        let base = random_words(len, seed.wrapping_add(2));
        let mut scalar = base.clone();
        let mut auto = base;
        kernels::scalar().xor_into(&mut scalar, &src);
        kernels::auto().xor_into(&mut auto, &src);
        prop_assert_eq!(scalar, auto);
    }

    #[test]
    fn plane_dot_kernels_agree(
        words_per_plane in 1usize..19,
        plane_count in 0usize..6,
        seed in any::<u64>(),
    ) {
        let planes = random_words(plane_count * words_per_plane, seed);
        let row = random_words(words_per_plane, seed.wrapping_add(3));
        prop_assert_eq!(
            kernels::scalar().plane_dot(&planes, words_per_plane, &row),
            kernels::auto().plane_dot(&planes, words_per_plane, &row)
        );
    }

    #[test]
    fn bundle_add_planes_kernels_agree(
        words_per_plane in 1usize..19,
        plane_count in 0usize..6,
        seed in any::<u64>(),
    ) {
        let base_planes = random_words(plane_count * words_per_plane, seed);
        let row = random_words(words_per_plane, seed.wrapping_add(4));

        let mut scalar_planes = base_planes.clone();
        let mut scalar_carry = row.clone();
        let scalar_overflow = kernels::scalar().bundle_add_planes(
            &mut scalar_planes,
            words_per_plane,
            &mut scalar_carry,
        );

        let mut auto_planes = base_planes;
        let mut auto_carry = row;
        let auto_overflow =
            kernels::auto().bundle_add_planes(&mut auto_planes, words_per_plane, &mut auto_carry);

        prop_assert_eq!(scalar_overflow, auto_overflow);
        prop_assert_eq!(scalar_planes, auto_planes);
        prop_assert_eq!(scalar_carry, auto_carry);
    }

    /// The fused multi-centroid dot kernel is bit-exact with a per-group
    /// scalar `plane_dot` walk, for every implementation the host supports
    /// (scalar, AVX2/NEON, AVX-512 variants), K ∈ 2..8 groups of varying
    /// plane counts, and non-lane-multiple word widths.
    #[test]
    fn plane_dot_multi_agrees_with_the_per_group_reference(
        words_per_plane in 1usize..19,
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        // Variable-length per-group plane counts derived from the seed
        // (the proptest stub has no collection strategies).
        let mut rng = HdcRng::seed_from(seed);
        let counts: Vec<usize> = (0..k).map(|_| (rng.next_word() % 6) as usize).collect();
        let total: usize = counts.iter().sum();
        let planes = random_words(total * words_per_plane, seed.wrapping_add(5));
        let row = random_words(words_per_plane, seed.wrapping_add(6));

        let mut expected = vec![3u64; k];
        let mut offset = 0;
        for (slot, &count) in expected.iter_mut().zip(&counts) {
            let end = offset + count * words_per_plane;
            *slot += kernels::scalar().plane_dot(&planes[offset..end], words_per_plane, &row);
            offset = end;
        }
        for kernels in kernels::available() {
            // Pre-seeded output: the fused kernel accumulates (`+=`).
            let mut out = vec![3u64; k];
            kernels.plane_dot_multi(&planes, words_per_plane, &counts, &row, &mut out);
            prop_assert_eq!(&out, &expected);
        }
    }

    /// The expanded-counts fast path (`counts_dot_multi`) is bit-exact with
    /// a scalar per-lane walk on every implementation that opts in, and
    /// implementations that decline must leave the output untouched.
    #[test]
    fn counts_dot_multi_agrees_with_the_per_lane_reference(
        words_per_row in 1usize..9,
        k in 1usize..7,
        seed in any::<u64>(),
    ) {
        let lanes = words_per_row * 64;
        let row = random_words(words_per_row, seed);
        let mut rng = HdcRng::seed_from(seed.wrapping_add(8));
        let counts: Vec<u16> = (0..k * lanes)
            .map(|_| (rng.next_word() % (i16::MAX as u64 + 1)) as u16)
            .collect();
        let expected: Vec<u64> = (0..k)
            .map(|member| {
                let member_counts = &counts[member * lanes..(member + 1) * lanes];
                // Pre-seeded output: the kernel accumulates (`+=`).
                3 + member_counts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| (row[i / 64] >> (i % 64)) & 1 == 1)
                    .map(|(_, &count)| u64::from(count))
                    .sum::<u64>()
            })
            .collect();
        let seeded = vec![3u64; k];
        for kernels in kernels::available() {
            let mut out = seeded.clone();
            if kernels.counts_dot_multi(&counts, &row, &mut out) {
                prop_assert_eq!(&out, &expected);
            } else {
                prop_assert_eq!(&out, &seeded);
            }
        }
    }

    /// The fused multi-centroid Hamming kernel is bit-exact with per-vector
    /// scalar `hamming` calls, for every implementation the host supports.
    #[test]
    fn hamming_multi_agrees_with_the_per_vector_reference(
        width in arb_width(),
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        let row = random_words(width, seed);
        let stacked = random_words(k * width, seed.wrapping_add(7));
        let expected: Vec<u64> = (0..k)
            .map(|c| kernels::scalar().hamming(&row, &stacked[c * width..][..width]))
            .collect();
        for kernels in kernels::available() {
            let mut out = vec![0u64; k];
            kernels.hamming_multi(&row, &stacked, &mut out);
            prop_assert_eq!(&out, &expected);
        }
    }

    /// Accumulator arithmetic (vertical-counter adds, plane dots, exact
    /// norms) is bit-identical across kernel selections, for dimensions
    /// with non-lane-multiple word tails.
    #[test]
    fn accumulator_arithmetic_agrees_across_kernels(
        dim in 1usize..1200,
        members in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = HdcRng::seed_from(seed);
        let vectors: Vec<BinaryHypervector> = (0..members)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        let matrix = HvMatrix::from_vectors(&vectors).unwrap();

        let mut scalar_acc = Accumulator::zeros(dim).unwrap();
        let mut auto_acc = Accumulator::zeros(dim).unwrap();
        for i in 0..members {
            scalar_acc.add_row_with(matrix.row(i), kernels::scalar()).unwrap();
            auto_acc.add_row_with(matrix.row(i), kernels::auto()).unwrap();
        }
        prop_assert_eq!(&scalar_acc, &auto_acc);
        prop_assert_eq!(
            scalar_acc.norm_with(kernels::scalar()).to_bits(),
            auto_acc.norm_with(kernels::auto()).to_bits()
        );

        let probe = matrix.row(0);
        let scalar_sliced = scalar_acc.to_bit_sliced_with(kernels::scalar());
        let auto_sliced = auto_acc.to_bit_sliced_with(kernels::auto());
        prop_assert_eq!(
            scalar_sliced.dot_row_with(probe, kernels::scalar()).unwrap(),
            auto_sliced.dot_row_with(probe, kernels::auto()).unwrap()
        );
        prop_assert_eq!(
            scalar_sliced
                .cosine_distance_row_with(probe, kernels::scalar())
                .unwrap()
                .to_bits(),
            auto_sliced
                .cosine_distance_row_with(probe, kernels::auto())
                .unwrap()
                .to_bits()
        );
    }
}

proptest! {
    // Clustering cases cost more than raw kernel sweeps; a moderate count
    // still exercises many dims/K combinations per ISA.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `cluster_matrix_with` — the fused assignment loop — produces
    /// byte-identical labels under every kernel implementation the host
    /// supports, for both metrics and non-lane-multiple dimensions.
    #[test]
    fn cluster_labels_are_identical_across_every_available_isa(
        dim in 150usize..1100,
        clusters in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = HdcRng::seed_from(seed);
        let pixel_count = 24 + (seed % 13) as usize;
        let pixels: Vec<BinaryHypervector> = (0..pixel_count)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        let matrix = HvMatrix::from_vectors(&pixels).unwrap();
        let intensities: Vec<u8> = (0..pixel_count).map(|i| (i * 11 % 256) as u8).collect();
        for metric in [DistanceMetric::Cosine, DistanceMetric::Hamming] {
            let kmeans = HvKmeans::new(clusters, 4, metric, true).unwrap();
            let reference = kmeans
                .cluster_matrix_with(&matrix, &intensities, kernels::scalar())
                .unwrap();
            for kernels in kernels::available() {
                let outcome = kmeans
                    .cluster_matrix_with(&matrix, &intensities, kernels)
                    .unwrap();
                prop_assert_eq!(&outcome.labels, &reference.labels);
                prop_assert_eq!(&outcome.snapshots, &reference.snapshots);
                prop_assert_eq!(&outcome.cluster_sizes, &reference.cluster_sizes);
            }
        }
    }
}

proptest! {
    // Full-engine cases are expensive; a handful of randomized shapes is
    // enough on top of the exhaustive kernel-level cases above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Segmentation labels are byte-identical between the scalar-pinned
    /// backend and the SIMD-auto backend, whole-image and tiled.
    #[test]
    fn engine_labels_are_byte_identical_across_backends(
        width in 18usize..40,
        height in 18usize..40,
        dim in 200usize..1100,
        seed in any::<u64>(),
    ) {
        let profile = DatasetProfile::dsb2018_like().scaled(width, height);
        let sample = SyntheticDataset::new(profile, seed, 1)
            .unwrap()
            .sample(0)
            .unwrap();

        let config = SegHdcConfig::builder()
            .dimension(dim)
            .iterations(3)
            .beta(4)
            .build()
            .unwrap();
        let scalar_engine = SegEngine::builder(config.clone())
            .backend(Box::new(SimdCpuBackend::scalar()))
            .build()
            .unwrap();
        let simd_engine = SegEngine::builder(config)
            .backend(Box::new(SimdCpuBackend::auto()))
            .build()
            .unwrap();

        let whole_scalar = scalar_engine
            .run(&SegmentRequest::image(&sample.image).whole_image())
            .unwrap();
        let whole_simd = simd_engine
            .run(&SegmentRequest::image(&sample.image).whole_image())
            .unwrap();
        prop_assert_eq!(
            whole_scalar.single().label_map.as_raw(),
            whole_simd.single().label_map.as_raw()
        );

        let tiles = Tiles::square(12, 2).unwrap();
        let tiled_scalar = scalar_engine
            .run(&SegmentRequest::image(&sample.image).tiled(tiles))
            .unwrap();
        let tiled_simd = simd_engine
            .run(&SegmentRequest::image(&sample.image).tiled(tiles))
            .unwrap();
        prop_assert_eq!(
            tiled_scalar.single().label_map.as_raw(),
            tiled_simd.single().label_map.as_raw()
        );
    }
}

/// Segmentation labels are byte-identical for *every* kernel
/// implementation the host supports, pinned ISA by ISA through
/// `SimdCpuBackend::with_kernels` (whole-image and tiled) — so on an
/// AVX-512 machine this compares scalar, AVX2, and both AVX-512 variants.
#[test]
fn engine_labels_are_byte_identical_for_every_available_isa() {
    let profile = DatasetProfile::dsb2018_like().scaled(30, 26);
    let sample = SyntheticDataset::new(profile, 0xA5E5, 1)
        .unwrap()
        .sample(0)
        .unwrap();
    let config = SegHdcConfig::builder()
        .dimension(900)
        .iterations(3)
        .beta(4)
        .build()
        .unwrap();
    let tiles = Tiles::square(12, 2).unwrap();

    let run = |kernels: &'static dyn kernels::Kernels| {
        let engine = SegEngine::builder(config.clone())
            .backend(Box::new(SimdCpuBackend::with_kernels(kernels)))
            .build()
            .unwrap();
        let whole = engine
            .run(&SegmentRequest::image(&sample.image).whole_image())
            .unwrap();
        let tiled = engine
            .run(&SegmentRequest::image(&sample.image).tiled(tiles))
            .unwrap();
        (
            whole.single().label_map.as_raw().to_vec(),
            tiled.single().label_map.as_raw().to_vec(),
        )
    };

    let reference = run(kernels::scalar());
    for kernels in kernels::available() {
        assert_eq!(run(kernels), reference, "isa {}", kernels.name());
    }
}

/// The selection plumbing itself: auto is one of the known ISAs, and the
/// engine's default backend reports whatever auto picked.
#[test]
fn auto_selection_is_reported_through_the_engine() {
    let auto_name = kernels::auto().name();
    assert!(kernels::KNOWN_ISAS.contains(&auto_name));

    let config = SegHdcConfig::builder()
        .dimension(256)
        .beta(2)
        .build()
        .unwrap();
    let engine = SegEngine::new(config).unwrap();
    assert_eq!(engine.backend_name(), "simd-cpu");
    assert_eq!(engine.kernel_isa(), auto_name);
}
