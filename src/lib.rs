//! Workspace façade for the SegHDC (DAC 2023) reproduction.
//!
//! This crate re-exports the individual crates of the workspace so examples
//! and downstream users can depend on a single package:
//!
//! * [`hdc`] — hypervector substrate.
//! * [`imaging`] — image buffers, I/O, filtering and segmentation metrics.
//! * [`synthdata`] — synthetic nuclei dataset generators (BBBC005 / DSB2018 /
//!   MoNuSeg stand-ins).
//! * [`neuralnet`] — minimal CNN training framework.
//! * [`cnn_baseline`] — the Kim et al. unsupervised CNN segmentation
//!   baseline.
//! * [`seghdc`] — the SegHDC pipeline itself (the paper's contribution).
//! * [`seghdc_server`] — framed TCP service front-end over the engine.
//! * [`edge_device`] — the Raspberry Pi 4 cost model.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured comparison of every table
//! and figure.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use seghdc_suite::prelude::*;
//!
//! let dataset = SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(48, 48), 1, 1)?;
//! let sample = dataset.sample(0)?;
//! let config = SegHdcConfig::builder().dimension(1000).iterations(3).beta(4).build()?;
//! let engine = SegEngine::new(config)?;
//! let report = engine.run(&SegmentRequest::image(&sample.image))?;
//! let iou = metrics::matched_binary_iou(
//!     &report.outputs[0].label_map,
//!     &sample.ground_truth.to_binary(),
//! )?;
//! assert!(iou > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cnn_baseline;
pub use edge_device;
pub use hdc;
pub use imaging;
pub use neuralnet;
pub use seghdc;
pub use seghdc_server;
pub use synthdata;

/// Commonly used types, re-exported for convenient glob imports in examples
/// and applications.
pub mod prelude {
    pub use cnn_baseline::{KimConfig, KimSegmenter};
    pub use edge_device::{DeviceProfile, Workload};
    pub use hdc::{Accumulator, BinaryHypervector, HdcRng, HvMatrix};
    pub use imaging::{metrics, DynamicImage, GrayImage, ImageView, LabelMap, RgbImage, TileGrid};
    pub use seghdc::{
        CodebookCache, ColorEncoding, CpuBackend, DistanceMetric, EngineOptions, ExecBackend,
        ExecutedMode, ExecutionMode, PositionEncoding, SegEngine, SegHdc, SegHdcConfig,
        SegmentReport, SegmentRequest, Segmentation, SimdCpuBackend, Snapshot, SnapshotError,
        StreamingSegmentation, TileArena, TileConfig,
    };
    pub use seghdc_server::{
        serve, RequestMode, SegClient, ServerConfig, ServerError, WireSegmentRequest,
        WireSegmentResponse, WireStatsResponse, WireStatus,
    };
    pub use synthdata::{DatasetProfile, NucleiImageGenerator, Sample, SyntheticDataset};
}
