//! Offline stand-in for the subset of `rayon`'s parallel iterator API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! real (scoped-thread) data parallelism behind the familiar
//! `par_iter()` / `into_par_iter()` / `map` / `collect` surface. Work is
//! split into one contiguous chunk per available core and executed with
//! `std::thread::scope`; results are reassembled in input order, so the
//! output is deterministic regardless of scheduling.
//!
//! Only indexed sources (ranges and slices) are supported — which is all the
//! workspace needs — and `map` is the only adaptor. Closures must be `Sync`
//! (shared across worker threads) and items/results `Send`, exactly as with
//! real rayon.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Number of worker threads used for a job of `len` items.
///
/// Like real rayon's global pool, this honours the `RAYON_NUM_THREADS`
/// environment variable (benchmarks use it to force a serial run for
/// speedup comparisons); otherwise it uses every available core.
fn worker_count(len: usize) -> usize {
    let cores = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    cores.min(len).max(1)
}

/// Evaluates `f(i)` for every `i in 0..len` across worker threads, returning
/// the results in index order.
pub fn par_eval_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// A parallel iterator over an indexed source.
///
/// Unlike real rayon this is not a lazy splittable tree; it is an indexed
/// view plus a composed map function, evaluated eagerly by
/// [`collect`](ParallelIterator::collect).
pub trait ParallelIterator: Sized + Sync {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// Produces the element at `index` (must be pure: it may run on any
    /// worker thread, in any order).
    fn par_item(&self, index: usize) -> Self::Item;

    /// Maps every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Evaluates the iterator across worker threads and collects the results
    /// in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let items = par_eval_indexed(self.par_len(), |i| self.par_item(i));
        C::from_ordered_items(items)
    }

    /// Runs `f` on every element (parallel, order unspecified).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_eval_indexed(self.par_len(), |i| f(self.par_item(i)));
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        par_eval_indexed(self.par_len(), |i| self.par_item(i))
            .into_iter()
            .sum()
    }
}

/// Map adaptor returned by [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_item(&self, index: usize) -> R {
        (self.f)(self.base.par_item(index))
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.len
    }

    fn par_item(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Parallel iterator over a slice.
pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_item(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// `par_iter()` on collections, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
    C: 'a,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_chunks_mut` on mutable slices, mirroring
/// `rayon::slice::ParallelSliceMut`.
///
/// Only the `par_chunks_mut(n).enumerate().for_each(..)` and
/// `par_chunks_mut(n).for_each(..)` shapes are supported — chunk borrows
/// are handed out eagerly via `chunks_mut`, so no `unsafe` splitting is
/// needed.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`
    /// elements (the final chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let workers = worker_count(self.chunks.len());
        if workers <= 1 {
            for pair in self.chunks.into_iter().enumerate() {
                f(pair);
            }
            return;
        }
        let per_worker = self.chunks.len().div_ceil(workers);
        let f = &f;
        // Partition the chunk list into contiguous per-worker groups, each
        // remembering its starting index.
        let mut groups: Vec<(usize, Vec<&'a mut [T]>)> = Vec::with_capacity(workers);
        let mut rest = self.chunks;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let tail = rest.split_off(per_worker.min(rest.len()));
            let taken = rest.len();
            groups.push((offset, rest));
            offset += taken;
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (start, group) in groups {
                scope.spawn(move || {
                    for (i, chunk) in group.into_iter().enumerate() {
                        f((start + i, chunk));
                    }
                });
            }
        });
    }
}

/// Collection types a parallel iterator can `collect` into.
pub trait FromParallelIterator<T>: Sized {
    /// Builds the collection from items already in input order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_items(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data: Vec<u32> = (0..257).collect();
        let out: Vec<u32> = data.par_iter().map(|&v| v + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let out: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i == 37 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(out.unwrap_err(), "bad 37");
        let ok: Result<Vec<usize>, String> = (0..10).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u64; 1037];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 10 + j) as u64;
                }
            });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
        // Non-enumerated variant.
        let mut small = vec![1u8; 7];
        small.as_mut_slice().par_chunks_mut(3).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(small.iter().all(|&v| v == 2));
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = (0..8)
            .into_par_iter()
            .map(|i| i * 10)
            .map(|i| format!("v{i}"))
            .collect();
        assert_eq!(out[3], "v30");
    }
}
