//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace's
//! optional `serde` feature resolves to this stub: the [`Serialize`] and
//! [`Deserialize`] trait *names* exist (with no required items) and the
//! re-exported derive macros expand to nothing. That keeps every
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize))]` attribute in
//! the workspace compiling with the feature on or off. No actual
//! serialization is performed; restoring the real serde is a manifest-only
//! change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::Serialize` (no required items).
pub trait Serialize {}

/// Stand-in for `serde::Deserialize` (no required items).
pub trait Deserialize<'de>: Sized {}
