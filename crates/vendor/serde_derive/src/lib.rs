//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace's
//! optional `serde` feature resolves to a vendored stub (see the sibling
//! `serde` crate). The derive macros here accept the usual
//! `#[derive(Serialize, Deserialize)]` positions and expand to nothing:
//! the stub traits have no required items, so types simply keep compiling
//! with the attribute in place until the real serde can be restored.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
