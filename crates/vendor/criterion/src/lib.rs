//! Offline stand-in for the subset of the `criterion` API used by the
//! workspace's bench targets.
//!
//! The build environment has no crates.io access, so this crate implements
//! a small wall-clock harness behind criterion's names: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` and `black_box`. Each benchmark
//! runs one untimed warm-up iteration followed by `sample_size` timed
//! samples, and prints the minimum / median / mean sample time. There is no
//! statistical bootstrapping or HTML report — just honest timings on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once untimed (warm-up), then `sample_size` timed
    /// times, recording one wall-clock sample per run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<56} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples)",
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be non-zero");
        self.sample_size = samples;
        self
    }

    /// Ignored (kept for criterion API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.to_string(), |bencher| f(bencher, input));
        self
    }

    /// Ends the group (a no-op in this harness; results are printed as each
    /// benchmark completes).
    pub fn finish(self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.run(id.to_string(), f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", 128).to_string(), "encode/128");
        assert_eq!(BenchmarkId::from_parameter("64x64").to_string(), "64x64");
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        group.sample_size(1);
        let input = 21usize;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| assert_eq!(n * 2, 42));
        });
    }
}
