//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no crates.io access, so this crate implements
//! randomized property testing behind proptest's names: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`, [`any`], range and tuple
//! strategies, [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Compared to real proptest there is no shrinking: a failing case reports
//! the generated inputs and the case index so it can be reproduced (input
//! generation is deterministic per test name), but it is not minimised.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case, produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator driving input strategies.
///
/// Seeded from the test name so every `cargo test` run explores the same
/// cases — reproducibility over coverage, the right trade-off for CI.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in name.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.next_unit() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit()
    }
}

/// Strategy for "any value of `T`", mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// inputs instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each declared function becomes a `#[test]` that draws its arguments from
/// the given strategies `config.cases` times and runs the body for each
/// draw. On failure the case index and generated arguments are reported.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                // Render the inputs before the body runs: the body takes the
                // arguments by value, so this is the last chance to see them.
                let rendered_inputs =
                    [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", ");
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error,
                        rendered_inputs,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(v in 10usize..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_prop_map_compose(pair in (0usize..3, 5usize..8).prop_map(|(a, b)| a + b)) {
            prop_assert!((5..11).contains(&pair));
        }

        #[test]
        fn any_u64_draws_vary(seed in any::<u64>()) {
            // Not a great property, but exercises the strategy plumbing.
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unreachable_code)]
            fn always_fails(v in 0usize..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
