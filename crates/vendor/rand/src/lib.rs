//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace vendors this minimal, dependency-free
//! implementation of the traits the code relies on: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`, and the [`Error`] type. The trait semantics match `rand` 0.8
//! closely enough that swapping the real crate back in is a manifest-only
//! change.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The deterministic generators in this workspace never fail, so this type
/// is never constructed in practice; it exists so signatures line up with
/// the real `rand` crate.
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Core random number generation trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure via `Result`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (for ChaCha generators, 32 bytes).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand` 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform float in [0, 1).
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(3usize..=17);
            assert!((3..=17).contains(&w));
            let f: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn try_fill_bytes_default_succeeds() {
        let mut rng = Lcg(1);
        let mut buf = [0u8; 13];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
