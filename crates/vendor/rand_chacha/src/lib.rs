//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 implementation (the reduced-round ChaCha
//! variant of Bernstein's stream cipher), not a toy LCG: the workspace's
//! reproducibility story depends on a portable, statistically solid
//! generator. The output stream is *not* guaranteed to be byte-identical to
//! the real `rand_chacha` crate (which this workspace cannot download), but
//! it is deterministic across platforms and runs, which is the property the
//! SegHDC experiments need.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// `"expand 32-byte k"` — the standard ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha8 random number generator with a settable stream
/// identifier, mirroring `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    /// Selects the stream identifier (nonce). Streams with different
    /// identifiers produce independent output even under the same key, which
    /// is how the workspace derives per-subsystem generators from one seed.
    pub fn set_stream(&mut self, stream: u64) {
        if stream != self.stream {
            self.stream = stream;
            self.counter = 0;
            self.index = 16;
        }
    }

    /// Returns the current stream identifier.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_output() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let base = ChaCha8Rng::seed_from_u64(9);
        let mut s1 = base.clone();
        s1.set_stream(1);
        let mut s2 = base.clone();
        s2.set_stream(2);
        let same = (0..256).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 4);

        let mut s1b = base.clone();
        s1b.set_stream(1);
        let mut s1a = base;
        s1a.set_stream(1);
        for _ in 0..64 {
            assert_eq!(s1a.next_u64(), s1b.next_u64());
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = f64::from(ones) / 64_000.0;
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
