use crate::{Layer, NnError, Result, Tensor};

/// Rectified linear unit activation (`max(0, x)` element-wise).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::{Layer, Relu, Tensor};
/// let mut relu = Relu::new();
/// let input = Tensor::from_vec([1, 1, 1, 3], vec![-1.0, 0.0, 2.0])?;
/// let output = relu.forward(&input)?;
/// assert_eq!(output.as_slice(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a new ReLU activation layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut output = input.clone();
        let mask: Vec<bool> = input.as_slice().iter().map(|&v| v > 0.0).collect();
        for (value, &keep) in output.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *value = 0.0;
            }
        }
        self.mask = Some(mask);
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        if mask.len() != grad_output.len() {
            return Err(NnError::ShapeMismatch {
                left: grad_output.shape(),
                right: grad_output.shape(),
            });
        }
        let mut grad_input = grad_output.clone();
        for (value, &keep) in grad_input.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *value = 0.0;
            }
        }
        Ok(grad_input)
    }

    fn parameters_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn parameter_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let input = Tensor::from_vec([1, 1, 2, 2], vec![-3.0, -0.0, 0.5, 7.0]).unwrap();
        let out = relu.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0, 0.5, 7.0]);
    }

    #[test]
    fn backward_masks_gradients() {
        let mut relu = Relu::new();
        let input = Tensor::from_vec([1, 1, 1, 4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        relu.forward(&input).unwrap();
        let grad_out = Tensor::filled([1, 1, 1, 4], 1.0).unwrap();
        let grad_in = relu.backward(&grad_out).unwrap();
        assert_eq!(grad_in.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut relu = Relu::new();
        let grad = Tensor::zeros([1, 1, 1, 1]).unwrap();
        assert!(matches!(
            relu.backward(&grad),
            Err(NnError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn relu_has_no_parameters() {
        let mut relu = Relu::new();
        assert!(relu.parameters_mut().is_empty());
        assert_eq!(relu.parameter_count(), 0);
        relu.zero_grad();
    }
}
