use crate::{Layer, NnError, Result, Tensor};

/// 2-D batch normalisation over the `(N, H, W)` axes of each channel,
/// operating in training mode (batch statistics, as in the per-image
/// training loop of the CNN baseline).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::{BatchNorm2d, Layer, Tensor};
/// let mut bn = BatchNorm2d::new(2)?;
/// let input = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, -2.0, 2.0])?;
/// let output = bn.forward(&input)?;
/// // Each channel is normalised to zero mean.
/// let c0_mean = (output.get(0, 0, 0, 0)? + output.get(0, 0, 0, 1)?) / 2.0;
/// assert!(c0_mean.abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    shape: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature channels with the
    /// default epsilon of `1e-5`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if `channels == 0`.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidParameter {
                message: "batch norm requires at least one channel".to_string(),
            });
        }
        Ok(Self {
            channels,
            eps: 1e-5,
            gamma: Tensor::filled([1, channels, 1, 1], 1.0)?,
            beta: Tensor::zeros([1, channels, 1, 1])?,
            grad_gamma: Tensor::zeros([1, channels, 1, 1])?,
            grad_beta: Tensor::zeros([1, channels, 1, 1])?,
            cache: None,
        })
    }

    /// Number of channels this layer normalises.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.channels() != self.channels {
            return Err(NnError::ChannelMismatch {
                expected: self.channels,
                actual: input.channels(),
            });
        }
        let (batch, height, width) = (input.batch(), input.height(), input.width());
        let per_channel = (batch * height * width) as f32;
        let mut output = Tensor::zeros(input.shape())?;
        let mut normalized = Tensor::zeros(input.shape())?;
        let mut std_inv = vec![0.0f32; self.channels];

        for (c, std_inv_c) in std_inv.iter_mut().enumerate() {
            let mut mean = 0.0f32;
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        mean += input.at(n, c, h, w);
                    }
                }
            }
            mean /= per_channel;
            let mut var = 0.0f32;
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        let d = input.at(n, c, h, w) - mean;
                        var += d * d;
                    }
                }
            }
            var /= per_channel;
            let inv = 1.0 / (var + self.eps).sqrt();
            *std_inv_c = inv;
            let g = self.gamma.at(0, c, 0, 0);
            let b = self.beta.at(0, c, 0, 0);
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        let xhat = (input.at(n, c, h, w) - mean) * inv;
                        *normalized.at_mut(n, c, h, w) = xhat;
                        *output.at_mut(n, c, h, w) = g * xhat + b;
                    }
                }
            }
        }
        self.cache = Some(Cache {
            normalized,
            std_inv,
            shape: input.shape(),
        });
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        if grad_output.shape() != cache.shape {
            return Err(NnError::ShapeMismatch {
                left: grad_output.shape(),
                right: cache.shape,
            });
        }
        let [batch, _, height, width] = cache.shape;
        let per_channel = (batch * height * width) as f32;
        let mut grad_input = Tensor::zeros(cache.shape)?;

        for c in 0..self.channels {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        let dy = grad_output.at(n, c, h, w);
                        sum_dy += dy;
                        sum_dy_xhat += dy * cache.normalized.at(n, c, h, w);
                    }
                }
            }
            *self.grad_beta.at_mut(0, c, 0, 0) += sum_dy;
            *self.grad_gamma.at_mut(0, c, 0, 0) += sum_dy_xhat;

            let g = self.gamma.at(0, c, 0, 0);
            let inv = cache.std_inv[c];
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        let dy = grad_output.at(n, c, h, w);
                        let xhat = cache.normalized.at(n, c, h, w);
                        // Standard batch-norm backward:
                        // dx = gamma * inv / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
                        *grad_input.at_mut(n, c, h, w) = g * inv / per_channel
                            * (per_channel * dy - sum_dy - xhat * sum_dy_xhat);
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn parameters_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.grad_gamma),
            (&mut self.beta, &mut self.grad_beta),
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.fill_zero();
        self.grad_beta.fill_zero();
    }

    fn parameter_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_normalises_each_channel() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let input = Tensor::randn([1, 2, 8, 8], 3.0, &mut rng).unwrap();
        let out = bn.forward(&input).unwrap();
        for c in 0..2 {
            let mut mean = 0.0f32;
            let mut var = 0.0f32;
            for h in 0..8 {
                for w in 0..8 {
                    mean += out.get(0, c, h, w).unwrap();
                }
            }
            mean /= 64.0;
            for h in 0..8 {
                for w in 0..8 {
                    let d = out.get(0, c, h, w).unwrap() - mean;
                    var += d * d;
                }
            }
            var /= 64.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn backward_gradient_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let input = Tensor::randn([1, 1, 3, 3], 1.0, &mut rng).unwrap();
        // Loss: weighted sum of outputs so the gradient is non-uniform.
        let weights: Vec<f32> = (0..9).map(|i| (i as f32) * 0.3 - 1.0).collect();
        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x)
                .unwrap()
                .as_slice()
                .iter()
                .zip(&weights)
                .map(|(o, w)| o * w)
                .sum()
        };
        let out = bn.forward(&input).unwrap();
        let grad_output = Tensor::from_vec(out.shape(), weights.clone()).unwrap();
        let grad_input = bn.backward(&grad_output).unwrap();

        let eps = 1e-3f32;
        for idx in [0usize, 4, 8] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (loss_of(&mut bn, &plus) - loss_of(&mut bn, &minus)) / (2.0 * eps);
            let analytic = grad_input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let input = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = bn.forward(&input).unwrap();
        let grad_out = Tensor::filled(out.shape(), 1.0).unwrap();
        bn.backward(&grad_out).unwrap();
        // d beta = sum(dy) = 4; d gamma = sum(dy * xhat) = 0 for symmetric xhat.
        assert!((bn.grad_beta.as_slice()[0] - 4.0).abs() < 1e-5);
        assert!(bn.grad_gamma.as_slice()[0].abs() < 1e-4);
        bn.zero_grad();
        assert_eq!(bn.grad_beta.max_abs(), 0.0);
    }

    #[test]
    fn invalid_usage_is_rejected() {
        assert!(BatchNorm2d::new(0).is_err());
        let mut bn = BatchNorm2d::new(2).unwrap();
        let wrong = Tensor::zeros([1, 3, 2, 2]).unwrap();
        assert!(bn.forward(&wrong).is_err());
        let grad = Tensor::zeros([1, 2, 2, 2]).unwrap();
        assert!(matches!(
            bn.backward(&grad),
            Err(NnError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn constant_input_does_not_blow_up() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let input = Tensor::filled([1, 1, 4, 4], 5.0).unwrap();
        let out = bn.forward(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        assert!(out.max_abs() < 1.0);
    }

    #[test]
    fn parameter_count_is_two_per_channel() {
        let bn = BatchNorm2d::new(7).unwrap();
        assert_eq!(bn.parameter_count(), 14);
        assert_eq!(bn.channels(), 7);
    }
}
