use crate::{Layer, Result, Tensor};

/// A container chaining layers into a network.
///
/// `Sequential` implements [`Layer`] itself, so whole sub-networks compose.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::{BatchNorm2d, Conv2d, Layer, Relu, Sequential, Tensor};
/// let mut net = Sequential::new(vec![
///     Box::new(Conv2d::new(1, 4, 3, 0)?),
///     Box::new(BatchNorm2d::new(4)?),
///     Box::new(Relu::new()),
/// ]);
/// let out = net.forward(&Tensor::zeros([1, 1, 6, 6])?)?;
/// assert_eq!(out.shape(), [1, 4, 6, 6]);
/// assert!(net.parameter_count() > 0);
/// # Ok(())
/// # }
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers in the network.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Appends a layer to the end of the network.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current)?;
        }
        Ok(current)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut current = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            current = layer.backward(&current)?;
        }
        Ok(current)
    }

    fn parameters_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|layer| layer.parameters_mut())
            .collect()
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loss, BatchNorm2d, Conv2d, Relu, Sgd};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_network(classes: usize) -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 6, 3, 1).unwrap()),
            Box::new(BatchNorm2d::new(6).unwrap()),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(6, classes, 1, 2).unwrap()),
            Box::new(BatchNorm2d::new(classes).unwrap()),
        ])
    }

    #[test]
    fn forward_shapes_chain_correctly() {
        let mut net = tiny_network(4);
        let out = net
            .forward(&Tensor::zeros([1, 1, 10, 12]).unwrap())
            .unwrap();
        assert_eq!(out.shape(), [1, 4, 10, 12]);
        assert_eq!(net.len(), 5);
        assert!(!net.is_empty());
    }

    #[test]
    fn empty_network_is_the_identity() {
        let mut net = Sequential::new(Vec::new());
        let input = Tensor::filled([1, 2, 3, 3], 0.5).unwrap();
        assert_eq!(net.forward(&input).unwrap(), input);
        assert_eq!(net.backward(&input).unwrap(), input);
        assert_eq!(net.parameter_count(), 0);
    }

    #[test]
    fn push_extends_the_network() {
        let mut net = Sequential::new(vec![Box::new(Relu::new())]);
        net.push(Box::new(Relu::new()));
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = tiny_network(2);
        let s = format!("{net:?}");
        assert!(s.contains("conv2d"));
        assert!(s.contains("batchnorm2d"));
    }

    #[test]
    fn end_to_end_training_reduces_the_loss() {
        // Train the tiny network to reproduce fixed per-pixel labels — a
        // smoke test that gradients flow through every layer type.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let input = Tensor::randn([1, 1, 8, 8], 1.0, &mut rng).unwrap();
        // Target derivable from the input: class 1 where the pixel is positive.
        let targets: Vec<usize> = input
            .as_slice()
            .iter()
            .map(|&v| usize::from(v > 0.0))
            .collect();
        let mut net = tiny_network(2);
        let mut sgd = Sgd::new(0.05, 0.9).unwrap();

        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..80 {
            let logits = net.forward(&input).unwrap();
            let (loss_value, grad) = loss::softmax_cross_entropy(&logits, &targets).unwrap();
            if first_loss.is_none() {
                first_loss = Some(loss_value);
            }
            last_loss = loss_value;
            net.zero_grad();
            net.backward(&grad).unwrap();
            sgd.step(net.parameters_mut()).unwrap();
        }
        let first_loss = first_loss.unwrap();
        assert!(
            last_loss < first_loss * 0.5,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
    }
}
