//! Minimal CPU convolutional-network training framework.
//!
//! The SegHDC paper compares against the CNN-based unsupervised segmentation
//! of Kim et al. (IEEE TIP 2020), whose reference implementation runs on
//! PyTorch. This crate provides the small slice of a deep-learning framework
//! that baseline actually needs, implemented from scratch:
//!
//! * [`Tensor`] — a dense `f32` NCHW tensor.
//! * [`Conv2d`], [`BatchNorm2d`], [`Relu`] — layers with explicit forward
//!   and backward passes (no tape/autograd; gradients are derived by hand).
//! * [`loss`] — per-pixel softmax cross-entropy against argmax
//!   self-labels and the spatial-continuity loss of the baseline paper.
//! * [`Sgd`] — stochastic gradient descent with momentum.
//! * [`Sequential`] — a container chaining layers for whole-network
//!   forward/backward passes.
//!
//! The framework favours clarity over raw speed, but convolutions are
//! parallelised across output channels with `rayon`, which is enough to
//! train the baseline on the workload sizes used by the experiment
//! harnesses.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), neuralnet::NnError> {
//! use neuralnet::{Conv2d, Layer, Relu, Sequential, Tensor};
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1)?),
//!     Box::new(Relu::new()),
//!     Box::new(Conv2d::new(8, 4, 1, 2)?),
//! ]);
//! let input = Tensor::zeros([1, 3, 16, 16])?;
//! let output = net.forward(&input)?;
//! assert_eq!(output.shape(), [1, 4, 16, 16]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batchnorm;
mod conv;
mod error;
mod layer;
pub mod loss;
mod optim;
mod relu;
mod sequential;
mod tensor;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use error::NnError;
pub use layer::Layer;
pub use optim::Sgd;
pub use relu::Relu;
pub use sequential::Sequential;
pub use tensor::Tensor;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
