//! Loss functions for the unsupervised CNN segmentation baseline.
//!
//! Kim et al. (TIP 2020) train their network per image with two terms:
//!
//! 1. a **feature-similarity loss** — the per-pixel softmax cross-entropy
//!    between the network response and the *argmax self-labels* derived from
//!    that same response ([`softmax_cross_entropy`]), and
//! 2. a **spatial-continuity loss** — the L1 norm of the differences between
//!    horizontally and vertically adjacent responses
//!    ([`spatial_continuity`]).
//!
//! Both functions return the scalar loss *and* the gradient with respect to
//! the network output so the caller can backpropagate.

use crate::{NnError, Result, Tensor};

/// Per-pixel softmax cross-entropy against integer class targets.
///
/// `logits` must have shape `[1, classes, height, width]`; `targets` holds
/// one class index per pixel in row-major order. Returns
/// `(mean loss, gradient)` where the gradient has the same shape as `logits`
/// and is already divided by the number of pixels.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if the target length does not match
/// the spatial size or a target index is out of range, and
/// [`NnError::InvalidParameter`] if the batch size is not 1 (the baseline
/// trains on a single image at a time).
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor)> {
    if logits.batch() != 1 {
        return Err(NnError::InvalidParameter {
            message: format!("expected batch size 1, got {}", logits.batch()),
        });
    }
    let classes = logits.channels();
    let height = logits.height();
    let width = logits.width();
    if targets.len() != height * width {
        return Err(NnError::InvalidParameter {
            message: format!("expected {} targets, got {}", height * width, targets.len()),
        });
    }
    if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
        return Err(NnError::InvalidParameter {
            message: format!("target class {bad} out of range for {classes} classes"),
        });
    }

    let mut grad = Tensor::zeros(logits.shape())?;
    let mut total_loss = 0.0f64;
    let pixel_count = (height * width) as f32;

    for h in 0..height {
        for w in 0..width {
            // Numerically stable softmax over channels.
            let mut max_logit = f32::NEG_INFINITY;
            for c in 0..classes {
                max_logit = max_logit.max(logits.at(0, c, h, w));
            }
            let mut denom = 0.0f32;
            for c in 0..classes {
                denom += (logits.at(0, c, h, w) - max_logit).exp();
            }
            let target = targets[h * width + w];
            let target_prob = (logits.at(0, target, h, w) - max_logit).exp() / denom;
            total_loss += -f64::from(target_prob.max(1e-12).ln());
            for c in 0..classes {
                let p = (logits.at(0, c, h, w) - max_logit).exp() / denom;
                let indicator = if c == target { 1.0 } else { 0.0 };
                *grad.at_mut(0, c, h, w) = (p - indicator) / pixel_count;
            }
        }
    }
    Ok(((total_loss / f64::from(pixel_count)) as f32, grad))
}

/// Spatial-continuity loss: mean L1 difference between horizontally and
/// vertically adjacent responses of the network output.
///
/// Returns `(loss, gradient)`; the gradient has the same shape as `response`.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if the batch size is not 1.
pub fn spatial_continuity(response: &Tensor) -> Result<(f32, Tensor)> {
    if response.batch() != 1 {
        return Err(NnError::InvalidParameter {
            message: format!("expected batch size 1, got {}", response.batch()),
        });
    }
    let channels = response.channels();
    let height = response.height();
    let width = response.width();
    let mut grad = Tensor::zeros(response.shape())?;
    let mut total = 0.0f64;
    let mut terms = 0usize;

    // Subgradient of |d| that is 0 at d == 0 (f32::signum(0.0) is 1.0, which
    // would inject spurious gradient into perfectly smooth regions).
    fn l1_sign(d: f32) -> f32 {
        if d > 0.0 {
            1.0
        } else if d < 0.0 {
            -1.0
        } else {
            0.0
        }
    }

    for c in 0..channels {
        for h in 0..height {
            for w in 0..width {
                let v = response.at(0, c, h, w);
                if w + 1 < width {
                    let r = response.at(0, c, h, w + 1);
                    total += f64::from((v - r).abs());
                    terms += 1;
                    let sign = l1_sign(v - r);
                    *grad.at_mut(0, c, h, w) += sign;
                    *grad.at_mut(0, c, h, w + 1) -= sign;
                }
                if h + 1 < height {
                    let d = response.at(0, c, h + 1, w);
                    total += f64::from((v - d).abs());
                    terms += 1;
                    let sign = l1_sign(v - d);
                    *grad.at_mut(0, c, h, w) += sign;
                    *grad.at_mut(0, c, h + 1, w) -= sign;
                }
            }
        }
    }
    if terms == 0 {
        return Ok((0.0, grad));
    }
    let scale = 1.0 / terms as f32;
    grad.scale(scale);
    Ok(((total / terms as f64) as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cross_entropy_is_low_for_confident_correct_predictions() {
        // Two pixels, two classes; logits strongly favour the target class.
        let logits = Tensor::from_vec([1, 2, 1, 2], vec![10.0, -10.0, -10.0, 10.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.max_abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_is_high_for_wrong_predictions() {
        let logits = Tensor::from_vec([1, 2, 1, 2], vec![10.0, -10.0, -10.0, 10.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 0]).unwrap();
        assert!(loss > 5.0, "loss {loss}");
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let logits = Tensor::randn([1, 3, 2, 2], 1.0, &mut rng).unwrap();
        let targets = vec![0usize, 2, 1, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in [0usize, 3, 7, 11] {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &targets).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &targets).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let logits = Tensor::zeros([1, 2, 2, 2]).unwrap();
        assert!(softmax_cross_entropy(&logits, &[0, 1, 0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1, 0, 5]).is_err());
        let batched = Tensor::zeros([2, 2, 1, 1]).unwrap();
        assert!(softmax_cross_entropy(&batched, &[0]).is_err());
    }

    #[test]
    fn continuity_loss_is_zero_for_constant_maps() {
        let response = Tensor::filled([1, 4, 5, 5], 3.0).unwrap();
        let (loss, grad) = spatial_continuity(&response).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn continuity_loss_grows_with_checkerboard_patterns() {
        let mut smooth = Tensor::zeros([1, 1, 4, 4]).unwrap();
        let mut checker = Tensor::zeros([1, 1, 4, 4]).unwrap();
        for h in 0..4 {
            for w in 0..4 {
                smooth.set(0, 0, h, w, (h + w) as f32 * 0.01).unwrap();
                checker.set(0, 0, h, w, ((h + w) % 2) as f32).unwrap();
            }
        }
        let (smooth_loss, _) = spatial_continuity(&smooth).unwrap();
        let (checker_loss, _) = spatial_continuity(&checker).unwrap();
        assert!(checker_loss > smooth_loss * 10.0);
    }

    #[test]
    fn continuity_gradient_matches_finite_differences_away_from_kinks() {
        // Use well-separated values so the |.| derivative is smooth at the
        // evaluation points.
        let response = Tensor::from_vec([1, 1, 2, 2], vec![0.0, 1.0, 3.0, 6.0]).unwrap();
        let (_, grad) = spatial_continuity(&response).unwrap();
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut plus = response.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = response.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = spatial_continuity(&plus).unwrap();
            let (lm, _) = spatial_continuity(&minus).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn continuity_rejects_batched_input() {
        let response = Tensor::zeros([2, 1, 2, 2]).unwrap();
        assert!(spatial_continuity(&response).is_err());
    }

    #[test]
    fn single_pixel_map_has_zero_continuity_loss() {
        let response = Tensor::filled([1, 3, 1, 1], 2.0).unwrap();
        let (loss, _) = spatial_continuity(&response).unwrap();
        assert_eq!(loss, 0.0);
    }
}
