use std::error::Error;
use std::fmt;

/// Errors produced by tensor and layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor with a zero-sized dimension was requested.
    EmptyShape,
    /// The flat data buffer does not match the requested shape.
    BufferSizeMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: [usize; 4],
        /// Shape of the right operand.
        right: [usize; 4],
    },
    /// The input tensor has the wrong number of channels for a layer.
    ChannelMismatch {
        /// Channels expected by the layer.
        expected: usize,
        /// Channels found in the input.
        actual: usize,
    },
    /// A layer's backward pass was called before its forward pass.
    BackwardBeforeForward,
    /// A parameter value is outside of its valid domain.
    InvalidParameter {
        /// Human readable description.
        message: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::EmptyShape => write!(f, "tensor dimensions must be non-zero"),
            NnError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer has {actual} elements, shape implies {expected}")
            }
            NnError::ShapeMismatch { left, right } => {
                write!(f, "tensor shape mismatch: {left:?} vs {right:?}")
            }
            NnError::ChannelMismatch { expected, actual } => {
                write!(f, "layer expects {expected} input channels, got {actual}")
            }
            NnError::BackwardBeforeForward => {
                write!(f, "backward called before forward; no cached activations")
            }
            NnError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = NnError::ShapeMismatch {
            left: [1, 2, 3, 4],
            right: [1, 2, 3, 5],
        };
        assert!(e.to_string().contains('5'));
        assert!(NnError::BackwardBeforeForward
            .to_string()
            .contains("backward"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NnError>();
    }
}
