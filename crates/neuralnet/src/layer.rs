use crate::{Result, Tensor};

/// A differentiable network layer with explicit forward and backward passes.
///
/// Layers cache whatever activations they need during [`forward`](Layer::forward)
/// and consume that cache in [`backward`](Layer::backward), which returns the
/// gradient with respect to the layer input and accumulates gradients with
/// respect to the layer's own parameters.
///
/// The trait is object-safe so that heterogeneous layers can be chained in a
/// [`Sequential`](crate::Sequential) container.
pub trait Layer: Send {
    /// Human readable layer name used in debug output.
    fn name(&self) -> &str;

    /// Runs the layer on `input` and returns its output, caching anything
    /// needed for the backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Propagates `grad_output` (gradient of the loss with respect to this
    /// layer's output) back through the layer, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] if called without a
    /// preceding forward pass, or a shape error if `grad_output` does not
    /// match the cached forward output.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Returns mutable `(parameter, gradient)` pairs for the optimiser.
    /// Layers without learnable parameters return an empty vector.
    fn parameters_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;

    /// Clears the accumulated parameter gradients.
    fn zero_grad(&mut self);

    /// Number of learnable scalar parameters (used by the device cost model
    /// to estimate memory footprints).
    fn parameter_count(&self) -> usize;
}
