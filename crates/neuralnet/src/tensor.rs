use crate::{NnError, Result};
use rand::Rng;

/// A dense `f32` tensor in NCHW layout (batch, channel, height, width).
///
/// The layout is fixed because every layer in this crate operates on image
/// feature maps. Indexing is row-major within a channel:
/// `data[((n * C + c) * H + h) * W + w]`.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::Tensor;
/// let mut t = Tensor::zeros([1, 2, 3, 3])?;
/// t.set(0, 1, 2, 2, 5.0)?;
/// assert_eq!(t.get(0, 1, 2, 2)?, 5.0);
/// assert_eq!(t.len(), 18);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given NCHW shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyShape`] if any dimension is zero.
    pub fn zeros(shape: [usize; 4]) -> Result<Self> {
        if shape.contains(&0) {
            return Err(NnError::EmptyShape);
        }
        Ok(Self {
            shape,
            data: vec![0.0; shape.iter().product()],
        })
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyShape`] if any dimension is zero.
    pub fn filled(shape: [usize; 4], value: f32) -> Result<Self> {
        let mut t = Self::zeros(shape)?;
        t.data.iter_mut().for_each(|v| *v = value);
        Ok(t)
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyShape`] for zero dimensions or
    /// [`NnError::BufferSizeMismatch`] if the buffer length does not match
    /// the shape.
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Result<Self> {
        if shape.contains(&0) {
            return Err(NnError::EmptyShape);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NnError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor with independent samples from `N(0, std^2)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyShape`] if any dimension is zero or
    /// [`NnError::InvalidParameter`] if `std` is not finite.
    pub fn randn<R: Rng>(shape: [usize; 4], std: f32, rng: &mut R) -> Result<Self> {
        if !std.is_finite() {
            return Err(NnError::InvalidParameter {
                message: format!("standard deviation must be finite, got {std}"),
            });
        }
        let mut t = Self::zeros(shape)?;
        for v in &mut t.data {
            // Box-Muller transform.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            *v = std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
        Ok(t)
    }

    /// The NCHW shape.
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape[1]
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.shape[2]
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.shape[3]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for a successfully
    /// constructed tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat data buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    fn check_index(&self, n: usize, c: usize, h: usize, w: usize) -> Result<()> {
        if n >= self.shape[0] || c >= self.shape[1] || h >= self.shape[2] || w >= self.shape[3] {
            return Err(NnError::InvalidParameter {
                message: format!(
                    "index ({n}, {c}, {h}, {w}) out of bounds for shape {:?}",
                    self.shape
                ),
            });
        }
        Ok(())
    }

    /// Returns the element at `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the index is out of bounds.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> Result<f32> {
        self.check_index(n, c, h, w)?;
        Ok(self.data[self.offset(n, c, h, w)])
    }

    /// Sets the element at `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the index is out of bounds.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) -> Result<()> {
        self.check_index(n, c, h, w)?;
        let i = self.offset(n, c, h, w);
        self.data[i] = value;
        Ok(())
    }

    /// Unchecked read used by the hot convolution loops (debug assertions
    /// still verify the index in debug builds).
    #[inline]
    pub(crate) fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert!(self.check_index(n, c, h, w).is_ok());
        self.data[self.offset(n, c, h, w)]
    }

    /// Unchecked write used by the hot convolution loops.
    #[inline]
    pub(crate) fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert!(self.check_index(n, c, h, w).is_ok());
        let i = self.offset(n, c, h, w);
        &mut self.data[i]
    }

    fn check_same_shape(&self, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        Ok(())
    }

    /// Element-wise addition (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f32) {
        self.data.iter_mut().for_each(|v| *v *= scale);
    }

    /// Resets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Maximum absolute element value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Per-pixel argmax over the channel dimension for batch element `n`,
    /// returned row-major as `height * width` class indices. This is the
    /// self-labelling step of the Kim et al. baseline.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if `n` is out of range.
    pub fn argmax_channels(&self, n: usize) -> Result<Vec<usize>> {
        if n >= self.shape[0] {
            return Err(NnError::InvalidParameter {
                message: format!("batch index {n} out of range for {}", self.shape[0]),
            });
        }
        let (channels, height, width) = (self.shape[1], self.shape[2], self.shape[3]);
        let mut out = vec![0usize; height * width];
        for h in 0..height {
            for w in 0..width {
                let mut best = 0usize;
                let mut best_value = f32::NEG_INFINITY;
                for c in 0..channels {
                    let v = self.at(n, c, h, w);
                    if v > best_value {
                        best_value = v;
                        best = c;
                    }
                }
                out[h * width + w] = best;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_shape_accessors() {
        let t = Tensor::zeros([2, 3, 4, 5]).unwrap();
        assert_eq!(t.shape(), [2, 3, 4, 5]);
        assert_eq!(t.batch(), 2);
        assert_eq!(t.channels(), 3);
        assert_eq!(t.height(), 4);
        assert_eq!(t.width(), 5);
        assert_eq!(t.len(), 120);
        assert!(!t.is_empty());
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert_eq!(
            Tensor::zeros([0, 1, 1, 1]).unwrap_err(),
            NnError::EmptyShape
        );
        assert!(matches!(
            Tensor::from_vec([1, 1, 2, 2], vec![0.0; 3]),
            Err(NnError::BufferSizeMismatch {
                expected: 4,
                actual: 3
            })
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(Tensor::randn([1, 1, 2, 2], f32::NAN, &mut rng).is_err());
    }

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut t = Tensor::zeros([1, 2, 2, 2]).unwrap();
        t.set(0, 1, 1, 0, 3.5).unwrap();
        assert_eq!(t.get(0, 1, 1, 0).unwrap(), 3.5);
        assert!(t.get(1, 0, 0, 0).is_err());
        assert!(t.set(0, 2, 0, 0, 1.0).is_err());
    }

    #[test]
    fn indexing_layout_is_nchw_row_major() {
        let data: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let t = Tensor::from_vec([1, 2, 2, 3], data).unwrap();
        assert_eq!(t.get(0, 0, 0, 0).unwrap(), 0.0);
        assert_eq!(t.get(0, 0, 1, 2).unwrap(), 5.0);
        assert_eq!(t.get(0, 1, 0, 0).unwrap(), 6.0);
        assert_eq!(t.get(0, 1, 1, 2).unwrap(), 11.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::filled([1, 1, 2, 2], 1.0).unwrap();
        let b = Tensor::filled([1, 1, 2, 2], 2.0).unwrap();
        a.add_assign(&b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 3.0));
        a.add_scaled(&b, 0.5).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 4.0));
        a.scale(0.25);
        assert!(a.as_slice().iter().all(|&v| v == 1.0));
        assert_eq!(a.mean(), 1.0);
        a.fill_zero();
        assert_eq!(a.max_abs(), 0.0);
        let c = Tensor::zeros([1, 1, 2, 3]).unwrap();
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Tensor::randn([1, 1, 100, 100], 2.0, &mut rng).unwrap();
        let mean = t.mean();
        assert!(mean.abs() < 0.2, "mean {mean}");
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn argmax_channels_picks_strongest_response() {
        let mut t = Tensor::zeros([1, 3, 1, 2]).unwrap();
        t.set(0, 0, 0, 0, 0.1).unwrap();
        t.set(0, 1, 0, 0, 0.9).unwrap();
        t.set(0, 2, 0, 0, 0.5).unwrap();
        t.set(0, 2, 0, 1, 2.0).unwrap();
        let labels = t.argmax_channels(0).unwrap();
        assert_eq!(labels, vec![1, 2]);
        assert!(t.argmax_channels(1).is_err());
    }
}
