use crate::{Layer, NnError, Result, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A 2-D convolution with square kernels, stride 1 and "same" zero padding.
///
/// Weights are initialised with Kaiming-He scaling
/// (`std = sqrt(2 / (in_channels * k * k))`), which is what the reference
/// implementation of the CNN baseline uses. The layer supports an explicit
/// backward pass that accumulates weight/bias gradients and returns the
/// gradient with respect to its input.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::{Conv2d, Layer, Tensor};
/// let mut conv = Conv2d::new(1, 4, 3, 42)?;
/// let input = Tensor::zeros([1, 1, 8, 8])?;
/// let output = conv.forward(&input)?;
/// assert_eq!(output.shape(), [1, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with `kernel x kernel` filters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if any of `in_channels`,
    /// `out_channels` or `kernel` is zero, or if `kernel` is even (odd
    /// kernels are required for symmetric "same" padding).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NnError::InvalidParameter {
                message: "channel counts and kernel size must be non-zero".to_string(),
            });
        }
        if kernel.is_multiple_of(2) {
            return Err(NnError::InvalidParameter {
                message: format!("kernel size must be odd for same padding, got {kernel}"),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let std = (2.0 / (in_channels * kernel * kernel) as f32).sqrt();
        let weight = Tensor::randn([out_channels, in_channels, kernel, kernel], std, &mut rng)?;
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            grad_weight: Tensor::zeros(weight.shape())?,
            weight,
            bias: Tensor::zeros([1, out_channels, 1, 1])?,
            grad_bias: Tensor::zeros([1, out_channels, 1, 1])?,
            cached_input: None,
        })
    }

    /// Number of input channels expected by this layer.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels produced by this layer.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Read access to the weight tensor (for tests and serialisation).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.channels() != self.in_channels {
            return Err(NnError::ChannelMismatch {
                expected: self.in_channels,
                actual: input.channels(),
            });
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let (batch, height, width) = (input.batch(), input.height(), input.width());
        let pad = (self.kernel / 2) as isize;
        let k = self.kernel;
        let in_c = self.in_channels;
        let out_c = self.out_channels;
        let weight = &self.weight;
        let bias = &self.bias;

        let mut output = Tensor::zeros([batch, out_c, height, width])?;
        for n in 0..batch {
            // Each output channel is independent: parallelise across them.
            let planes: Vec<Vec<f32>> = (0..out_c)
                .into_par_iter()
                .map(|oc| {
                    let mut plane = vec![0.0f32; height * width];
                    let b = bias.at(0, oc, 0, 0);
                    for h in 0..height {
                        for w in 0..width {
                            let mut acc = b;
                            for ic in 0..in_c {
                                for kh in 0..k {
                                    let ih = h as isize + kh as isize - pad;
                                    if ih < 0 || ih >= height as isize {
                                        continue;
                                    }
                                    for kw in 0..k {
                                        let iw = w as isize + kw as isize - pad;
                                        if iw < 0 || iw >= width as isize {
                                            continue;
                                        }
                                        acc += weight.at(oc, ic, kh, kw)
                                            * input.at(n, ic, ih as usize, iw as usize);
                                    }
                                }
                            }
                            plane[h * width + w] = acc;
                        }
                    }
                    plane
                })
                .collect();
            for (oc, plane) in planes.into_iter().enumerate() {
                for h in 0..height {
                    for w in 0..width {
                        *output.at_mut(n, oc, h, w) = plane[h * width + w];
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        let (batch, height, width) = (input.batch(), input.height(), input.width());
        let expected = [batch, self.out_channels, height, width];
        if grad_output.shape() != expected {
            return Err(NnError::ShapeMismatch {
                left: grad_output.shape(),
                right: expected,
            });
        }
        let pad = (self.kernel / 2) as isize;
        let k = self.kernel;
        let in_c = self.in_channels;
        let out_c = self.out_channels;

        // Bias gradient: sum of grad_output per output channel.
        for oc in 0..out_c {
            let mut acc = 0.0f32;
            for n in 0..batch {
                for h in 0..height {
                    for w in 0..width {
                        acc += grad_output.at(n, oc, h, w);
                    }
                }
            }
            *self.grad_bias.at_mut(0, oc, 0, 0) += acc;
        }

        // Weight gradient, parallel over output channels.
        let weight_updates: Vec<Vec<f32>> = (0..out_c)
            .into_par_iter()
            .map(|oc| {
                let mut local = vec![0.0f32; in_c * k * k];
                for n in 0..batch {
                    for h in 0..height {
                        for w in 0..width {
                            let go = grad_output.at(n, oc, h, w);
                            if go == 0.0 {
                                continue;
                            }
                            for ic in 0..in_c {
                                for kh in 0..k {
                                    let ih = h as isize + kh as isize - pad;
                                    if ih < 0 || ih >= height as isize {
                                        continue;
                                    }
                                    for kw in 0..k {
                                        let iw = w as isize + kw as isize - pad;
                                        if iw < 0 || iw >= width as isize {
                                            continue;
                                        }
                                        local[(ic * k + kh) * k + kw] +=
                                            go * input.at(n, ic, ih as usize, iw as usize);
                                    }
                                }
                            }
                        }
                    }
                }
                local
            })
            .collect();
        for (oc, local) in weight_updates.into_iter().enumerate() {
            for ic in 0..in_c {
                for kh in 0..k {
                    for kw in 0..k {
                        *self.grad_weight.at_mut(oc, ic, kh, kw) += local[(ic * k + kh) * k + kw];
                    }
                }
            }
        }

        // Input gradient, parallel over input channels.
        let weight = &self.weight;
        let mut grad_input = Tensor::zeros(input.shape())?;
        for n in 0..batch {
            let planes: Vec<Vec<f32>> = (0..in_c)
                .into_par_iter()
                .map(|ic| {
                    let mut plane = vec![0.0f32; height * width];
                    for oc in 0..out_c {
                        for h in 0..height {
                            for w in 0..width {
                                let go = grad_output.at(n, oc, h, w);
                                if go == 0.0 {
                                    continue;
                                }
                                for kh in 0..k {
                                    let ih = h as isize + kh as isize - pad;
                                    if ih < 0 || ih >= height as isize {
                                        continue;
                                    }
                                    for kw in 0..k {
                                        let iw = w as isize + kw as isize - pad;
                                        if iw < 0 || iw >= width as isize {
                                            continue;
                                        }
                                        plane[ih as usize * width + iw as usize] +=
                                            go * weight.at(oc, ic, kh, kw);
                                    }
                                }
                            }
                        }
                    }
                    plane
                })
                .collect();
            for (ic, plane) in planes.into_iter().enumerate() {
                for h in 0..height {
                    for w in 0..width {
                        *grad_input.at_mut(n, ic, h, w) = plane[h * width + w];
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn parameters_mut(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d x` for a scalar loss `sum(conv(x))`.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let input = Tensor::randn([1, 2, 5, 5], 1.0, &mut rng).unwrap();
        let output = conv.forward(&input).unwrap();
        // Loss = sum of outputs, so grad_output is all ones.
        let grad_output = Tensor::filled(output.shape(), 1.0).unwrap();
        let grad_input = conv.backward(&grad_output).unwrap();

        let eps = 1e-3f32;
        for &idx in &[0usize, 7, 13, 24, 40] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let f_plus: f32 = conv.forward(&plus).unwrap().as_slice().iter().sum();
            let f_minus: f32 = conv.forward(&minus).unwrap().as_slice().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad_input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut conv = Conv2d::new(1, 2, 3, 11).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let input = Tensor::randn([1, 1, 4, 4], 1.0, &mut rng).unwrap();
        let output = conv.forward(&input).unwrap();
        let grad_output = Tensor::filled(output.shape(), 1.0).unwrap();
        conv.zero_grad();
        conv.backward(&grad_output).unwrap();
        let analytic_grad = conv.grad_weight.clone();

        let eps = 1e-3f32;
        for &idx in &[0usize, 4, 9, 17] {
            let original = conv.weight.as_slice()[idx];
            conv.weight.as_mut_slice()[idx] = original + eps;
            let f_plus: f32 = conv.forward(&input).unwrap().as_slice().iter().sum();
            conv.weight.as_mut_slice()[idx] = original - eps;
            let f_minus: f32 = conv.forward(&input).unwrap().as_slice().iter().sum();
            conv.weight.as_mut_slice()[idx] = original;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = analytic_grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn one_by_one_kernel_is_a_pixelwise_linear_map() {
        let mut conv = Conv2d::new(2, 1, 1, 1).unwrap();
        // Set weights manually: out = 2*c0 - 1*c1 + bias(0.5)
        conv.weight.as_mut_slice()[0] = 2.0;
        conv.weight.as_mut_slice()[1] = -1.0;
        conv.bias.as_mut_slice()[0] = 0.5;
        let input = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, 4.0, 2.0]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), [1, 1, 1, 2]);
        assert!((out.get(0, 0, 0, 0).unwrap() - (2.0 - 4.0 + 0.5)).abs() < 1e-6);
        assert!((out.get(0, 0, 0, 1).unwrap() - (6.0 - 2.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn same_padding_preserves_spatial_shape() {
        let mut conv = Conv2d::new(3, 5, 5, 2).unwrap();
        let input = Tensor::zeros([2, 3, 9, 7]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), [2, 5, 9, 7]);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Conv2d::new(0, 1, 3, 0).is_err());
        assert!(Conv2d::new(1, 0, 3, 0).is_err());
        assert!(Conv2d::new(1, 1, 0, 0).is_err());
        assert!(Conv2d::new(1, 1, 4, 0).is_err());
    }

    #[test]
    fn channel_mismatch_and_missing_forward_are_rejected() {
        let mut conv = Conv2d::new(2, 2, 3, 0).unwrap();
        let wrong = Tensor::zeros([1, 3, 4, 4]).unwrap();
        assert!(matches!(
            conv.forward(&wrong),
            Err(NnError::ChannelMismatch {
                expected: 2,
                actual: 3
            })
        ));
        let grad = Tensor::zeros([1, 2, 4, 4]).unwrap();
        assert!(matches!(
            conv.backward(&grad),
            Err(NnError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn zero_grad_clears_accumulated_gradients() {
        let mut conv = Conv2d::new(1, 1, 3, 9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let input = Tensor::randn([1, 1, 4, 4], 1.0, &mut rng).unwrap();
        let out = conv.forward(&input).unwrap();
        conv.backward(&Tensor::filled(out.shape(), 1.0).unwrap())
            .unwrap();
        assert!(conv.grad_weight.max_abs() > 0.0);
        conv.zero_grad();
        assert_eq!(conv.grad_weight.max_abs(), 0.0);
        assert_eq!(conv.grad_bias.max_abs(), 0.0);
    }

    #[test]
    fn parameter_count_matches_tensors() {
        let conv = Conv2d::new(3, 8, 3, 0).unwrap();
        assert_eq!(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
    }
}
