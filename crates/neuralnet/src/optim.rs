use crate::{NnError, Result, Tensor};

/// Stochastic gradient descent with classical momentum.
///
/// The optimiser keeps one velocity buffer per parameter tensor, identified
/// by position in the parameter list, so the same network must be passed in
/// the same layer order on every step (which [`crate::Layer::parameters_mut`]
/// guarantees).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), neuralnet::NnError> {
/// use neuralnet::{Sgd, Tensor};
/// let mut param = Tensor::filled([1, 1, 1, 1], 1.0)?;
/// let mut grad = Tensor::filled([1, 1, 1, 1], 0.5)?;
/// let mut sgd = Sgd::new(0.1, 0.0)?;
/// sgd.step(vec![(&mut param, &mut grad)])?;
/// assert!((param.as_slice()[0] - 0.95).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the learning rate is not
    /// strictly positive and finite, or if momentum is outside `[0, 1)`.
    pub fn new(learning_rate: f32, momentum: f32) -> Result<Self> {
        if !learning_rate.is_finite() || learning_rate <= 0.0 {
            return Err(NnError::InvalidParameter {
                message: format!("learning rate must be positive and finite, got {learning_rate}"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidParameter {
                message: format!("momentum must be in [0, 1), got {momentum}"),
            });
        }
        Ok(Self {
            learning_rate,
            momentum,
            velocities: Vec::new(),
        })
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// The configured momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one update step to every `(parameter, gradient)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the number or size of the
    /// parameter tensors changes between steps.
    pub fn step(&mut self, params: Vec<(&mut Tensor, &mut Tensor)>) -> Result<()> {
        if self.velocities.is_empty() {
            self.velocities = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        if self.velocities.len() != params.len() {
            return Err(NnError::InvalidParameter {
                message: format!(
                    "optimiser was initialised with {} parameter tensors, got {}",
                    self.velocities.len(),
                    params.len()
                ),
            });
        }
        for ((param, grad), velocity) in params.into_iter().zip(&mut self.velocities) {
            if param.len() != velocity.len() {
                return Err(NnError::InvalidParameter {
                    message: "parameter tensor size changed between optimiser steps".to_string(),
                });
            }
            for ((p, g), v) in param
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(velocity.iter_mut())
            {
                *v = self.momentum * *v - self.learning_rate * g;
                *p += *v;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_hyperparameters() {
        assert!(Sgd::new(0.1, 0.9).is_ok());
        assert!(Sgd::new(0.0, 0.9).is_err());
        assert!(Sgd::new(-0.1, 0.9).is_err());
        assert!(Sgd::new(f32::NAN, 0.9).is_err());
        assert!(Sgd::new(0.1, 1.0).is_err());
        assert!(Sgd::new(0.1, -0.1).is_err());
    }

    #[test]
    fn vanilla_sgd_moves_against_the_gradient() {
        let mut param = Tensor::filled([1, 1, 1, 2], 1.0).unwrap();
        let mut grad = Tensor::from_vec([1, 1, 1, 2], vec![1.0, -2.0]).unwrap();
        let mut sgd = Sgd::new(0.5, 0.0).unwrap();
        sgd.step(vec![(&mut param, &mut grad)]).unwrap();
        assert!((param.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((param.as_slice()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut param = Tensor::filled([1, 1, 1, 1], 0.0).unwrap();
        let mut grad = Tensor::filled([1, 1, 1, 1], 1.0).unwrap();
        let mut sgd = Sgd::new(0.1, 0.5).unwrap();
        sgd.step(vec![(&mut param, &mut grad)]).unwrap();
        let after_one = param.as_slice()[0];
        sgd.step(vec![(&mut param, &mut grad)]).unwrap();
        let after_two = param.as_slice()[0];
        // First step moves by -0.1, second by -(0.5*0.1 + 0.1) = -0.15.
        assert!((after_one - -0.1).abs() < 1e-6);
        assert!((after_two - -0.25).abs() < 1e-6);
    }

    #[test]
    fn minimises_a_simple_quadratic() {
        // f(x) = (x - 3)^2; gradient = 2 (x - 3).
        let mut x = Tensor::filled([1, 1, 1, 1], 0.0).unwrap();
        let mut sgd = Sgd::new(0.1, 0.8).unwrap();
        for _ in 0..100 {
            let g = 2.0 * (x.as_slice()[0] - 3.0);
            let mut grad = Tensor::filled([1, 1, 1, 1], g).unwrap();
            sgd.step(vec![(&mut x, &mut grad)]).unwrap();
        }
        assert!(
            (x.as_slice()[0] - 3.0).abs() < 1e-2,
            "x = {}",
            x.as_slice()[0]
        );
    }

    #[test]
    fn changing_parameter_layout_is_rejected() {
        let mut a = Tensor::filled([1, 1, 1, 1], 0.0).unwrap();
        let mut ga = Tensor::filled([1, 1, 1, 1], 1.0).unwrap();
        let mut b = Tensor::filled([1, 1, 1, 2], 0.0).unwrap();
        let mut gb = Tensor::filled([1, 1, 1, 2], 1.0).unwrap();
        let mut sgd = Sgd::new(0.1, 0.0).unwrap();
        sgd.step(vec![(&mut a, &mut ga)]).unwrap();
        assert!(sgd
            .step(vec![(&mut a, &mut ga), (&mut b, &mut gb)])
            .is_err());
        assert!(sgd.step(vec![(&mut b, &mut gb)]).is_err());
    }

    #[test]
    fn accessors_report_configuration() {
        let sgd = Sgd::new(0.05, 0.25).unwrap();
        assert_eq!(sgd.learning_rate(), 0.05);
        assert_eq!(sgd.momentum(), 0.25);
    }
}
