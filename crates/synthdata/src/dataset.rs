use crate::{DatasetProfile, NucleiImageGenerator, Result, SynthError};
use imaging::{DynamicImage, LabelMap};

/// One synthetic image together with its exact ground-truth instance mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Stable identifier of the sample (`<profile>-<index>`).
    pub name: String,
    /// The rendered microscopy-like image.
    pub image: DynamicImage,
    /// Instance ground truth: label 0 is background, labels `1..=n` are
    /// individual nuclei. Use [`LabelMap::to_binary`] for semantic masks.
    pub ground_truth: LabelMap,
}

/// A fixed-length, lazily generated synthetic dataset.
///
/// Samples are rendered on demand (and can therefore be iterated without
/// holding the whole dataset in memory, mirroring how the paper streams
/// images through the Raspberry Pi).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthdata::{DatasetProfile, SyntheticDataset};
/// let dataset = SyntheticDataset::new(DatasetProfile::bbbc005_like().scaled(48, 48), 1, 4)?;
/// assert_eq!(dataset.len(), 4);
/// assert_eq!(dataset.iter().count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    generator: NucleiImageGenerator,
    len: usize,
}

impl SyntheticDataset {
    /// Creates a dataset of `len` samples drawn from `profile` with the
    /// given base seed.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidProfile`] if the profile is inconsistent
    /// or if `len == 0`.
    pub fn new(profile: DatasetProfile, seed: u64, len: usize) -> Result<Self> {
        if len == 0 {
            return Err(SynthError::InvalidProfile {
                message: "dataset length must be at least 1".to_string(),
            });
        }
        Ok(Self {
            generator: NucleiImageGenerator::new(profile, seed)?,
            len,
        })
    }

    /// Number of samples in the dataset.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: datasets have at least one sample by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The profile the dataset is drawn from.
    pub fn profile(&self) -> &DatasetProfile {
        self.generator.profile()
    }

    /// Generates the sample at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::SampleOutOfRange`] if `index >= len()`.
    pub fn sample(&self, index: usize) -> Result<Sample> {
        if index >= self.len {
            return Err(SynthError::SampleOutOfRange {
                index,
                len: self.len,
            });
        }
        self.generator.generate(index)
    }

    /// Iterates over all samples in order.
    ///
    /// Generation errors are not expected for validated profiles; any that
    /// occur are skipped (the iterator yields only successfully generated
    /// samples).
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        (0..self.len).filter_map(move |i| self.sample(i).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(48, 48), 99, 3).unwrap()
    }

    #[test]
    fn length_and_bounds_are_enforced() {
        let d = dataset();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(d.sample(2).is_ok());
        assert!(matches!(
            d.sample(3),
            Err(SynthError::SampleOutOfRange { index: 3, len: 3 })
        ));
    }

    #[test]
    fn zero_length_dataset_is_rejected() {
        assert!(SyntheticDataset::new(DatasetProfile::dsb2018_like(), 1, 0).is_err());
    }

    #[test]
    fn invalid_profile_is_rejected_at_construction() {
        let mut profile = DatasetProfile::dsb2018_like();
        profile.channels = 4;
        assert!(SyntheticDataset::new(profile, 1, 2).is_err());
    }

    #[test]
    fn iteration_yields_every_sample_in_order() {
        let d = dataset();
        let names: Vec<String> = d.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].ends_with("0000"));
        assert!(names[2].ends_with("0002"));
    }

    #[test]
    fn samples_are_stable_across_equal_datasets() {
        let a = dataset().sample(1).unwrap();
        let b = dataset().sample(1).unwrap();
        assert_eq!(a, b);
    }
}
