use crate::{DatasetProfile, Result};
use imaging::{draw, filter, DynamicImage, GrayImage, LabelMap, RgbImage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Renders synthetic nuclei images (and exact ground-truth masks) following
/// a [`DatasetProfile`].
///
/// The generator is deterministic: the same `(profile, seed, index)` always
/// produces the same image, which keeps every experiment in the workspace
/// reproducible.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use synthdata::{DatasetProfile, NucleiImageGenerator};
/// let generator = NucleiImageGenerator::new(DatasetProfile::bbbc005_like().scaled(48, 48), 7)?;
/// let sample = generator.generate(0)?;
/// assert_eq!(sample.image.channels(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NucleiImageGenerator {
    profile: DatasetProfile,
    seed: u64,
}

/// A single rendered nucleus description (internal).
struct Nucleus {
    cx: f64,
    cy: f64,
    rx: f64,
    ry: f64,
    intensity: u8,
}

impl NucleiImageGenerator {
    /// Creates a generator for the given profile and base seed.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SynthError::InvalidProfile`] if the profile is
    /// inconsistent.
    pub fn new(profile: DatasetProfile, seed: u64) -> Result<Self> {
        profile.validate()?;
        Ok(Self { profile, seed })
    }

    /// The profile this generator renders.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    fn rng_for(&self, index: usize) -> ChaCha8Rng {
        // Mix the sample index into the seed so samples are independent but
        // individually reproducible.
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        ChaCha8Rng::seed_from_u64(mixed)
    }

    fn place_nuclei(&self, rng: &mut ChaCha8Rng) -> Vec<Nucleus> {
        let p = &self.profile;
        let count = rng.gen_range(p.min_nuclei..=p.max_nuclei);
        let mut nuclei: Vec<Nucleus> = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while nuclei.len() < count && attempts < count * 50 {
            attempts += 1;
            let r_base = rng.gen_range(p.min_radius..=p.max_radius);
            let ecc = rng.gen_range(1.0..=p.max_eccentricity);
            let (rx, ry) = if rng.gen::<bool>() {
                (r_base * ecc, r_base)
            } else {
                (r_base, r_base * ecc)
            };
            let cx = rng.gen_range(0.0..p.width as f64);
            let cy = rng.gen_range(0.0..p.height as f64);
            if !p.allow_overlap {
                let too_close = nuclei.iter().any(|n| {
                    let dx = n.cx - cx;
                    let dy = n.cy - cy;
                    let min_sep = n.rx.max(n.ry) + rx.max(ry) + 2.0;
                    dx * dx + dy * dy < min_sep * min_sep
                });
                if too_close {
                    continue;
                }
            }
            let jitter = i32::from(p.nucleus_level_jitter);
            let delta = if jitter > 0 {
                rng.gen_range(-jitter..=jitter)
            } else {
                0
            };
            let intensity = (i32::from(p.nucleus_level) + delta).clamp(0, 255) as u8;
            nuclei.push(Nucleus {
                cx,
                cy,
                rx,
                ry,
                intensity,
            });
        }
        nuclei
    }

    /// Renders the grayscale intensity canvas and the instance ground truth.
    fn render_intensity(
        &self,
        rng: &mut ChaCha8Rng,
        nuclei: &[Nucleus],
    ) -> Result<(GrayImage, LabelMap)> {
        let p = &self.profile;
        let mut canvas = GrayImage::filled(p.width, p.height, p.background_level)?;
        let mut truth = LabelMap::new(p.width, p.height)?;

        // Tissue texture (MoNuSeg-style), centred around zero.
        if p.texture_amplitude > 0.0 {
            let texture_seed: u64 = rng.gen();
            for y in 0..p.height {
                for x in 0..p.width {
                    let t = filter::value_noise(x as f64, y as f64, p.texture_cell, texture_seed);
                    let old = f64::from(canvas.get(x, y)?);
                    let new = (old + p.texture_amplitude * (t - 0.5)).clamp(0.0, 255.0) as u8;
                    canvas.set(x, y, new)?;
                }
            }
        }

        // Uneven illumination.
        if p.gradient_strength > 0.0 {
            let a = rng.gen_range(-1.0..=1.0);
            let b = rng.gen_range(-1.0..=1.0);
            draw::add_linear_gradient(&mut canvas, a, b, p.gradient_strength);
        }

        // Nuclei (drawn after background effects so their intensity is crisp).
        for (i, n) in nuclei.iter().enumerate() {
            draw::fill_ellipse(&mut canvas, n.cx, n.cy, n.rx, n.ry, n.intensity);
            draw::fill_ellipse_label(&mut truth, n.cx, n.cy, n.rx, n.ry, (i + 1) as u32);
        }

        // Point-spread-function blur and sensor noise.
        let blurred = if p.blur_sigma > 0.0 {
            filter::gaussian_blur(&canvas, p.blur_sigma)?
        } else {
            canvas
        };
        let mut noisy = blurred;
        filter::add_gaussian_noise(&mut noisy, p.noise_sigma, rng)?;
        Ok((noisy, truth))
    }

    /// Converts the intensity canvas to the profile's channel count.
    fn to_output_image(&self, rng: &mut ChaCha8Rng, gray: GrayImage) -> Result<DynamicImage> {
        if self.profile.channels == 1 {
            return Ok(DynamicImage::Gray(gray));
        }
        // Three-channel rendering: apply mild per-channel gains so the image
        // is genuinely colourful (the colour encoder sees three different
        // values) while keeping the luma close to the intensity canvas.
        let gains: [f64; 3] = [
            1.0 - rng.gen_range(0.0..0.15),
            1.0 - rng.gen_range(0.0..0.15),
            1.0 - rng.gen_range(0.0..0.15),
        ];
        let mut rgb = RgbImage::new(gray.width(), gray.height())?;
        for (x, y, v) in gray.iter_pixels() {
            let px = [
                (f64::from(v) * gains[0]).round().clamp(0.0, 255.0) as u8,
                (f64::from(v) * gains[1]).round().clamp(0.0, 255.0) as u8,
                (f64::from(v) * gains[2]).round().clamp(0.0, 255.0) as u8,
            ];
            rgb.set(x, y, px)?;
        }
        Ok(DynamicImage::Rgb(rgb))
    }

    /// Generates the sample with the given index.
    ///
    /// # Errors
    ///
    /// Propagates imaging errors; these only occur for profiles that fail
    /// [`DatasetProfile::validate`], which `new` already rejects.
    pub fn generate(&self, index: usize) -> Result<crate::Sample> {
        let mut rng = self.rng_for(index);
        let nuclei = self.place_nuclei(&mut rng);
        let (gray, truth) = self.render_intensity(&mut rng, &nuclei)?;
        let image = self.to_output_image(&mut rng, gray)?;
        Ok(crate::Sample {
            name: format!("{}-{index:04}", self.profile.name),
            image,
            ground_truth: truth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::metrics;

    fn small(profile: DatasetProfile) -> DatasetProfile {
        profile.scaled(64, 64)
    }

    #[test]
    fn generation_is_deterministic() {
        let generator =
            NucleiImageGenerator::new(small(DatasetProfile::dsb2018_like()), 11).unwrap();
        let a = generator.generate(3).unwrap();
        let b = generator.generate(3).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn different_indices_differ() {
        let generator =
            NucleiImageGenerator::new(small(DatasetProfile::dsb2018_like()), 11).unwrap();
        let a = generator.generate(0).unwrap();
        let b = generator.generate(1).unwrap();
        assert_ne!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn channels_follow_profile() {
        let gray = NucleiImageGenerator::new(small(DatasetProfile::bbbc005_like()), 1)
            .unwrap()
            .generate(0)
            .unwrap();
        assert_eq!(gray.image.channels(), 1);
        let rgb = NucleiImageGenerator::new(small(DatasetProfile::monuseg_like()), 1)
            .unwrap()
            .generate(0)
            .unwrap();
        assert_eq!(rgb.image.channels(), 3);
    }

    #[test]
    fn ground_truth_has_nuclei_and_matches_image_shape() {
        let generator =
            NucleiImageGenerator::new(small(DatasetProfile::bbbc005_like()), 5).unwrap();
        let sample = generator.generate(0).unwrap();
        assert_eq!(sample.image.width(), sample.ground_truth.width());
        assert_eq!(sample.image.height(), sample.ground_truth.height());
        assert!(sample.ground_truth.foreground_pixels() > 10);
        // Foreground should not swallow the whole image either.
        let coverage = sample.ground_truth.foreground_pixels() as f64
            / sample.ground_truth.pixel_count() as f64;
        assert!(coverage < 0.8, "coverage {coverage}");
    }

    #[test]
    fn bright_field_profiles_have_bright_nuclei() {
        // Thresholding the BBBC005-like image at the midpoint between
        // background and nucleus levels should roughly recover the mask —
        // the property that makes the dataset "easy" in the paper.
        let profile = small(DatasetProfile::bbbc005_like());
        let threshold =
            (u16::from(profile.background_level) + u16::from(profile.nucleus_level)) / 2;
        let generator = NucleiImageGenerator::new(profile, 9).unwrap();
        let sample = generator.generate(0).unwrap();
        let thresholded = LabelMap::from_threshold(&sample.image.to_gray(), threshold as u8);
        let iou = metrics::binary_iou(&thresholded, &sample.ground_truth.to_binary()).unwrap();
        assert!(iou > 0.7, "threshold IoU {iou}");
    }

    #[test]
    fn monuseg_profile_is_harder_than_bbbc005() {
        // The same naive threshold heuristic should do clearly worse on the
        // MoNuSeg-like profile — this preserves the difficulty ordering that
        // drives Table I.
        let score = |profile: DatasetProfile| {
            let threshold =
                (u16::from(profile.background_level) + u16::from(profile.nucleus_level)) / 2;
            let dark_nuclei = profile.nucleus_level < profile.background_level;
            let generator = NucleiImageGenerator::new(profile, 13).unwrap();
            let mut total = 0.0;
            for i in 0..3 {
                let sample = generator.generate(i).unwrap();
                let gray = sample.image.to_gray();
                let mask = if dark_nuclei {
                    // Invert for dark-on-bright stains.
                    let inverted = GrayImage::from_raw(
                        gray.width(),
                        gray.height(),
                        gray.as_raw().iter().map(|&v| 255 - v).collect(),
                    )
                    .unwrap();
                    LabelMap::from_threshold(&inverted, 255 - threshold as u8)
                } else {
                    LabelMap::from_threshold(&gray, threshold as u8)
                };
                total += metrics::binary_iou(&mask, &sample.ground_truth.to_binary()).unwrap();
            }
            total / 3.0
        };
        let easy = score(small(DatasetProfile::bbbc005_like()));
        let hard = score(small(DatasetProfile::monuseg_like()));
        assert!(easy > hard, "bbbc005 {easy} vs monuseg {hard}");
    }

    #[test]
    fn non_overlapping_profiles_produce_separated_instances() {
        let generator =
            NucleiImageGenerator::new(small(DatasetProfile::bbbc005_like()), 21).unwrap();
        let sample = generator.generate(2).unwrap();
        let hist = sample.ground_truth.label_histogram();
        // Each instance label that exists covers at least a handful of pixels.
        for (&label, &count) in &hist {
            if label != 0 {
                assert!(count >= 3, "label {label} has only {count} pixels");
            }
        }
        assert!(
            hist.len() >= 2,
            "expected at least one nucleus plus background"
        );
    }
}
