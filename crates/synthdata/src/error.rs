use std::error::Error;
use std::fmt;

/// Errors produced by the synthetic dataset generators.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthError {
    /// A profile parameter is outside its valid domain.
    InvalidProfile {
        /// Description of the offending parameter.
        message: String,
    },
    /// A sample index beyond the dataset length was requested.
    SampleOutOfRange {
        /// Requested index.
        index: usize,
        /// Number of samples in the dataset.
        len: usize,
    },
    /// An underlying imaging operation failed.
    Imaging(imaging::ImagingError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidProfile { message } => write!(f, "invalid profile: {message}"),
            SynthError::SampleOutOfRange { index, len } => {
                write!(
                    f,
                    "sample index {index} out of range for dataset of {len} samples"
                )
            }
            SynthError::Imaging(err) => write!(f, "imaging error: {err}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Imaging(err) => Some(err),
            _ => None,
        }
    }
}

impl From<imaging::ImagingError> for SynthError {
    fn from(err: imaging::ImagingError) -> Self {
        SynthError::Imaging(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SynthError::SampleOutOfRange { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = SynthError::InvalidProfile {
            message: "zero nuclei".to_string(),
        };
        assert!(e.to_string().contains("zero nuclei"));
    }

    #[test]
    fn imaging_errors_carry_a_source() {
        let e = SynthError::from(imaging::ImagingError::EmptyImage);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SynthError>();
    }
}
