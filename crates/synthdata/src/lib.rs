//! Synthetic nuclei-microscopy dataset generators.
//!
//! The SegHDC paper evaluates on three public microscopy datasets —
//! BBBC005, DSB2018 and MoNuSeg — which cannot be redistributed with this
//! repository. This crate generates *synthetic* stand-ins that preserve the
//! statistics the segmentation algorithms actually react to: image size,
//! number and size of nuclei, foreground/background contrast, illumination
//! gradients, sensor noise and (for the MoNuSeg profile) dense touching
//! nuclei over textured tissue. Ground-truth masks are exact by
//! construction, so IoU scores are well defined.
//!
//! Every sample is produced deterministically from `(profile, seed, index)`,
//! which makes all experiments in the workspace reproducible.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use synthdata::{DatasetProfile, SyntheticDataset};
//!
//! let dataset = SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(64, 64), 42, 3)?;
//! let sample = dataset.sample(0)?;
//! assert_eq!(sample.image.width(), 64);
//! assert!(sample.ground_truth.foreground_pixels() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod generator;
mod profile;

pub use dataset::{Sample, SyntheticDataset};
pub use error::SynthError;
pub use generator::NucleiImageGenerator;
pub use profile::DatasetProfile;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SynthError>;
