use crate::{Result, SynthError};

/// Statistical description of a synthetic nuclei dataset.
///
/// A profile captures the parameters that determine how hard an image is to
/// segment: size, number and size of nuclei, contrast between nuclei and
/// background, illumination gradient, sensor noise, background texture and
/// whether nuclei may touch. The three presets approximate the evaluation
/// datasets of the SegHDC paper.
///
/// # Example
///
/// ```rust
/// let profile = synthdata::DatasetProfile::bbbc005_like();
/// assert_eq!(profile.channels, 1);
/// assert!(profile.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Human readable name, printed by the experiment harnesses.
    pub name: String,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// 1 (grayscale) or 3 (RGB-like stain rendering).
    pub channels: usize,
    /// Minimum number of nuclei per image.
    pub min_nuclei: usize,
    /// Maximum number of nuclei per image.
    pub max_nuclei: usize,
    /// Minimum nucleus radius in pixels.
    pub min_radius: f64,
    /// Maximum nucleus radius in pixels.
    pub max_radius: f64,
    /// Mean background intensity (0-255).
    pub background_level: u8,
    /// Mean nucleus intensity (0-255). Larger gap to `background_level`
    /// means higher contrast and easier segmentation.
    pub nucleus_level: u8,
    /// Per-nucleus intensity jitter (+/-, in gray levels).
    pub nucleus_level_jitter: u8,
    /// Strength of the linear illumination gradient added to the background.
    pub gradient_strength: f64,
    /// Standard deviation of the additive Gaussian sensor noise.
    pub noise_sigma: f64,
    /// Amplitude (0-255) of the value-noise tissue texture.
    pub texture_amplitude: f64,
    /// Cell size in pixels of the value-noise texture.
    pub texture_cell: f64,
    /// Gaussian blur applied after rendering (point-spread-function width).
    pub blur_sigma: f64,
    /// Whether nuclei are allowed to overlap/touch (MoNuSeg-style density).
    pub allow_overlap: bool,
    /// Eccentricity range: maximum ratio between ellipse radii.
    pub max_eccentricity: f64,
}

impl DatasetProfile {
    /// Profile approximating **BBBC005** (Broad Bioimage Benchmark
    /// Collection): large 520×696 single-channel images of well-separated,
    /// bright synthetic cells on a dark, clean background.
    pub fn bbbc005_like() -> Self {
        Self {
            name: "BBBC005-like".to_string(),
            width: 696,
            height: 520,
            channels: 1,
            min_nuclei: 12,
            max_nuclei: 24,
            min_radius: 11.0,
            max_radius: 20.0,
            background_level: 18,
            nucleus_level: 205,
            nucleus_level_jitter: 20,
            gradient_strength: 12.0,
            noise_sigma: 4.0,
            texture_amplitude: 0.0,
            texture_cell: 32.0,
            blur_sigma: 1.2,
            allow_overlap: false,
            max_eccentricity: 1.4,
        }
    }

    /// Profile approximating **DSB2018** (2018 Data Science Bowl
    /// `stage1_train`): 256×320 three-channel fluorescence images with
    /// moderate noise, uneven illumination and variable nucleus brightness.
    pub fn dsb2018_like() -> Self {
        Self {
            name: "DSB2018-like".to_string(),
            width: 320,
            height: 256,
            channels: 3,
            min_nuclei: 10,
            max_nuclei: 30,
            min_radius: 6.0,
            max_radius: 14.0,
            background_level: 28,
            nucleus_level: 170,
            nucleus_level_jitter: 45,
            gradient_strength: 30.0,
            noise_sigma: 9.0,
            texture_amplitude: 10.0,
            texture_cell: 48.0,
            blur_sigma: 1.0,
            allow_overlap: false,
            max_eccentricity: 1.8,
        }
    }

    /// Profile approximating **MoNuSeg** (multi-organ nucleus segmentation
    /// challenge): H&E-stained tissue rendered as three channels, densely
    /// packed touching nuclei, strong tissue texture and low contrast. This
    /// is the hardest profile and yields the lowest IoU scores for every
    /// method, as in the paper.
    pub fn monuseg_like() -> Self {
        Self {
            name: "MoNuSeg-like".to_string(),
            width: 256,
            height: 256,
            channels: 3,
            min_nuclei: 90,
            max_nuclei: 150,
            min_radius: 3.0,
            max_radius: 6.0,
            background_level: 150,
            nucleus_level: 80,
            nucleus_level_jitter: 35,
            gradient_strength: 20.0,
            noise_sigma: 14.0,
            texture_amplitude: 50.0,
            texture_cell: 8.0,
            blur_sigma: 0.8,
            allow_overlap: true,
            max_eccentricity: 2.0,
        }
    }

    /// Profile approximating a full **microscopy scan**: a 1024×1024
    /// single-channel stitched-objective capture with many well-separated
    /// bright nuclei on a dark, lightly vignetted background. This is the
    /// large-image workload the streaming tiled segmenter (seghdc's
    /// `segment_streaming` path) exists for — the whole-image hypervector
    /// matrix of a scan this size does not fit on the paper's target edge
    /// devices.
    pub fn microscopy_scan_like() -> Self {
        Self {
            name: "MicroscopyScan".to_string(),
            width: 1024,
            height: 1024,
            channels: 1,
            min_nuclei: 45,
            max_nuclei: 90,
            min_radius: 11.0,
            max_radius: 22.0,
            background_level: 16,
            nucleus_level: 210,
            nucleus_level_jitter: 18,
            gradient_strength: 10.0,
            noise_sigma: 3.0,
            texture_amplitude: 0.0,
            texture_cell: 64.0,
            blur_sigma: 1.0,
            allow_overlap: false,
            max_eccentricity: 1.5,
        }
    }

    /// Returns a copy of the profile with a different image size, scaling
    /// the nucleus count with the image area so density stays comparable.
    ///
    /// The experiment harnesses use this to run statistically faithful but
    /// cheaper versions of the paper's workloads on small images.
    pub fn scaled(&self, width: usize, height: usize) -> Self {
        let area_ratio = (width * height) as f64 / (self.width * self.height) as f64;
        let scale = |n: usize| ((n as f64 * area_ratio).round() as usize).max(1);
        // Nuclei must stay well inside even very small target images, so the
        // radius range is capped at a third of the shorter side.
        let radius_cap = (width.min(height) as f64 / 3.0).max(1.0);
        let max_radius = self.max_radius.min(radius_cap);
        let min_radius = self.min_radius.min(max_radius);
        Self {
            name: self.name.clone(),
            width,
            height,
            min_nuclei: scale(self.min_nuclei),
            max_nuclei: scale(self.max_nuclei).max(scale(self.min_nuclei) + 1),
            min_radius,
            max_radius,
            ..self.clone()
        }
    }

    /// Validates that the profile parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidProfile`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(SynthError::InvalidProfile {
                message: "image dimensions must be non-zero".to_string(),
            });
        }
        if self.channels != 1 && self.channels != 3 {
            return Err(SynthError::InvalidProfile {
                message: format!("channels must be 1 or 3, got {}", self.channels),
            });
        }
        if self.min_nuclei == 0 || self.max_nuclei < self.min_nuclei {
            return Err(SynthError::InvalidProfile {
                message: "nucleus count range must be non-empty and at least 1".to_string(),
            });
        }
        if !(self.min_radius > 0.0 && self.max_radius >= self.min_radius) {
            return Err(SynthError::InvalidProfile {
                message: "nucleus radius range must be positive and ordered".to_string(),
            });
        }
        if self.max_radius * 2.0 > self.width.min(self.height) as f64 {
            return Err(SynthError::InvalidProfile {
                message: "nuclei must fit inside the image".to_string(),
            });
        }
        if self.noise_sigma < 0.0 || self.texture_amplitude < 0.0 || self.gradient_strength < 0.0 {
            return Err(SynthError::InvalidProfile {
                message: "noise, texture and gradient strengths must be non-negative".to_string(),
            });
        }
        if self.max_eccentricity < 1.0 {
            return Err(SynthError::InvalidProfile {
                message: "max eccentricity must be >= 1".to_string(),
            });
        }
        Ok(())
    }

    /// Absolute contrast between nucleus and background mean levels.
    pub fn contrast(&self) -> u8 {
        self.nucleus_level.abs_diff(self.background_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_image_shapes() {
        let bbbc = DatasetProfile::bbbc005_like();
        assert_eq!((bbbc.width, bbbc.height, bbbc.channels), (696, 520, 1));
        let dsb = DatasetProfile::dsb2018_like();
        assert_eq!((dsb.width, dsb.height, dsb.channels), (320, 256, 3));
        let monu = DatasetProfile::monuseg_like();
        assert_eq!(monu.channels, 3);
        for p in [bbbc, dsb, monu] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn microscopy_scan_profile_is_a_valid_large_single_channel_workload() {
        let scan = DatasetProfile::microscopy_scan_like();
        assert_eq!((scan.width, scan.height, scan.channels), (1024, 1024, 1));
        scan.validate().unwrap();
        // High contrast and clean background: the streaming equivalence
        // harness relies on this profile segmenting cleanly.
        assert!(scan.contrast() > 150);
        assert!(!scan.allow_overlap);
        // Scaled-down variants stay valid (used by benches and smoke tests).
        scan.scaled(256, 256).validate().unwrap();
        scan.scaled(16, 16).validate().unwrap();
    }

    #[test]
    fn difficulty_ordering_of_presets() {
        // MoNuSeg-like must be the lowest-contrast, most cluttered profile,
        // BBBC005-like the cleanest — this is what produces the paper's
        // score ordering.
        let bbbc = DatasetProfile::bbbc005_like();
        let dsb = DatasetProfile::dsb2018_like();
        let monu = DatasetProfile::monuseg_like();
        assert!(bbbc.contrast() > dsb.contrast());
        assert!(dsb.contrast() > monu.contrast());
        assert!(monu.noise_sigma >= dsb.noise_sigma);
        assert!(monu.texture_amplitude > dsb.texture_amplitude);
        assert!(bbbc.texture_amplitude == 0.0);
        assert!(monu.allow_overlap);
        assert!(!bbbc.allow_overlap);
    }

    #[test]
    fn scaled_preserves_density_roughly() {
        let full = DatasetProfile::dsb2018_like();
        let small = full.scaled(64, 64);
        small.validate().unwrap();
        assert_eq!(small.width, 64);
        let full_density = full.max_nuclei as f64 / (full.width * full.height) as f64;
        let small_density = small.max_nuclei as f64 / (64.0 * 64.0);
        assert!((full_density / small_density).abs() < 3.0);
        assert!(small.min_nuclei >= 1);
    }

    #[test]
    fn validation_rejects_inconsistent_profiles() {
        let mut p = DatasetProfile::dsb2018_like();
        p.channels = 2;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.min_nuclei = 10;
        p.max_nuclei = 5;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.min_radius = -1.0;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.max_radius = 4000.0;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.noise_sigma = -0.5;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.max_eccentricity = 0.5;
        assert!(p.validate().is_err());

        let mut p = DatasetProfile::dsb2018_like();
        p.width = 0;
        assert!(p.validate().is_err());
    }
}
