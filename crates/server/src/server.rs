//! The threaded segmentation server.
//!
//! One accept loop, one connection thread per client, a **sharded**
//! admission queue ([`crate::shard`]) with one shard per worker, and a
//! fixed worker pool dispatching into shared [`SegEngine`]s. The contract
//! a client sees:
//!
//! * **Backpressure, not queuing collapse.** A request that fits no
//!   admission shard is answered immediately with a [`WireStatus::Busy`]
//!   frame.
//! * **Deadlines are honoured.** Each request carries a deadline; a worker
//!   that dequeues an already-expired job answers
//!   [`WireStatus::DeadlineExceeded`] without touching the engine, and the
//!   connection thread enforces the same bound as a safety net even if a
//!   worker stalls.
//! * **Panics stay inside the worker.** A panicking execution is caught
//!   and answered with [`WireStatus::Internal`]; the shared codebook cache
//!   and arena pools recover from the poisoned locks (see the
//!   `seghdc::cache` and `seghdc::engine` panic-safety tests), so the next
//!   request on the same engine is served normally.
//! * **Cache-aware scheduling, twice over.** Admission consistently
//!   hashes each request's [`CodebookKey`] to a home shard, so same-shape
//!   traffic keeps landing on the worker whose cache path is warm; on top
//!   of that, workers dequeue *groups* of same-key requests, so a burst
//!   pays one codebook build and then hits the shared cache. Cold or
//!   overflowing shards spill at admission and are stolen from at
//!   dispatch, so pinning never strands capacity.
//! * **Warm starts.** [`ServerConfig::codebook_snapshot`] names a
//!   [`seghdc::snapshot`]-format file to preload the codebook cache from
//!   before the listener accepts, and [`ServerHandle::save_snapshot`]
//!   writes one back; a warm-started server serves its first same-shape
//!   request with zero cache misses.
//! * **Observable from outside.** A `STATS` frame returns uptime,
//!   per-connection and server-wide request/latency counters, cache
//!   counters, and per-shard routing counters (see
//!   [`crate::protocol::WireStatsResponse`]).

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seghdc::{
    CodebookCache, CodebookKey, ExecutedMode, ExecutionMode, SegEngine, SegHdcConfig, SegHdcError,
    SegmentRequest, SnapshotError, TileConfig,
};

use crate::metrics::ServerMetrics;
use crate::protocol::{
    RequestMode, ResponseBody, WireCacheStats, WireConnectionStats, WireSegmentRequest,
    WireSegmentResponse, WireServerStats, WireShardStats, WireStatsRequest, WireStatsResponse,
    WireStatus, WireTelemetry,
};
use crate::queue::PushError;
use crate::shard::{key_hash, ShardedQueue};
use crate::wire::{
    read_frame, write_frame, WireError, DEFAULT_MAX_FRAME_BYTES, FRAME_REQUEST, FRAME_RESPONSE,
    FRAME_STATS_REQUEST, FRAME_STATS_RESPONSE,
};
use crate::ServerError;

/// Tuning knobs of a running server (see [`serve`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing segmentations; also the admission shard
    /// count (one shard per worker).
    pub workers: usize,
    /// Admission capacity **per shard**; requests beyond it spill to other
    /// shards, and get `Busy` only when every shard is full.
    pub queue_depth: usize,
    /// Largest frame accepted or produced, in bytes.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request asks for `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Most same-codebook requests a worker dequeues back-to-back.
    pub max_group: usize,
    /// Most distinct engine configurations kept resident; an arbitrary
    /// engine is dropped beyond this (its codebooks stay in the shared
    /// cache, so resurrecting it later is cheap).
    pub max_engines: usize,
    /// Byte capacity of the codebook cache shared by every engine.
    pub codebook_cache_bytes: usize,
    /// Snapshot file to warm-start the codebook cache from before the
    /// listener accepts. A missing file is a normal cold start (first
    /// boot); an existing-but-corrupt file refuses to start with
    /// [`ServerError::Snapshot`].
    pub codebook_snapshot: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_depth: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline: Duration::from_secs(10),
            max_group: 8,
            max_engines: 16,
            codebook_cache_bytes: 64 << 20,
            codebook_snapshot: None,
        }
    }
}

/// One admitted request travelling from a connection thread to a worker.
struct Job {
    request: WireSegmentRequest,
    key: CodebookKey,
    deadline: Instant,
    enqueued: Instant,
    reply: mpsc::Sender<WireSegmentResponse>,
}

/// Hashable identity of an engine configuration (bit-compares `alpha`,
/// like [`CodebookKey`] does).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    seed: u64,
    dimension: usize,
    alpha_bits: u64,
    beta: usize,
    gamma: usize,
    clusters: usize,
    iterations: usize,
    position_encoding: seghdc::PositionEncoding,
    color_encoding: seghdc::ColorEncoding,
    distance_metric: seghdc::DistanceMetric,
}

impl EngineKey {
    fn of(config: &SegHdcConfig) -> Self {
        Self {
            seed: config.seed,
            dimension: config.dimension,
            alpha_bits: config.alpha.to_bits(),
            beta: config.beta,
            gamma: config.gamma,
            clusters: config.clusters,
            iterations: config.iterations,
            position_encoding: config.position_encoding,
            color_encoding: config.color_encoding,
            distance_metric: config.distance_metric,
        }
    }
}

/// Engines keyed by configuration, all sharing one codebook cache.
struct EngineFleet {
    engines: Mutex<HashMap<EngineKey, Arc<SegEngine>>>,
    cache: Arc<CodebookCache>,
    max_engines: usize,
}

impl EngineFleet {
    fn new(codebook_cache_bytes: usize, max_engines: usize) -> Self {
        Self {
            engines: Mutex::new(HashMap::new()),
            cache: Arc::new(CodebookCache::with_capacity(codebook_cache_bytes)),
            max_engines: max_engines.max(1),
        }
    }

    /// The engine for `config`, building (and validating) it on first use.
    fn engine_for(&self, config: &SegHdcConfig) -> Result<Arc<SegEngine>, SegHdcError> {
        let key = EngineKey::of(config);
        let mut engines = self
            .engines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(engine) = engines.get(&key) {
            return Ok(Arc::clone(engine));
        }
        let engine = Arc::new(
            SegEngine::builder(config.clone())
                .cache(Arc::clone(&self.cache))
                .build()?,
        );
        if engines.len() >= self.max_engines {
            let victim = engines.keys().next().cloned();
            if let Some(victim) = victim {
                engines.remove(&victim);
            }
        }
        engines.insert(key, Arc::clone(&engine));
        Ok(engine)
    }

    fn cache_stats(&self) -> seghdc::CacheStats {
        self.cache.stats()
    }

    fn load_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.cache.load_snapshot(path)
    }

    fn save_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.cache.save_snapshot(path)
    }
}

/// Everything a connection thread or worker needs, behind one `Arc`.
struct ServerShared {
    config: ServerConfig,
    queue: ShardedQueue<Job>,
    fleet: EngineFleet,
    metrics: ServerMetrics,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serializes every codebook resident in the shared cache to `path`
    /// in the [`seghdc::snapshot`] format, returning how many codebooks
    /// were written. A later server started with
    /// [`ServerConfig::codebook_snapshot`] pointing at the file serves its
    /// first same-shape request warm.
    ///
    /// # Errors
    ///
    /// [`ServerError::Snapshot`] if writing fails.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, ServerError> {
        Ok(self.shared.fleet.save_snapshot(path)?)
    }

    /// Stops accepting, drains admitted jobs, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a server on `addr` (use port `0` for an ephemeral port).
///
/// # Errors
///
/// [`ServerError::Io`] if the listener cannot bind;
/// [`ServerError::Snapshot`] if [`ServerConfig::codebook_snapshot`] names
/// an existing file that fails to load (a missing file is a cold start,
/// not an error).
pub fn serve(addr: &str, config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let fleet = EngineFleet::new(config.codebook_cache_bytes, config.max_engines);
    let metrics = ServerMetrics::new();

    if let Some(path) = config.codebook_snapshot.as_deref() {
        if path.exists() {
            let loaded = fleet.load_snapshot(path)?;
            metrics.record_snapshot_loaded(loaded);
        }
    }

    let shared = Arc::new(ServerShared {
        queue: ShardedQueue::new(workers, config.queue_depth),
        config,
        fleet,
        metrics,
    });

    let worker_threads = (0..workers)
        .map(|worker| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(worker, &shared))
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &shared);
                });
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        shared,
        accept_thread: Some(accept_thread),
        workers: worker_threads,
    })
}

/// Reads frames off one connection until EOF, answering each.
fn serve_connection(mut stream: TcpStream, shared: &ServerShared) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    let max_frame_bytes = shared.config.max_frame_bytes;
    let mut connection = WireConnectionStats::default();
    loop {
        let (kind, payload) = match read_frame(&mut stream, max_frame_bytes) {
            Ok(Some(frame)) => frame,
            // Clean EOF: the client is done.
            Ok(None) => return Ok(()),
            Err(err) => {
                // Malformed framing: answer with one Invalid frame, then
                // hang up (resynchronising a corrupt byte stream is not
                // worth guessing at).
                let response = WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0);
                let _ = write_frame(
                    &mut stream,
                    FRAME_RESPONSE,
                    &response.encode(),
                    max_frame_bytes,
                );
                let _ = stream.flush();
                drain_before_close(&mut stream, max_frame_bytes);
                return Err(err);
            }
        };
        match kind {
            FRAME_REQUEST => {
                connection.requests += 1;
                let response = handle_request(&payload, shared);
                match response.status() {
                    WireStatus::Ok => connection.responses_ok += 1,
                    _ => connection.responses_error += 1,
                }
                write_frame(
                    &mut stream,
                    FRAME_RESPONSE,
                    &response.encode(),
                    max_frame_bytes,
                )?;
            }
            FRAME_STATS_REQUEST => match WireStatsRequest::decode(&payload) {
                Ok(WireStatsRequest) => {
                    let response = stats_response(shared, &connection);
                    write_frame(
                        &mut stream,
                        FRAME_STATS_RESPONSE,
                        &response.encode(),
                        max_frame_bytes,
                    )?;
                }
                Err(err) => {
                    let response =
                        WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0);
                    write_frame(
                        &mut stream,
                        FRAME_RESPONSE,
                        &response.encode(),
                        max_frame_bytes,
                    )?;
                }
            },
            other => {
                let response = WireSegmentResponse::error(
                    WireStatus::Invalid,
                    format!("expected a request frame, got kind {other}"),
                    0,
                );
                write_frame(
                    &mut stream,
                    FRAME_RESPONSE,
                    &response.encode(),
                    max_frame_bytes,
                )?;
            }
        }
    }
}

/// Consumes whatever the peer has already sent (bounded in bytes and
/// time) before the socket drops. Closing with unread data in the receive
/// buffer makes TCP reset the connection, which can destroy the error
/// frame still in flight and break the peer's pending write — e.g. a
/// client mid-way through sending the oversized frame that triggered the
/// rejection.
fn drain_before_close(stream: &mut TcpStream, _max_bytes: usize) {
    use std::io::Read as _;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 8192];
    // The rejected frame may be far larger than this server's own cap —
    // that is usually why it was rejected — so the drain is bounded by
    // time, not by the cap: a stalling or endlessly streaming peer gets
    // the RST after the deadline instead of holding the thread.
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => {}
            // EOF, a read timeout, or an error: nothing more in flight.
            _ => break,
        }
    }
}

/// Builds a `STATS` response from the shared counters.
fn stats_response(shared: &ServerShared, connection: &WireConnectionStats) -> WireStatsResponse {
    let metrics = shared.metrics.snapshot();
    let cache = shared.fleet.cache_stats();
    WireStatsResponse {
        uptime_ms: shared.metrics.uptime_ms(),
        workers: shared.queue.shard_count() as u32,
        connection: *connection,
        server: WireServerStats {
            admitted: metrics.admitted,
            responses_ok: metrics.ok,
            responses_busy: metrics.busy,
            responses_deadline: metrics.deadline_exceeded,
            responses_invalid: metrics.invalid,
            responses_internal: metrics.internal,
            queue_wait_us: metrics.queue_wait_us,
            service_us: metrics.service_us,
        },
        cache: WireCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            entries: cache.entries as u32,
            bytes: cache.bytes as u64,
            snapshot_loaded: metrics.snapshot_codebooks_loaded as u32,
        },
        shards: shared
            .queue
            .stats()
            .into_iter()
            .map(|shard| WireShardStats {
                routed: shard.routed,
                spilled: shard.spilled,
                stolen: shard.stolen,
                served: shard.served,
                depth: shard.depth,
            })
            .collect(),
    }
}

/// Admits one decoded request and waits (deadline-bounded) for its
/// response. Every response path records itself in the server metrics
/// exactly once — as the client will see it.
fn handle_request(payload: &[u8], shared: &ServerShared) -> WireSegmentResponse {
    let response = admit_and_wait(payload, shared);
    shared.metrics.record_response(
        response.status(),
        response.queue_wait_us,
        response.service_us,
    );
    response
}

fn admit_and_wait(payload: &[u8], shared: &ServerShared) -> WireSegmentResponse {
    let request = match WireSegmentRequest::decode(payload) {
        Ok(request) => request,
        Err(err) => return WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0),
    };
    let deadline_budget = if request.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(u64::from(request.deadline_ms))
    };
    let enqueued = Instant::now();
    let deadline = enqueued + deadline_budget;
    let key = CodebookKey::for_shape(
        &request.config,
        request.width as usize,
        request.height as usize,
        usize::from(request.channels),
    );
    let hash = key_hash(&key);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request,
        key,
        deadline,
        enqueued,
        reply: reply_tx,
    };
    match shared.queue.try_push(job, hash) {
        Ok(_shard) => shared.metrics.record_admitted(),
        Err(err) => {
            let (status, message) = match err {
                PushError::Full(_) => (
                    WireStatus::Busy,
                    format!(
                        "admission queue is full ({} jobs per shard across {} shards)",
                        shared.config.queue_depth,
                        shared.queue.shard_count()
                    ),
                ),
                PushError::ShutDown(_) => (WireStatus::Busy, "server is shutting down".to_string()),
            };
            return WireSegmentResponse::error(status, message, 0);
        }
    }
    // Safety net on top of the worker-side deadline check: even if every
    // worker is stuck in a long execution, the client hears back shortly
    // after its deadline.
    let grace = Duration::from_millis(50);
    match reply_rx.recv_timeout(deadline_budget + grace) {
        Ok(response) => response,
        Err(_) => WireSegmentResponse::error(
            WireStatus::DeadlineExceeded,
            format!("deadline of {deadline_budget:?} elapsed before a worker finished"),
            enqueued.elapsed().as_micros() as u64,
        ),
    }
}

/// Worker: dequeue a same-codebook group (own shard first, stealing when
/// idle), serve it in order.
fn worker_loop(worker: usize, shared: &ServerShared) {
    let max_group = shared.config.max_group;
    while let Some(group) = shared
        .queue
        .pop_group_for(worker, max_group, |a, b| a.key == b.key)
    {
        for job in group {
            let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
            let response = if Instant::now() >= job.deadline {
                WireSegmentResponse::error(
                    WireStatus::DeadlineExceeded,
                    "deadline elapsed while queued",
                    queue_wait_us,
                )
            } else {
                execute(&job.request, &shared.fleet, queue_wait_us)
            };
            // A closed receiver means the connection thread already
            // answered (deadline safety net) or hung up; nothing to do.
            let _ = job.reply.send(response);
        }
    }
}

/// Runs one request on its engine, catching panics.
fn execute(
    request: &WireSegmentRequest,
    fleet: &EngineFleet,
    queue_wait_us: u64,
) -> WireSegmentResponse {
    let engine = match fleet.engine_for(&request.config) {
        Ok(engine) => engine,
        Err(err) => {
            return WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), queue_wait_us)
        }
    };
    let image = match request.to_image() {
        Ok(image) => image,
        Err(err) => {
            return WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), queue_wait_us)
        }
    };
    let mode = match request.mode {
        RequestMode::Auto => ExecutionMode::Auto,
        RequestMode::WholeImage => ExecutionMode::WholeImage,
        RequestMode::Tiled {
            tile_width,
            tile_height,
            halo,
        } => match TileConfig::new(tile_width as usize, tile_height as usize, halo as usize) {
            Ok(tiles) => ExecutionMode::Tiled(tiles),
            Err(err) => {
                return WireSegmentResponse::error(
                    WireStatus::Invalid,
                    err.to_string(),
                    queue_wait_us,
                )
            }
        },
    };
    let started = Instant::now();
    // The engine's shared state (codebook cache, arena pool) recovers from
    // poisoned locks by design, so resuming after a caught panic is sound.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        engine.run(&SegmentRequest::image(&image).mode(mode))
    }));
    let service_us = started.elapsed().as_micros() as u64;
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(err)) => {
            let status = match err {
                SegHdcError::InvalidConfig { .. } => WireStatus::Invalid,
                SegHdcError::Hdc(_) | SegHdcError::Imaging(_) => WireStatus::Invalid,
                // Future engine error variants default to Internal: the
                // request may be fine and the server is not.
                _ => WireStatus::Internal,
            };
            let mut response = WireSegmentResponse::error(status, err.to_string(), queue_wait_us);
            response.service_us = service_us;
            return response;
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            let mut response = WireSegmentResponse::error(
                WireStatus::Internal,
                format!("execution panicked: {message}"),
                queue_wait_us,
            );
            response.service_us = service_us;
            return response;
        }
    };
    let output = report.single();
    let executed_tiled = matches!(output.mode, ExecutedMode::Tiled { .. });
    let telemetry = engine.telemetry();
    WireSegmentResponse {
        queue_wait_us,
        service_us,
        body: ResponseBody::Labels {
            executed_tiled,
            width: output.label_map.width() as u32,
            height: output.label_map.height() as u32,
            labels: output.label_map.as_raw().to_vec(),
            telemetry: WireTelemetry {
                cache_hits: telemetry.cache_hits,
                cache_misses: telemetry.cache_misses,
                cache_entries: telemetry.cache_entries as u32,
                cache_bytes: telemetry.cache_bytes as u64,
                peak_matrix_bytes: telemetry.peak_matrix_bytes as u64,
                backend: telemetry.backend.to_string(),
                kernel_isa: telemetry.kernel_isa.to_string(),
            },
        },
    }
}
