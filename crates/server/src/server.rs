//! The threaded segmentation server.
//!
//! One accept loop, one connection thread per client, a **sharded**
//! admission queue ([`crate::shard`]) with one shard per worker, and a
//! fixed worker pool dispatching into shared [`SegEngine`]s. The contract
//! a client sees:
//!
//! * **Backpressure, not queuing collapse.** A request that fits no
//!   admission shard is answered immediately with a [`WireStatus::Busy`]
//!   frame.
//! * **Deadlines are honoured.** Each request carries a deadline; a worker
//!   that dequeues an already-expired job answers
//!   [`WireStatus::DeadlineExceeded`] without touching the engine, and the
//!   connection thread enforces the same bound as a safety net even if a
//!   worker stalls.
//! * **Panics stay inside the worker.** A panicking execution is caught
//!   and answered with [`WireStatus::Internal`]; the shared codebook cache
//!   and arena pools recover from the poisoned locks (see the
//!   `seghdc::cache` and `seghdc::engine` panic-safety tests), so the next
//!   request on the same engine is served normally.
//! * **Cache-aware scheduling, twice over.** Admission consistently
//!   hashes each request's [`CodebookKey`] to a home shard, so same-shape
//!   traffic keeps landing on the worker whose cache path is warm; on top
//!   of that, workers dequeue *groups* of same-key requests, so a burst
//!   pays one codebook build and then hits the shared cache. Cold or
//!   overflowing shards spill at admission and are stolen from at
//!   dispatch, so pinning never strands capacity.
//! * **Fused batch execution.** A dequeued group whose requests share a
//!   codebook key, engine configuration, execution mode, and image shape
//!   runs as **one** [`SegmentRequest::batch`] — one codebook lookup, one
//!   arena-pooled plan, the engine's parallel cluster path — and the
//!   per-image label maps are scattered back to each originating
//!   connection in order. Byte-identical pixel payloads inside a group
//!   coalesce onto a single batch image. Expired deadlines are pruned
//!   *before* fusion (each pruned request still gets its
//!   `DeadlineExceeded` frame), and a failed batch falls back to
//!   per-request execution. Knobs: [`ServerConfig::fuse_groups`],
//!   [`ServerConfig::fuse_window`], [`ServerConfig::max_group`].
//! * **Warm starts.** [`ServerConfig::codebook_snapshot`] names a
//!   [`seghdc::snapshot`]-format file to preload the codebook cache from
//!   before the listener accepts, and [`ServerHandle::save_snapshot`]
//!   writes one back; a warm-started server serves its first same-shape
//!   request with zero cache misses.
//! * **Streaming progress and mid-run cancellation.** A request that
//!   opts in ([`WireSegmentRequest::with_progress`]) receives a
//!   `FRAME_PROGRESS` frame per completed tile row of a tiled run before
//!   its final response; requests that never opt in keep the strict
//!   one-frame-per-request contract. Every job carries a
//!   [`CancelToken`]: the worker arms it from the job's deadline before
//!   running (an over-budget tiled run aborts at the next tile boundary
//!   instead of finishing work nobody will read), and the connection
//!   thread fires it when the safety net abandons the job. Aborted runs
//!   answer `DeadlineExceeded` and count in the `cancelled_mid_run`
//!   server stat.
//! * **Observable from outside.** A `STATS` frame returns uptime,
//!   per-connection and server-wide request/latency counters, cache
//!   counters, and per-shard routing counters (see
//!   [`crate::protocol::WireStatsResponse`]).

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use imaging::DynamicImage;
use seghdc::{
    CancelToken, CodebookCache, CodebookKey, EngineTelemetry, ExecutedMode, ExecutionMode,
    RunObserver, SegEngine, SegHdcConfig, SegHdcError, SegmentOutput, SegmentRequest,
    SnapshotError, TileConfig,
};

use crate::metrics::ServerMetrics;
use crate::protocol::{
    RequestMode, ResponseBody, WireCacheStats, WireConnectionStats, WireProgress,
    WireSegmentRequest, WireSegmentResponse, WireServerStats, WireShardStats, WireStatsRequest,
    WireStatsResponse, WireStatus, WireTelemetry,
};
use crate::queue::PushError;
use crate::shard::{key_hash, ShardedQueue};
use crate::wire::{
    checksum, read_frame_into, write_frame, WireError, DEFAULT_MAX_FRAME_BYTES, FRAME_PROGRESS,
    FRAME_REQUEST, FRAME_RESPONSE, FRAME_STATS_REQUEST, FRAME_STATS_RESPONSE,
};
use crate::ServerError;

/// Tuning knobs of a running server (see [`serve`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing segmentations; also the admission shard
    /// count (one shard per worker).
    pub workers: usize,
    /// Admission capacity **per shard**; requests beyond it spill to other
    /// shards, and get `Busy` only when every shard is full.
    pub queue_depth: usize,
    /// Largest frame accepted or produced, in bytes.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request asks for `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Most same-codebook requests a worker dequeues back-to-back; also
    /// the largest fused engine batch.
    pub max_group: usize,
    /// Whether workers run fusible groups as one engine batch (with
    /// identical-payload coalescing) instead of a serial per-request
    /// loop. Disable to get the pre-fusion execution path.
    pub fuse_groups: bool,
    /// How long a worker holding a partial group polls its own shard for
    /// late-arriving fusible jobs before executing the batch. Zero (the
    /// default) disables the wait entirely: a group is whatever one
    /// dequeue found, and no request ever idles on the window.
    pub fuse_window: Duration,
    /// Most distinct engine configurations kept resident; an arbitrary
    /// engine is dropped beyond this (its codebooks stay in the shared
    /// cache, so resurrecting it later is cheap).
    pub max_engines: usize,
    /// Byte capacity of the codebook cache shared by every engine.
    pub codebook_cache_bytes: usize,
    /// Snapshot file to warm-start the codebook cache from before the
    /// listener accepts. A missing file is a normal cold start (first
    /// boot); an existing-but-corrupt file refuses to start with
    /// [`ServerError::Snapshot`].
    pub codebook_snapshot: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_depth: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline: Duration::from_secs(10),
            max_group: 8,
            fuse_groups: true,
            fuse_window: Duration::ZERO,
            max_engines: 16,
            codebook_cache_bytes: 64 << 20,
            codebook_snapshot: None,
        }
    }
}

/// What a worker sends back over a job's event channel: zero or more
/// progress updates (only when the request opted in), then exactly one
/// final response.
enum JobEvent {
    /// One completed tile row of an observed tiled run.
    Progress(WireProgress),
    /// The final response; nothing follows it.
    Done(WireSegmentResponse),
}

/// One admitted request travelling from a connection thread to a worker.
struct Job {
    request: WireSegmentRequest,
    key: CodebookKey,
    deadline: Instant,
    enqueued: Instant,
    /// Connection-scoped request sequence number (first request is `1`),
    /// echoed in every progress frame so the client can attribute them.
    id: u64,
    /// Carries progress updates and the final response back to the
    /// connection thread.
    events: mpsc::Sender<JobEvent>,
    /// Shared with the connection thread: armed from `deadline` by the
    /// worker before execution, fired by the connection thread when the
    /// safety net abandons the job.
    cancel: CancelToken,
}

impl Job {
    /// Sends the final response. A closed receiver means the connection
    /// thread already answered (deadline safety net) or hung up; nothing
    /// to do then.
    fn answer(&self, response: WireSegmentResponse) {
        let _ = self.events.send(JobEvent::Done(response));
    }
}

/// Hashable identity of an engine configuration (bit-compares `alpha`,
/// like [`CodebookKey`] does).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    seed: u64,
    dimension: usize,
    alpha_bits: u64,
    beta: usize,
    gamma: usize,
    clusters: usize,
    iterations: usize,
    position_encoding: seghdc::PositionEncoding,
    color_encoding: seghdc::ColorEncoding,
    distance_metric: seghdc::DistanceMetric,
}

impl EngineKey {
    fn of(config: &SegHdcConfig) -> Self {
        Self {
            seed: config.seed,
            dimension: config.dimension,
            alpha_bits: config.alpha.to_bits(),
            beta: config.beta,
            gamma: config.gamma,
            clusters: config.clusters,
            iterations: config.iterations,
            position_encoding: config.position_encoding,
            color_encoding: config.color_encoding,
            distance_metric: config.distance_metric,
        }
    }
}

/// Engines keyed by configuration, all sharing one codebook cache.
struct EngineFleet {
    engines: Mutex<HashMap<EngineKey, Arc<SegEngine>>>,
    cache: Arc<CodebookCache>,
    max_engines: usize,
}

impl EngineFleet {
    fn new(codebook_cache_bytes: usize, max_engines: usize) -> Self {
        Self {
            engines: Mutex::new(HashMap::new()),
            cache: Arc::new(CodebookCache::with_capacity(codebook_cache_bytes)),
            max_engines: max_engines.max(1),
        }
    }

    /// The engine for `config`, building (and validating) it on first use.
    fn engine_for(&self, config: &SegHdcConfig) -> Result<Arc<SegEngine>, SegHdcError> {
        let key = EngineKey::of(config);
        let mut engines = self
            .engines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(engine) = engines.get(&key) {
            return Ok(Arc::clone(engine));
        }
        let engine = Arc::new(
            SegEngine::builder(config.clone())
                .cache(Arc::clone(&self.cache))
                .build()?,
        );
        if engines.len() >= self.max_engines {
            let victim = engines.keys().next().cloned();
            if let Some(victim) = victim {
                engines.remove(&victim);
            }
        }
        engines.insert(key, Arc::clone(&engine));
        Ok(engine)
    }

    fn cache_stats(&self) -> seghdc::CacheStats {
        self.cache.stats()
    }

    fn load_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.cache.load_snapshot(path)
    }

    fn save_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.cache.save_snapshot(path)
    }
}

/// Everything a connection thread or worker needs, behind one `Arc`.
struct ServerShared {
    config: ServerConfig,
    queue: ShardedQueue<Job>,
    fleet: EngineFleet,
    metrics: ServerMetrics,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serializes every codebook resident in the shared cache to `path`
    /// in the [`seghdc::snapshot`] format, returning how many codebooks
    /// were written. A later server started with
    /// [`ServerConfig::codebook_snapshot`] pointing at the file serves its
    /// first same-shape request warm.
    ///
    /// # Errors
    ///
    /// [`ServerError::Snapshot`] if writing fails.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, ServerError> {
        Ok(self.shared.fleet.save_snapshot(path)?)
    }

    /// Stops accepting, drains admitted jobs, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a server on `addr` (use port `0` for an ephemeral port).
///
/// # Errors
///
/// [`ServerError::Io`] if the listener cannot bind;
/// [`ServerError::Snapshot`] if [`ServerConfig::codebook_snapshot`] names
/// an existing file that fails to load (a missing file is a cold start,
/// not an error).
pub fn serve(addr: &str, config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let fleet = EngineFleet::new(config.codebook_cache_bytes, config.max_engines);
    let metrics = ServerMetrics::new();

    if let Some(path) = config.codebook_snapshot.as_deref() {
        if path.exists() {
            let loaded = fleet.load_snapshot(path)?;
            metrics.record_snapshot_loaded(loaded);
        }
    }

    let shared = Arc::new(ServerShared {
        queue: ShardedQueue::new(workers, config.queue_depth),
        config,
        fleet,
        metrics,
    });

    let worker_threads = (0..workers)
        .map(|worker| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(worker, &shared))
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &shared);
                });
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        shared,
        accept_thread: Some(accept_thread),
        workers: worker_threads,
    })
}

/// Reads frames off one connection until EOF, answering each.
fn serve_connection(mut stream: TcpStream, shared: &ServerShared) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    let max_frame_bytes = shared.config.max_frame_bytes;
    let mut connection = WireConnectionStats::default();
    // Both buffers persist across frames: the connection pays for its
    // largest request and response once instead of allocating per frame.
    let mut read_buf = Vec::new();
    let mut write_buf = Vec::new();
    loop {
        let kind = match read_frame_into(&mut stream, max_frame_bytes, &mut read_buf) {
            Ok(Some(kind)) => kind,
            // Clean EOF: the client is done.
            Ok(None) => return Ok(()),
            Err(err) => {
                // Malformed framing: answer with one Invalid frame, then
                // hang up (resynchronising a corrupt byte stream is not
                // worth guessing at).
                let response = WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0);
                response.encode_into(&mut write_buf);
                let _ = write_frame(&mut stream, FRAME_RESPONSE, &write_buf, max_frame_bytes);
                let _ = stream.flush();
                drain_before_close(&mut stream, max_frame_bytes);
                return Err(err);
            }
        };
        match kind {
            FRAME_REQUEST => {
                connection.requests += 1;
                let request_id = connection.requests;
                let response = {
                    let stream = &mut stream;
                    let write_buf = &mut write_buf;
                    // Progress events arrive only for requests that opted
                    // in; each is forwarded as its own frame while the
                    // final response is still in flight. A write failure
                    // is ignored here — the final-response write below
                    // reports the broken connection.
                    handle_request(&read_buf, shared, request_id, &mut |progress| {
                        progress.encode_into(write_buf);
                        let _ = write_frame(stream, FRAME_PROGRESS, write_buf, max_frame_bytes);
                        let _ = stream.flush();
                    })
                };
                match response.status() {
                    WireStatus::Ok => connection.responses_ok += 1,
                    _ => connection.responses_error += 1,
                }
                response.encode_into(&mut write_buf);
                write_frame(&mut stream, FRAME_RESPONSE, &write_buf, max_frame_bytes)?;
            }
            FRAME_STATS_REQUEST => match WireStatsRequest::decode(&read_buf) {
                Ok(WireStatsRequest) => {
                    let response = stats_response(shared, &connection);
                    response.encode_into(&mut write_buf);
                    write_frame(
                        &mut stream,
                        FRAME_STATS_RESPONSE,
                        &write_buf,
                        max_frame_bytes,
                    )?;
                }
                Err(err) => {
                    let response =
                        WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0);
                    response.encode_into(&mut write_buf);
                    write_frame(&mut stream, FRAME_RESPONSE, &write_buf, max_frame_bytes)?;
                }
            },
            other => {
                let response = WireSegmentResponse::error(
                    WireStatus::Invalid,
                    format!("expected a request frame, got kind {other}"),
                    0,
                );
                response.encode_into(&mut write_buf);
                write_frame(&mut stream, FRAME_RESPONSE, &write_buf, max_frame_bytes)?;
            }
        }
    }
}

/// Consumes whatever the peer has already sent (bounded in bytes and
/// time) before the socket drops. Closing with unread data in the receive
/// buffer makes TCP reset the connection, which can destroy the error
/// frame still in flight and break the peer's pending write — e.g. a
/// client mid-way through sending the oversized frame that triggered the
/// rejection.
fn drain_before_close(stream: &mut TcpStream, max_bytes: usize) {
    use std::io::Read as _;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 8192];
    // Bounded in time *and* bytes: a stalling peer gets the RST after the
    // deadline instead of holding the thread, and an endlessly streaming
    // peer stops costing reads once `max_bytes` have been sunk — the
    // courtesy drain exists to let a well-behaved peer finish its
    // in-flight frame, not to tail an unbounded stream.
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut drained = 0usize;
    while Instant::now() < deadline && drained < max_bytes {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => drained += n,
            // EOF, a read timeout, or an error: nothing more in flight.
            _ => break,
        }
    }
}

/// Saturating narrowing for `u32` wire counters: a value past `u32::MAX`
/// reports the ceiling instead of silently wrapping around.
fn clamp_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

/// Builds a `STATS` response from the shared counters.
fn stats_response(shared: &ServerShared, connection: &WireConnectionStats) -> WireStatsResponse {
    let metrics = shared.metrics.snapshot();
    let cache = shared.fleet.cache_stats();
    WireStatsResponse {
        uptime_ms: shared.metrics.uptime_ms(),
        workers: clamp_u32(shared.queue.shard_count() as u64),
        connection: *connection,
        server: WireServerStats {
            admitted: metrics.admitted,
            responses_ok: metrics.ok,
            responses_busy: metrics.busy,
            responses_deadline: metrics.deadline_exceeded,
            responses_invalid: metrics.invalid,
            responses_internal: metrics.internal,
            queue_wait_us: metrics.queue_wait_us,
            service_us: metrics.service_us,
            fused_groups: metrics.fused_groups,
            fused_requests: metrics.fused_requests,
            fused_coalesced: metrics.fused_coalesced,
            fusion_fallbacks: metrics.fusion_fallbacks,
            cancelled_mid_run: metrics.cancelled_mid_run,
        },
        cache: WireCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            entries: clamp_u32(cache.entries as u64),
            bytes: cache.bytes as u64,
            snapshot_loaded: clamp_u32(metrics.snapshot_codebooks_loaded),
        },
        shards: shared
            .queue
            .stats()
            .into_iter()
            .map(|shard| WireShardStats {
                routed: shard.routed,
                spilled: shard.spilled,
                stolen: shard.stolen,
                served: shard.served,
                depth: shard.depth,
            })
            .collect(),
    }
}

/// Admits one decoded request and waits (deadline-bounded) for its
/// response, handing each interleaved progress event to
/// `forward_progress` as it arrives. Every response path records itself
/// in the server metrics exactly once — as the client will see it.
fn handle_request(
    payload: &[u8],
    shared: &ServerShared,
    request_id: u64,
    forward_progress: &mut dyn FnMut(&WireProgress),
) -> WireSegmentResponse {
    let response = admit_and_wait(payload, shared, request_id, forward_progress);
    shared.metrics.record_response(
        response.status(),
        response.queue_wait_us,
        response.service_us,
    );
    response
}

fn admit_and_wait(
    payload: &[u8],
    shared: &ServerShared,
    request_id: u64,
    forward_progress: &mut dyn FnMut(&WireProgress),
) -> WireSegmentResponse {
    let request = match WireSegmentRequest::decode(payload) {
        Ok(request) => request,
        Err(err) => return WireSegmentResponse::error(WireStatus::Invalid, err.to_string(), 0),
    };
    let deadline_budget = if request.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(u64::from(request.deadline_ms))
    };
    let enqueued = Instant::now();
    let deadline = enqueued + deadline_budget;
    let key = CodebookKey::for_shape(
        &request.config,
        request.width as usize,
        request.height as usize,
        usize::from(request.channels),
    );
    let hash = key_hash(&key);
    let cancel = CancelToken::new();
    let (events_tx, events_rx) = mpsc::channel();
    let job = Job {
        request,
        key,
        deadline,
        enqueued,
        id: request_id,
        events: events_tx,
        cancel: cancel.clone(),
    };
    match shared.queue.try_push(job, hash) {
        Ok(_shard) => shared.metrics.record_admitted(),
        Err(err) => {
            let (status, message) = match err {
                PushError::Full(_) => (
                    WireStatus::Busy,
                    format!(
                        "admission queue is full ({} jobs per shard across {} shards)",
                        shared.config.queue_depth,
                        shared.queue.shard_count()
                    ),
                ),
                PushError::ShutDown(_) => (WireStatus::Busy, "server is shutting down".to_string()),
            };
            return WireSegmentResponse::error(status, message, 0);
        }
    }
    // Safety net on top of the worker-side deadline check: even if every
    // worker is stuck in a long execution, the client hears back shortly
    // after its deadline. Progress events are forwarded as they arrive.
    let grace = Duration::from_millis(50);
    let give_up = deadline + grace;
    loop {
        let timeout = give_up.saturating_duration_since(Instant::now());
        match events_rx.recv_timeout(timeout) {
            Ok(JobEvent::Progress(progress)) => forward_progress(&progress),
            Ok(JobEvent::Done(response)) => return response,
            // Timed out (or the job was dropped unanswered): abandon the
            // wait, and fire the cancel token so a worker mid-run stops
            // at the next tile boundary instead of finishing work nobody
            // will read.
            Err(_) => {
                cancel.cancel();
                return WireSegmentResponse::error(
                    WireStatus::DeadlineExceeded,
                    format!("deadline of {deadline_budget:?} elapsed before a worker finished"),
                    enqueued.elapsed().as_micros() as u64,
                );
            }
        }
    }
}

/// Whether two queued jobs may run inside one fused engine batch: same
/// codebook key, same full engine configuration, same execution mode,
/// same image shape. The codebook key alone is not enough — it ignores
/// `clusters`, `iterations`, and the distance metric, all of which change
/// the label maps, so a batch mixing them would silently serve wrong
/// results.
fn fusible(a: &Job, b: &Job) -> bool {
    a.key == b.key
        && a.request.config == b.request.config
        && a.request.mode == b.request.mode
        && a.request.channels == b.request.channels
        && a.request.width == b.request.width
        && a.request.height == b.request.height
}

/// Worker: dequeue a fusible group (own shard first, stealing when idle),
/// optionally hold it open for [`ServerConfig::fuse_window`] so late
/// same-key arrivals can join, then serve it.
fn worker_loop(worker: usize, shared: &ServerShared) {
    let max_group = shared.config.max_group;
    let window = shared.config.fuse_window;
    while let Some(mut group) = shared.queue.pop_group_for(worker, max_group, fusible) {
        if shared.config.fuse_groups && !window.is_zero() && group.len() < max_group {
            let until = fuse_hold_until(Instant::now(), window, &group);
            while group.len() < max_group && Instant::now() < until {
                let added = shared
                    .queue
                    .try_extend_group_for(worker, &mut group, max_group, fusible);
                if added == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        // serve_group re-prunes against *now*, so anything that expired
        // during the hold still gets its DeadlineExceeded frame promptly.
        serve_group(group, shared);
    }
}

/// How long a worker may hold a partial group open for late fusible
/// arrivals: the fuse window, capped at the group's earliest member
/// deadline. Without the cap, a job with 1 ms of budget left could sit
/// out a 10 ms window and miss a deadline it would otherwise have made —
/// the window exists to improve throughput, never to sacrifice a live
/// deadline.
fn fuse_hold_until(now: Instant, window: Duration, group: &[Job]) -> Instant {
    let until = now + window;
    group
        .iter()
        .map(|job| job.deadline)
        .min()
        .map_or(until, |deadline| until.min(deadline))
}

/// Serves one dequeued group: prune expired deadlines first (each pruned
/// job still gets its `DeadlineExceeded` frame), then run the survivors —
/// as one fused engine batch when fusion is on and more than one job is
/// left, per-request otherwise.
fn serve_group(group: Vec<Job>, shared: &ServerShared) {
    let live = prune_expired(group, Instant::now());
    if live.is_empty() {
        return;
    }
    if shared.config.fuse_groups && live.len() > 1 {
        execute_fused(live, &shared.fleet, &shared.metrics);
    } else {
        for job in live {
            execute(job, &shared.fleet, &shared.metrics);
        }
    }
}

/// Splits off jobs whose deadline has already passed, answering each with
/// its `DeadlineExceeded` frame, and returns the still-live remainder.
/// Runs *before* fusion so one slow batch cannot silently eat a fast
/// client's budget.
fn prune_expired(group: Vec<Job>, now: Instant) -> Vec<Job> {
    let mut live = Vec::with_capacity(group.len());
    for job in group {
        if now >= job.deadline {
            let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
            job.answer(WireSegmentResponse::error(
                WireStatus::DeadlineExceeded,
                "deadline elapsed while queued",
                queue_wait_us,
            ));
        } else {
            live.push(job);
        }
    }
    live
}

/// Maps a wire-level execution mode onto the engine's.
fn resolve_mode(mode: RequestMode) -> Result<ExecutionMode, String> {
    match mode {
        RequestMode::Auto => Ok(ExecutionMode::Auto),
        RequestMode::WholeImage => Ok(ExecutionMode::WholeImage),
        RequestMode::Tiled {
            tile_width,
            tile_height,
            halo,
        } => TileConfig::new(tile_width as usize, tile_height as usize, halo as usize)
            .map(ExecutionMode::Tiled)
            .map_err(|err| err.to_string()),
    }
}

/// One request of a fused batch: which batch image answers it, and how to
/// reach its connection.
struct Waiter {
    image: usize,
    queue_wait_us: u64,
    events: mpsc::Sender<JobEvent>,
}

impl Waiter {
    /// Sends the final response (see [`Job::answer`]).
    fn answer(&self, response: WireSegmentResponse) {
        let _ = self.events.send(JobEvent::Done(response));
    }
}

/// Runs a fused group as **one** engine batch: one codebook lookup, one
/// arena-pooled plan, the engine's parallel cluster path. Requests whose
/// pixel payloads are byte-identical coalesce onto a single batch image
/// and fan out from its label map — the engine is deterministic, so the
/// labels match a dedicated run exactly. A batch error or panic falls
/// back to per-image execution so one poisoned request cannot take its
/// groupmates down with it.
fn execute_fused(group: Vec<Job>, fleet: &EngineFleet, metrics: &ServerMetrics) {
    let first = &group[0];
    let engine = match fleet.engine_for(&first.request.config) {
        Ok(engine) => engine,
        Err(err) => return fail_group(group, &err.to_string()),
    };
    let mode = match resolve_mode(first.request.mode) {
        Ok(mode) => mode,
        Err(message) => return fail_group(group, &message),
    };

    let mut images: Vec<DynamicImage> = Vec::with_capacity(group.len());
    let mut digests: Vec<u64> = Vec::with_capacity(group.len());
    let mut waiters: Vec<Waiter> = Vec::with_capacity(group.len());
    let mut coalesced = 0u64;
    for job in group {
        let Job {
            request,
            enqueued,
            events,
            ..
        } = job;
        let queue_wait_us = enqueued.elapsed().as_micros() as u64;
        // Digest prefilter, then a full byte compare: a colliding digest
        // only costs a missed coalesce, never a wrong answer.
        let digest = checksum(&[&request.pixels]);
        let duplicate = digests
            .iter()
            .position(|&d| d == digest)
            .filter(|&i| image_pixels(&images[i]) == request.pixels.as_slice());
        let image = match duplicate {
            Some(index) => {
                coalesced += 1;
                index
            }
            None => match request.into_dynamic_image() {
                Ok(image) => {
                    images.push(image);
                    digests.push(digest);
                    images.len() - 1
                }
                Err(err) => {
                    let _ = events.send(JobEvent::Done(WireSegmentResponse::error(
                        WireStatus::Invalid,
                        err.to_string(),
                        queue_wait_us,
                    )));
                    continue;
                }
            },
        };
        waiters.push(Waiter {
            image,
            queue_wait_us,
            events,
        });
    }
    if waiters.is_empty() {
        return;
    }

    let started = Instant::now();
    // The engine's shared state (codebook cache, arena pool) recovers from
    // poisoned locks by design, so resuming after a caught panic is sound.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        engine.run(&SegmentRequest::batch(&images).mode(mode))
    }));
    let service_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(Ok(report)) => {
            metrics.record_fused(waiters.len() as u64, coalesced);
            let telemetry = engine.telemetry();
            for waiter in waiters {
                // The batch ran as one unit, so each request is billed the
                // full batch wall time.
                waiter.answer(labels_response(
                    &report.outputs[waiter.image],
                    &telemetry,
                    waiter.queue_wait_us,
                    service_us,
                ));
            }
        }
        // The batch failed as a unit; retry each image alone so only the
        // poisoned request answers with an error.
        Ok(Err(_)) | Err(_) => {
            metrics.record_fusion_fallback();
            for waiter in waiters {
                let response = run_image(
                    &engine,
                    &images[waiter.image],
                    mode,
                    waiter.queue_wait_us,
                    &RunObserver::new(),
                    metrics,
                );
                waiter.answer(response);
            }
        }
    }
}

/// Answers every job in a group with the same `Invalid` message (the
/// group shares one engine configuration, so a config error is shared).
fn fail_group(group: Vec<Job>, message: &str) {
    for job in group {
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        job.answer(WireSegmentResponse::error(
            WireStatus::Invalid,
            message,
            queue_wait_us,
        ));
    }
}

/// The raw pixel bytes of an assembled image (coalescing comparisons).
fn image_pixels(image: &DynamicImage) -> &[u8] {
    match image {
        DynamicImage::Gray(img) => img.as_raw(),
        DynamicImage::Rgb(img) => img.as_raw(),
    }
}

/// Runs one job on its engine and answers it, catching panics. Consumes
/// the job so the pixel buffer moves (not clones) into the image. The
/// job's cancel token is armed from its deadline before the run, so an
/// over-budget tiled execution aborts at the next tile boundary; when the
/// request opted in, each completed tile row streams back as a progress
/// event.
fn execute(job: Job, fleet: &EngineFleet, metrics: &ServerMetrics) {
    let Job {
        request,
        deadline,
        enqueued,
        id,
        events,
        cancel,
        ..
    } = job;
    let queue_wait_us = enqueued.elapsed().as_micros() as u64;
    let fail = |message: String| {
        let _ = events.send(JobEvent::Done(WireSegmentResponse::error(
            WireStatus::Invalid,
            message,
            queue_wait_us,
        )));
    };
    let engine = match fleet.engine_for(&request.config) {
        Ok(engine) => engine,
        Err(err) => return fail(err.to_string()),
    };
    let mode = match resolve_mode(request.mode) {
        Ok(mode) => mode,
        Err(message) => return fail(message),
    };
    let wants_progress = request.progress;
    let image = match request.into_dynamic_image() {
        Ok(image) => image,
        Err(err) => return fail(err.to_string()),
    };
    cancel.cancel_at(deadline);
    let started = Instant::now();
    let progress_events = events.clone();
    let mut observer = RunObserver::new().cancel_token(cancel);
    if wants_progress {
        observer = observer.on_progress(move |update| {
            let _ = progress_events.send(JobEvent::Progress(WireProgress {
                request_id: id,
                rows_done: update.rows_done as u32,
                rows_total: update.rows_total as u32,
                elapsed_us: started.elapsed().as_micros() as u64,
            }));
        });
    }
    let response = run_image(&engine, &image, mode, queue_wait_us, &observer, metrics);
    let _ = events.send(JobEvent::Done(response));
}

/// Runs one already-assembled image on an already-resolved engine and
/// mode under `observer`, catching panics. A run aborted by the
/// observer's cancel token counts in `cancelled_mid_run` and answers
/// `DeadlineExceeded`.
fn run_image(
    engine: &SegEngine,
    image: &DynamicImage,
    mode: ExecutionMode,
    queue_wait_us: u64,
    observer: &RunObserver<'_>,
    metrics: &ServerMetrics,
) -> WireSegmentResponse {
    let started = Instant::now();
    // The engine's shared state (codebook cache, arena pool) recovers from
    // poisoned locks by design, so resuming after a caught panic is sound.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        engine.run_observed(&SegmentRequest::image(image).mode(mode), observer)
    }));
    let service_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(Ok(report)) => labels_response(
            report.single(),
            &engine.telemetry(),
            queue_wait_us,
            service_us,
        ),
        Ok(Err(err)) => {
            if matches!(err, SegHdcError::Cancelled) {
                metrics.record_cancelled_mid_run();
            }
            engine_error_response(&err, queue_wait_us, service_us)
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            let mut response = WireSegmentResponse::error(
                WireStatus::Internal,
                format!("execution panicked: {message}"),
                queue_wait_us,
            );
            response.service_us = service_us;
            response
        }
    }
}

/// Maps an engine error onto a wire status.
fn engine_error_response(
    err: &SegHdcError,
    queue_wait_us: u64,
    service_us: u64,
) -> WireSegmentResponse {
    let status = match err {
        SegHdcError::InvalidConfig { .. } => WireStatus::Invalid,
        SegHdcError::Hdc(_) | SegHdcError::Imaging(_) => WireStatus::Invalid,
        // A fired cancel token means the job's budget ran out (deadline
        // expired, or the client abandoned it) after execution started —
        // bill it as the deadline miss it is, not a server fault.
        SegHdcError::Cancelled => WireStatus::DeadlineExceeded,
        // Future engine error variants default to Internal: the request
        // may be fine and the server is not.
        _ => WireStatus::Internal,
    };
    let mut response = WireSegmentResponse::error(status, err.to_string(), queue_wait_us);
    response.service_us = service_us;
    response
}

/// Builds the `Ok` response for one segmented output.
fn labels_response(
    output: &SegmentOutput,
    telemetry: &EngineTelemetry,
    queue_wait_us: u64,
    service_us: u64,
) -> WireSegmentResponse {
    let executed_tiled = matches!(output.mode, ExecutedMode::Tiled { .. });
    WireSegmentResponse {
        queue_wait_us,
        service_us,
        body: ResponseBody::Labels {
            executed_tiled,
            width: output.label_map.width() as u32,
            height: output.label_map.height() as u32,
            labels: output.label_map.as_raw().to_vec(),
            telemetry: WireTelemetry {
                cache_hits: telemetry.cache_hits,
                cache_misses: telemetry.cache_misses,
                cache_entries: telemetry.cache_entries as u32,
                cache_bytes: telemetry.cache_bytes as u64,
                peak_matrix_bytes: telemetry.peak_matrix_bytes as u64,
                backend: telemetry.backend.to_string(),
                kernel_isa: telemetry.kernel_isa.to_string(),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::GrayImage;

    fn test_config(seed: u64) -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(256)
            .beta(2)
            .iterations(2)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn test_image(edge: usize, phase: usize) -> DynamicImage {
        let mut img = GrayImage::new(edge, edge).expect("non-empty");
        for y in 0..edge {
            for x in 0..edge {
                img.set(x, y, ((x * 7 + y * 13 + phase * 31) % 256) as u8)
                    .expect("in bounds");
            }
        }
        DynamicImage::Gray(img)
    }

    fn job_for(
        config: &SegHdcConfig,
        image: &DynamicImage,
        deadline: Instant,
    ) -> (Job, mpsc::Receiver<JobEvent>) {
        let request = WireSegmentRequest::from_image(config, image, RequestMode::WholeImage, 0);
        let key = CodebookKey::for_shape(
            &request.config,
            request.width as usize,
            request.height as usize,
            usize::from(request.channels),
        );
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            key,
            deadline,
            enqueued: Instant::now(),
            id: 1,
            events: tx,
            cancel: CancelToken::new(),
        };
        (job, rx)
    }

    /// Skips past any progress events to the job's final response.
    fn final_response(rx: &mpsc::Receiver<JobEvent>) -> WireSegmentResponse {
        loop {
            match rx.try_recv().expect("a final response should be queued") {
                JobEvent::Done(response) => return response,
                JobEvent::Progress(_) => {}
            }
        }
    }

    #[test]
    fn expired_jobs_in_a_group_are_pruned_with_deadline_frames() {
        let config = test_config(5);
        let image = test_image(8, 0);
        let now = Instant::now();
        let (expired, expired_rx) = job_for(&config, &image, now);
        let (live, live_rx) = job_for(&config, &image, now + Duration::from_secs(60));
        let remaining = prune_expired(vec![expired, live], now);
        assert_eq!(remaining.len(), 1);
        let frame = final_response(&expired_rx);
        assert_eq!(frame.status(), WireStatus::DeadlineExceeded);
        // The live job was not answered: it is handed on to execution.
        assert!(live_rx.try_recv().is_err());
    }

    #[test]
    fn a_fused_group_scatters_byte_identical_labels_and_coalesces_duplicates() {
        let config = test_config(7);
        let fleet = EngineFleet::new(16 << 20, 4);
        let metrics = ServerMetrics::new();
        let image_a = test_image(12, 0);
        let image_b = test_image(12, 1);
        let far = Instant::now() + Duration::from_secs(60);
        let (job_a, rx_a) = job_for(&config, &image_a, far);
        let (job_b, rx_b) = job_for(&config, &image_b, far);
        let (job_dup, rx_dup) = job_for(&config, &image_a, far);
        execute_fused(vec![job_a, job_b, job_dup], &fleet, &metrics);

        let direct = |image: &DynamicImage| {
            let engine = fleet.engine_for(&config).unwrap();
            let report = engine
                .run(&SegmentRequest::image(image).mode(ExecutionMode::WholeImage))
                .unwrap();
            report.single().label_map.as_raw().to_vec()
        };
        let expected_a = direct(&image_a);
        let expected_b = direct(&image_b);
        for (rx, expected) in [
            (rx_a, &expected_a),
            (rx_b, &expected_b),
            (rx_dup, &expected_a),
        ] {
            let response = final_response(&rx);
            assert_eq!(response.status(), WireStatus::Ok);
            let ResponseBody::Labels { labels, .. } = response.body else {
                panic!("expected a labels body");
            };
            assert_eq!(&labels, expected);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.fused_groups, 1);
        assert_eq!(snap.fused_requests, 3);
        assert_eq!(snap.fused_coalesced, 1);
        assert_eq!(snap.fusion_fallbacks, 0);
    }

    #[test]
    fn an_unassemblable_request_fails_alone_not_the_group() {
        let config = test_config(9);
        let fleet = EngineFleet::new(16 << 20, 4);
        let metrics = ServerMetrics::new();
        let far = Instant::now() + Duration::from_secs(60);
        let (good, good_rx) = job_for(&config, &test_image(8, 0), far);
        let (mut bad, bad_rx) = job_for(&config, &test_image(8, 1), far);
        // Unassemblable: the shape no longer matches the pixel buffer.
        bad.request.width = 0;
        execute_fused(vec![good, bad], &fleet, &metrics);
        assert_eq!(final_response(&bad_rx).status(), WireStatus::Invalid);
        assert_eq!(final_response(&good_rx).status(), WireStatus::Ok);
    }

    #[test]
    fn a_fuse_window_never_holds_a_job_past_its_deadline() {
        let config = test_config(11);
        let image = test_image(8, 0);
        let now = Instant::now();
        let window = Duration::from_millis(10);

        // A job with 1 ms of budget left caps the hold at its deadline,
        // not the 10 ms window.
        let (tight, _tight_rx) = job_for(&config, &image, now + Duration::from_millis(1));
        let until = fuse_hold_until(now, window, std::slice::from_ref(&tight));
        assert_eq!(until, tight.deadline);
        assert!(until < now + window);

        // A group's *earliest* deadline governs the whole hold.
        let (lazy, _lazy_rx) = job_for(&config, &image, now + Duration::from_secs(60));
        let until = fuse_hold_until(now, window, &[tight, lazy]);
        assert_eq!(until, now + Duration::from_millis(1));

        // With only lazy deadlines the full window is available.
        let (lazy, _lazy_rx) = job_for(&config, &image, now + Duration::from_secs(60));
        assert_eq!(fuse_hold_until(now, window, &[lazy]), now + window);
    }

    #[test]
    fn drain_before_close_stops_at_the_byte_cap() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut peer = TcpStream::connect(addr).unwrap();
            peer.set_write_timeout(Some(Duration::from_millis(200)))
                .ok();
            let chunk = vec![0xABu8; 16 * 1024];
            // Push well past the drain cap; stop once the kernel buffers
            // fill (the drain under test must not need all of it).
            for _ in 0..8 {
                if peer.write_all(&chunk).is_err() {
                    break;
                }
            }
            peer
        });
        let (mut stream, _) = listener.accept().unwrap();
        // Let a first burst land so the drain has bytes to count.
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        drain_before_close(&mut stream, 4096);
        // The byte cap fires on the first 8 KiB read — long before the
        // 500 ms time cap.
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "drain should stop at the byte cap, not run out the clock"
        );
        // And it genuinely stopped early: unread bytes remain.
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok();
        let mut probe = [0u8; 64];
        let n = stream.read(&mut probe).unwrap();
        assert!(n > 0, "data past the byte cap must be left unread");
        let _ = writer.join();
    }

    #[test]
    fn wire_counters_saturate_instead_of_wrapping() {
        assert_eq!(clamp_u32(7), 7);
        assert_eq!(clamp_u32(u64::from(u32::MAX)), u32::MAX);
        // One past the ceiling used to wrap to 0 under `as u32`.
        assert_eq!(clamp_u32(u64::from(u32::MAX) + 1), u32::MAX);
        assert_eq!(clamp_u32(u64::MAX), u32::MAX);
    }

    #[test]
    fn an_abandoned_job_is_cancelled_and_billed_as_a_deadline_miss() {
        let config = test_config(13);
        let fleet = EngineFleet::new(16 << 20, 4);
        let metrics = ServerMetrics::new();
        let far = Instant::now() + Duration::from_secs(60);
        let (job, rx) = job_for(&config, &test_image(8, 0), far);
        // The connection side gave up on this job before a worker got to
        // it (deadline safety net fired).
        job.cancel.cancel();
        execute(job, &fleet, &metrics);
        let response = final_response(&rx);
        assert_eq!(response.status(), WireStatus::DeadlineExceeded);
        assert_eq!(metrics.snapshot().cancelled_mid_run, 1);
    }
}
