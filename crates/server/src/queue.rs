//! Bounded admission queue with cache-aware group dequeue.
//!
//! The queue is the server's backpressure mechanism: [`AdmissionQueue::try_push`]
//! never blocks and hands the job back when the queue is full, so the
//! connection thread can answer with an explicit `Busy` frame instead of
//! letting latency grow without bound.
//!
//! Dequeue is group-aware: [`AdmissionQueue::pop_group`] takes the oldest
//! job and then scans the remaining queue for jobs with the same group key
//! (for the server, the [`CodebookKey`](seghdc::CodebookKey) the request
//! resolves to). A worker that serves such a group back-to-back turns what
//! would be interleaved codebook-cache churn into one miss followed by
//! hits — the scheduling half of the engine's cache story.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is shut down; the job is handed back.
    ShutDown(T),
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    shutdown: bool,
}

/// A bounded FIFO with non-blocking admission and blocking, group-aware
/// removal.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` jobs at a time.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // A worker panic between push and pop cannot corrupt a VecDeque of
        // owned jobs, so a poisoned queue mutex is safe to recover.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::ShutDown`] after
    /// [`shutdown`](Self::shutdown); both return the job to the caller so
    /// it can answer with an error frame.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.shutdown {
            return Err(PushError::ShutDown(job));
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the oldest job, then drains up to `max_group - 1` more
    /// jobs for which `same_group(&oldest, &candidate)` holds, preserving
    /// FIFO order within the group and leaving everything else queued.
    ///
    /// Returns `None` once the queue is shut down **and** empty (jobs
    /// admitted before shutdown are still drained, so accepted requests
    /// get real responses).
    pub fn pop_group<F>(&self, max_group: usize, same_group: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        let mut state = self.lock();
        loop {
            if let Some(group) = drain_group(&mut state, max_group, &same_group) {
                return Some(group);
            }
            if state.shutdown {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Like [`pop_group`](Self::pop_group), but returns `None` immediately
    /// when the queue is empty instead of blocking. Used by sharded
    /// dispatch, where an empty home shard means "go steal", not "sleep".
    pub fn try_pop_group<F>(&self, max_group: usize, same_group: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        drain_group(&mut self.lock(), max_group, &same_group)
    }

    /// Grows an already-popped `group` in place with queued jobs for which
    /// `same_group(&group[0], &candidate)` holds, up to `max_group` total,
    /// without blocking. Returns how many jobs were added.
    ///
    /// This is the queue half of the fused-batching window: a worker
    /// holding a partial group can poll for late-arriving fusible jobs
    /// before committing the group to one engine batch.
    pub fn try_extend_group<F>(&self, group: &mut Vec<T>, max_group: usize, same_group: F) -> usize
    where
        F: Fn(&T, &T) -> bool,
    {
        if group.is_empty() {
            return 0;
        }
        let mut state = self.lock();
        let mut added = 0;
        let mut index = 0;
        while group.len() < max_group.max(1) && index < state.jobs.len() {
            if same_group(&group[0], &state.jobs[index]) {
                let job = state.jobs.remove(index).expect("index is in bounds");
                group.push(job);
                added += 1;
            } else {
                index += 1;
            }
        }
        added
    }

    /// Parks the caller until a job arrives, the queue shuts down, or
    /// `timeout` elapses — whichever happens first. Purely a wakeup hint:
    /// the caller re-checks the queue (and its steal victims) afterwards.
    pub fn wait_for_job(&self, timeout: Duration) {
        let state = self.lock();
        if !state.jobs.is_empty() || state.shutdown {
            return;
        }
        let _ = self
            .available
            .wait_timeout(state, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }

    /// Whether [`shutdown`](Self::shutdown) has been called.
    pub fn is_shut_down(&self) -> bool {
        self.lock().shutdown
    }

    /// Marks the queue as shut down and wakes every blocked worker.
    /// Already-admitted jobs remain drainable.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.available.notify_all();
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared group-dequeue step: pop the oldest job, then pull up to
/// `max_group - 1` same-group jobs past any interlopers, preserving FIFO
/// order within the group.
fn drain_group<T, F>(state: &mut QueueState<T>, max_group: usize, same_group: &F) -> Option<Vec<T>>
where
    F: Fn(&T, &T) -> bool,
{
    let first = state.jobs.pop_front()?;
    let mut group = vec![first];
    let mut index = 0;
    while group.len() < max_group.max(1) && index < state.jobs.len() {
        if same_group(&group[0], &state.jobs[index]) {
            let job = state.jobs.remove(index).expect("index is in bounds");
            group.push(job);
        } else {
            index += 1;
        }
    }
    Some(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let queue = AdmissionQueue::new(8);
        for n in 0..5 {
            queue.try_push(n).unwrap();
        }
        let group = queue.pop_group(1, |_, _| false).unwrap();
        assert_eq!(group, vec![0]);
        let group = queue.pop_group(4, |_, _| true).unwrap();
        assert_eq!(group, vec![1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        let queue = AdmissionQueue::new(2);
        queue.try_push("a").unwrap();
        queue.try_push("b").unwrap();
        assert_eq!(queue.try_push("c"), Err(PushError::Full("c")));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn grouping_pulls_matching_jobs_past_interlopers() {
        let queue = AdmissionQueue::new(8);
        for job in ["x1", "y1", "x2", "y2", "x3"] {
            queue.try_push(job).unwrap();
        }
        let group = queue
            .pop_group(8, |a, b| a.as_bytes()[0] == b.as_bytes()[0])
            .unwrap();
        assert_eq!(group, vec!["x1", "x2", "x3"]);
        // The interlopers keep their relative order.
        assert_eq!(queue.pop_group(1, |_, _| false).unwrap(), vec!["y1"]);
        assert_eq!(queue.pop_group(1, |_, _| false).unwrap(), vec!["y2"]);
    }

    #[test]
    fn group_size_is_capped() {
        let queue = AdmissionQueue::new(8);
        for n in 0..6 {
            queue.try_push(n).unwrap();
        }
        let group = queue.pop_group(3, |_, _| true).unwrap();
        assert_eq!(group, vec![0, 1, 2]);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_rejects_new_jobs() {
        let queue = Arc::new(AdmissionQueue::<u32>::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop_group(1, |_, _| false))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.shutdown();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(queue.try_push(7), Err(PushError::ShutDown(7)));
    }

    #[test]
    fn try_pop_group_never_blocks() {
        let queue = AdmissionQueue::new(4);
        assert_eq!(queue.try_pop_group(4, |_, _: &u32| true), None);
        queue.try_push(1u32).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.try_pop_group(4, |_, _| true), Some(vec![1, 2]));
        assert_eq!(queue.try_pop_group(4, |_, _| true), None);
    }

    #[test]
    fn try_extend_group_pulls_matching_jobs_without_blocking() {
        let queue = AdmissionQueue::new(8);
        for job in ["x1", "y1", "x2"] {
            queue.try_push(job).unwrap();
        }
        let same = |a: &&str, b: &&str| a.as_bytes()[0] == b.as_bytes()[0];
        let mut group = queue.pop_group(1, same).unwrap();
        assert_eq!(group, vec!["x1"]);
        // The window poll pulls the late fusible job past the interloper.
        assert_eq!(queue.try_extend_group(&mut group, 4, same), 1);
        assert_eq!(group, vec!["x1", "x2"]);
        // Nothing fusible left: no-op, and the interloper stays queued.
        assert_eq!(queue.try_extend_group(&mut group, 4, same), 0);
        assert_eq!(queue.pop_group(1, |_, _| false).unwrap(), vec!["y1"]);
        // An empty group never extends.
        let mut empty: Vec<&str> = Vec::new();
        queue.try_push("x9").unwrap();
        assert_eq!(queue.try_extend_group(&mut empty, 4, same), 0);
    }

    #[test]
    fn wait_for_job_returns_on_push_shutdown_and_timeout() {
        // Timeout: an empty, live queue parks for roughly the timeout.
        let queue = AdmissionQueue::<u32>::new(4);
        let start = std::time::Instant::now();
        queue.wait_for_job(Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(5));

        // Push: a queued job returns immediately.
        queue.try_push(1).unwrap();
        let start = std::time::Instant::now();
        queue.wait_for_job(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));

        // Shutdown: a blocked waiter is woken.
        let queue = Arc::new(AdmissionQueue::<u32>::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.wait_for_job(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.shutdown();
        waiter.join().unwrap();
        assert!(queue.is_shut_down());
    }

    #[test]
    fn jobs_admitted_before_shutdown_still_drain() {
        let queue = AdmissionQueue::new(4);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.shutdown();
        assert_eq!(queue.pop_group(1, |_, _| false).unwrap(), vec![1]);
        assert_eq!(queue.pop_group(1, |_, _| false).unwrap(), vec![2]);
        assert_eq!(queue.pop_group(1, |_, _| false), None);
    }
}
