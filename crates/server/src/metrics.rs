//! Server-wide request counters behind lock-free atomics.
//!
//! Every response the server hands a client — served labels, `Busy`,
//! `DeadlineExceeded`, `Invalid`, `Internal` — bumps exactly one status
//! counter here, plus the cumulative queue-wait and service-time sums, so
//! a `STATS` frame can report true server-wide rates and mean latencies
//! without sampling. Counters are monotone from server start; readers take
//! relaxed snapshots (stats are advisory, not a synchronisation point).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::protocol::WireStatus;

/// Monotone counters over the server's lifetime.
pub struct ServerMetrics {
    started: Instant,
    admitted: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    deadline_exceeded: AtomicU64,
    invalid: AtomicU64,
    internal: AtomicU64,
    queue_wait_us: AtomicU64,
    service_us: AtomicU64,
    snapshot_codebooks_loaded: AtomicU64,
    fused_groups: AtomicU64,
    fused_requests: AtomicU64,
    fused_coalesced: AtomicU64,
    fusion_fallbacks: AtomicU64,
    cancelled_mid_run: AtomicU64,
}

impl ServerMetrics {
    /// Fresh counters; `started` is now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            admitted: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
            service_us: AtomicU64::new(0),
            snapshot_codebooks_loaded: AtomicU64::new(0),
            fused_groups: AtomicU64::new(0),
            fused_requests: AtomicU64::new(0),
            fused_coalesced: AtomicU64::new(0),
            fusion_fallbacks: AtomicU64::new(0),
            cancelled_mid_run: AtomicU64::new(0),
        }
    }

    /// Counts one job accepted by the admission queue.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response as the client will see it.
    pub fn record_response(&self, status: WireStatus, queue_wait_us: u64, service_us: u64) {
        let counter = match status {
            WireStatus::Ok => &self.ok,
            WireStatus::Busy => &self.busy,
            WireStatus::DeadlineExceeded => &self.deadline_exceeded,
            WireStatus::Invalid => &self.invalid,
            WireStatus::Internal => &self.internal,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_us
            .fetch_add(queue_wait_us, Ordering::Relaxed);
        self.service_us.fetch_add(service_us, Ordering::Relaxed);
    }

    /// Counts one group executed as a fused engine batch: how many
    /// requests it covered and how many of them were answered from
    /// another request's run because their pixel payloads were identical.
    pub fn record_fused(&self, requests: u64, coalesced: u64) {
        self.fused_groups.fetch_add(1, Ordering::Relaxed);
        self.fused_requests.fetch_add(requests, Ordering::Relaxed);
        self.fused_coalesced.fetch_add(coalesced, Ordering::Relaxed);
    }

    /// Counts one fused batch that fell back to per-image serial
    /// execution after a batch error or panic.
    pub fn record_fusion_fallback(&self) {
        self.fusion_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one engine run aborted mid-flight by its cancel token (the
    /// job's deadline expired, or its client abandoned it, after execution
    /// had already started).
    pub fn record_cancelled_mid_run(&self) {
        self.cancelled_mid_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how many codebooks a startup snapshot warm-started.
    pub fn record_snapshot_loaded(&self, codebooks: usize) {
        self.snapshot_codebooks_loaded
            .store(codebooks as u64, Ordering::Relaxed);
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            service_us: self.service_us.load(Ordering::Relaxed),
            snapshot_codebooks_loaded: self.snapshot_codebooks_loaded.load(Ordering::Relaxed),
            fused_groups: self.fused_groups.load(Ordering::Relaxed),
            fused_requests: self.fused_requests.load(Ordering::Relaxed),
            fused_coalesced: self.fused_coalesced.load(Ordering::Relaxed),
            fusion_fallbacks: self.fusion_fallbacks.load(Ordering::Relaxed),
            cancelled_mid_run: self.cancelled_mid_run.load(Ordering::Relaxed),
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// The counter values at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs the admission queue accepted.
    pub admitted: u64,
    /// Responses with served labels.
    pub ok: u64,
    /// `Busy` rejections (full queue or shutdown).
    pub busy: u64,
    /// `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// `Invalid` responses (malformed or out-of-domain requests).
    pub invalid: u64,
    /// `Internal` responses (engine failures, caught panics).
    pub internal: u64,
    /// Cumulative admission-queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Cumulative engine service time, microseconds.
    pub service_us: u64,
    /// Codebooks warm-started from a startup snapshot.
    pub snapshot_codebooks_loaded: u64,
    /// Same-codebook groups executed as one fused engine batch.
    pub fused_groups: u64,
    /// Requests served by fused batches.
    pub fused_requests: u64,
    /// Fused requests coalesced onto another request's identical payload.
    pub fused_coalesced: u64,
    /// Fused batches that fell back to per-image serial execution.
    pub fusion_fallbacks: u64,
    /// Engine runs aborted mid-flight by a fired cancel token.
    pub cancelled_mid_run: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_status_lands_on_its_own_counter() {
        let metrics = ServerMetrics::new();
        metrics.record_admitted();
        metrics.record_response(WireStatus::Ok, 10, 100);
        metrics.record_response(WireStatus::Busy, 0, 0);
        metrics.record_response(WireStatus::DeadlineExceeded, 5, 0);
        metrics.record_response(WireStatus::Invalid, 0, 0);
        metrics.record_response(WireStatus::Internal, 1, 2);
        metrics.record_snapshot_loaded(3);
        metrics.record_fused(4, 2);
        metrics.record_fused(2, 0);
        metrics.record_fusion_fallback();
        metrics.record_cancelled_mid_run();

        let snap = metrics.snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.busy, 1);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.invalid, 1);
        assert_eq!(snap.internal, 1);
        assert_eq!(snap.queue_wait_us, 16);
        assert_eq!(snap.service_us, 102);
        assert_eq!(snap.snapshot_codebooks_loaded, 3);
        assert_eq!(snap.fused_groups, 2);
        assert_eq!(snap.fused_requests, 6);
        assert_eq!(snap.fused_coalesced, 2);
        assert_eq!(snap.fusion_fallbacks, 1);
        assert_eq!(snap.cancelled_mid_run, 1);
    }
}
