//! A minimal blocking client for the framed protocol.
//!
//! [`SegClient`] speaks one request/response exchange at a time over a
//! persistent TCP connection — exactly the discipline the server's
//! per-connection thread expects. It exists for the loopback tests, the
//! load generator, and as reference wire usage for other-language clients.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    WireProgress, WireSegmentRequest, WireSegmentResponse, WireStatsRequest, WireStatsResponse,
};
use crate::wire::{
    read_frame_into, write_frame, WireError, WireResult, DEFAULT_MAX_FRAME_BYTES, FRAME_PROGRESS,
    FRAME_REQUEST, FRAME_RESPONSE, FRAME_STATS_REQUEST, FRAME_STATS_RESPONSE,
};

/// A blocking connection to a segmentation server.
pub struct SegClient {
    stream: TcpStream,
    max_frame_bytes: usize,
    // Reused across responses, so a long-lived client pays for its
    // largest response frame once instead of allocating per exchange.
    read_buf: Vec<u8>,
}

impl SegClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> WireResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_buf: Vec::new(),
        })
    }

    /// Caps the frame size this client will send or accept.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Bounds how long [`segment`](Self::segment) waits for a response
    /// frame (`None` waits forever).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket rejects the timeout.
    pub fn read_timeout(self, timeout: Option<Duration>) -> WireResult<Self> {
        self.stream.set_read_timeout(timeout)?;
        Ok(self)
    }

    /// Sends one request and blocks for its response frame.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for transport or framing failures, including
    /// [`WireError::Truncated`] if the server hangs up without responding.
    /// Typed *service* failures (busy, deadline, invalid) arrive as
    /// `Ok(response)` with the matching [`WireStatus`](crate::WireStatus).
    pub fn segment(&mut self, request: &WireSegmentRequest) -> WireResult<WireSegmentResponse> {
        write_frame(
            &mut self.stream,
            FRAME_REQUEST,
            &request.encode(),
            self.max_frame_bytes,
        )?;
        self.stream.flush()?;
        match read_frame_into(&mut self.stream, self.max_frame_bytes, &mut self.read_buf)? {
            Some(FRAME_RESPONSE) => WireSegmentResponse::decode(&self.read_buf),
            Some(kind) => Err(WireError::UnknownFrameKind(kind)),
            None => Err(WireError::Truncated {
                field: "response frame",
            }),
        }
    }

    /// Sends one request **opted in to streaming progress** and blocks
    /// for its final response, invoking `on_progress` once per
    /// `FRAME_PROGRESS` frame the server interleaves (one per completed
    /// tile row of a tiled run; whole-image runs may produce none).
    ///
    /// The request is sent with its progress flag forced on, so callers
    /// can reuse the same [`WireSegmentRequest`] they would pass to
    /// [`segment`](Self::segment). The final response is returned exactly
    /// as `segment` would return it — a cancelled or over-deadline run
    /// arrives as `Ok(response)` with
    /// [`WireStatus::DeadlineExceeded`](crate::WireStatus).
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for transport or framing failures, including
    /// a corrupt progress payload.
    pub fn segment_with_progress(
        &mut self,
        request: &WireSegmentRequest,
        mut on_progress: impl FnMut(&WireProgress),
    ) -> WireResult<WireSegmentResponse> {
        let payload = if request.progress {
            request.encode()
        } else {
            request.clone().with_progress().encode()
        };
        write_frame(
            &mut self.stream,
            FRAME_REQUEST,
            &payload,
            self.max_frame_bytes,
        )?;
        self.stream.flush()?;
        loop {
            match read_frame_into(&mut self.stream, self.max_frame_bytes, &mut self.read_buf)? {
                Some(FRAME_PROGRESS) => on_progress(&WireProgress::decode(&self.read_buf)?),
                Some(FRAME_RESPONSE) => return WireSegmentResponse::decode(&self.read_buf),
                Some(kind) => return Err(WireError::UnknownFrameKind(kind)),
                None => {
                    return Err(WireError::Truncated {
                        field: "response frame",
                    })
                }
            }
        }
    }

    /// Asks the server for its statistics counters: uptime, this
    /// connection's request counts, server-wide response/latency totals,
    /// shared-cache counters and per-shard routing counters.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for transport or framing failures.
    pub fn stats(&mut self) -> WireResult<WireStatsResponse> {
        write_frame(
            &mut self.stream,
            FRAME_STATS_REQUEST,
            &WireStatsRequest.encode(),
            self.max_frame_bytes,
        )?;
        self.stream.flush()?;
        match read_frame_into(&mut self.stream, self.max_frame_bytes, &mut self.read_buf)? {
            Some(FRAME_STATS_RESPONSE) => WireStatsResponse::decode(&self.read_buf),
            Some(kind) => Err(WireError::UnknownFrameKind(kind)),
            None => Err(WireError::Truncated {
                field: "stats response frame",
            }),
        }
    }
}
