//! The length-prefixed frame codec under the SegHDC wire protocol.
//!
//! The build environment has no serde, so the codec is hand-rolled and
//! deliberately rigid. Every frame on the wire is:
//!
//! ```text
//! ┌───────┬──────┬─────────┬──────────────┬──────────┐
//! │ magic │ kind │ len u32 │ payload      │ check u64│
//! │ SGHD  │ u8   │ LE      │ `len` bytes  │ FNV-1a LE│
//! └───────┴──────┴─────────┴──────────────┴──────────┘
//! ```
//!
//! * **magic** — the four bytes `SGHD`; anything else means the peer is
//!   not speaking this protocol and the connection is unrecoverable.
//! * **kind** — [`FRAME_REQUEST`], [`FRAME_RESPONSE`],
//!   [`FRAME_STATS_REQUEST`], [`FRAME_STATS_RESPONSE`] or
//!   [`FRAME_PROGRESS`].
//! * **len** — payload size. A receiver enforces its own cap *before*
//!   allocating ([`WireError::FrameTooLarge`]), so a hostile or corrupt
//!   length prefix cannot make it buffer gigabytes.
//! * **check** — FNV-1a 64 over kind, the length prefix and the payload.
//!   Loopback TCP will not corrupt frames, but the checksum turns every
//!   desynchronisation bug (a codec writing one byte short) into an
//!   immediate typed error instead of a garbage segmentation.
//!
//! Payload contents are written and read through [`PayloadWriter`] and
//! [`PayloadReader`] — little-endian fixed-width integers plus
//! `u16`-length-prefixed strings — by the typed layer in
//! [`crate::protocol`].

use std::fmt;
use std::io::{self, Read, Write};

/// The four magic bytes every frame starts with.
pub const MAGIC: [u8; 4] = *b"SGHD";

/// Frame kind: a segmentation request (client → server).
pub const FRAME_REQUEST: u8 = 1;

/// Frame kind: a segmentation response (server → client).
pub const FRAME_RESPONSE: u8 = 2;

/// Frame kind: a server-statistics request (client → server).
pub const FRAME_STATS_REQUEST: u8 = 3;

/// Frame kind: a server-statistics response (server → client).
pub const FRAME_STATS_RESPONSE: u8 = 4;

/// Frame kind: a streaming progress update for an in-flight segmentation
/// request (server → client). Zero or more precede the final
/// [`FRAME_RESPONSE`]; clients that never opt in never see one.
pub const FRAME_PROGRESS: u8 = 5;

/// Default cap on a single frame's payload (64 MiB — a 4096×4096 label
/// map response fits with room to spare).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Errors produced while framing, checksumming or decoding wire payloads.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
    },
    /// The frame kind byte is not a known kind.
    UnknownFrameKind(u8),
    /// The length prefix exceeds the receiver's frame cap.
    FrameTooLarge {
        /// Length the prefix claimed.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// The checksum trailer did not match the received bytes.
    ChecksumMismatch,
    /// A payload field extended past the end of the payload.
    Truncated {
        /// What was being decoded.
        field: &'static str,
    },
    /// Bytes were left over after the payload decoded completely.
    TrailingBytes(usize),
    /// The payload declared a protocol version this build does not speak.
    UnsupportedVersion(u16),
    /// A payload field held an out-of-domain value.
    InvalidField {
        /// Which field.
        field: &'static str,
        /// Why it was rejected.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "wire i/o error: {err}"),
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected {MAGIC:?})")
            }
            WireError::UnknownFrameKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Truncated { field } => {
                write!(f, "payload truncated while decoding {field}")
            }
            WireError::TrailingBytes(count) => {
                write!(f, "{count} trailing bytes after the payload")
            }
            WireError::UnsupportedVersion(version) => {
                write!(f, "unsupported protocol version {version}")
            }
            WireError::InvalidField { field, message } => {
                write!(f, "invalid field {field}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> Self {
        WireError::Io(err)
    }
}

/// Result alias for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// FNV-1a 64 over a sequence of byte slices (the frame checksum).
pub fn checksum(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &byte in *part {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Writes one complete frame (`magic · kind · len · payload · checksum`).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds `max_bytes` (the
/// sender enforces the same cap the receiver will), otherwise any I/O
/// error from the stream.
pub fn write_frame(
    stream: &mut impl Write,
    kind: u8,
    payload: &[u8],
    max_bytes: usize,
) -> WireResult<()> {
    if payload.len() > max_bytes {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max: max_bytes,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    let len_bytes = len.to_le_bytes();
    let check = checksum(&[&[kind], &len_bytes, payload]);
    stream.write_all(&MAGIC)?;
    stream.write_all(&[kind])?;
    stream.write_all(&len_bytes)?;
    stream.write_all(payload)?;
    stream.write_all(&check.to_le_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Reads one complete frame, returning `Ok(None)` on a clean end of
/// stream (the peer closed between frames).
///
/// Allocates a fresh payload `Vec` per call; a connection loop reading
/// many frames should hold a buffer and use [`read_frame_into`] instead.
///
/// # Errors
///
/// Every decode failure is typed: [`WireError::BadMagic`] and
/// [`WireError::ChecksumMismatch`] mean the stream cannot be resynced;
/// [`WireError::FrameTooLarge`] is raised from the length prefix *before*
/// the payload is allocated or read.
pub fn read_frame(stream: &mut impl Read, max_bytes: usize) -> WireResult<Option<(u8, Vec<u8>)>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(stream, max_bytes, &mut payload)?.map(|kind| (kind, payload)))
}

/// Reads one complete frame into a caller-owned payload buffer, returning
/// the frame kind (or `Ok(None)` on a clean end of stream). The buffer is
/// cleared first and keeps its allocation across calls, so a persistent
/// connection pays for its largest frame once instead of allocating per
/// frame.
///
/// # Errors
///
/// Same typed failures as [`read_frame`]; the frame cap is still enforced
/// from the length prefix *before* the buffer is grown, so a hostile
/// length cannot force a huge allocation.
pub fn read_frame_into(
    stream: &mut impl Read,
    max_bytes: usize,
    payload: &mut Vec<u8>,
) -> WireResult<Option<u8>> {
    payload.clear();
    let mut magic = [0u8; 4];
    match read_exact_or_eof(stream, &mut magic)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let mut kind = [0u8; 1];
    stream.read_exact(&mut kind)?;
    let kind = kind[0];
    if !(FRAME_REQUEST..=FRAME_PROGRESS).contains(&kind) {
        return Err(WireError::UnknownFrameKind(kind));
    }
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_bytes {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_bytes,
        });
    }
    payload.resize(len, 0);
    stream.read_exact(payload)?;
    let mut check_bytes = [0u8; 8];
    stream.read_exact(&mut check_bytes)?;
    let expected = checksum(&[&[kind], &len_bytes, payload]);
    if u64::from_le_bytes(check_bytes) != expected {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(kind))
}

enum ReadOutcome {
    Filled,
    CleanEof,
}

/// `read_exact`, except zero bytes before the first byte of `buf` is a
/// clean EOF rather than an error.
fn read_exact_or_eof(stream: &mut impl Read, buf: &mut [u8]) -> WireResult<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanEof),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Little-endian payload builder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that reuses `buf`'s allocation (contents are cleared).
    /// Pairs with [`finish`](Self::finish) to encode into a pooled buffer.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends raw bytes (the caller has already written their length).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u16`-length-prefixed UTF-8 string (truncated at the
    /// `u16` cap; wire strings are short identifiers and messages).
    pub fn put_str(&mut self, value: &str) {
        let bytes = value.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.put_u16(len as u16);
        self.put_bytes(&bytes[..len]);
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian payload cursor; every read is bounds-checked into a
/// typed [`WireError::Truncated`].
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, count: usize, field: &'static str) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(count)
            .filter(|&end| end <= self.buf.len())
            .ok_or(WireError::Truncated { field })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end.
    pub fn take_u8(&mut self, field: &'static str) -> WireResult<u8> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end.
    pub fn take_u16(&mut self, field: &'static str) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, field)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end.
    pub fn take_u32(&mut self, field: &'static str) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end.
    pub fn take_u64(&mut self, field: &'static str) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    /// Reads `count` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end.
    pub fn take_bytes(&mut self, count: usize, field: &'static str) -> WireResult<&'a [u8]> {
        self.take(count, field)
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] past the payload end, or
    /// [`WireError::InvalidField`] on non-UTF-8 bytes.
    pub fn take_str(&mut self, field: &'static str) -> WireResult<String> {
        let len = self.take_u16(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidField {
            field,
            message: "string is not valid UTF-8".to_string(),
        })
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn expect_end(&self) -> WireResult<()> {
        let remaining = self.buf.len() - self.pos;
        if remaining != 0 {
            return Err(WireError::TrailingBytes(remaining));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let payload = vec![1u8, 2, 3, 250, 0, 7];
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_REQUEST, &payload, 1024).unwrap();
        let mut cursor = Cursor::new(buf);
        let (kind, decoded) = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(kind, FRAME_REQUEST);
        assert_eq!(decoded, payload);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn a_reused_buffer_reads_many_frames_and_keeps_its_allocation() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FRAME_REQUEST, &[7u8; 512], 1024).unwrap();
        write_frame(&mut stream, FRAME_RESPONSE, &[9u8; 16], 1024).unwrap();
        let mut cursor = Cursor::new(stream);
        let mut payload = Vec::new();
        assert_eq!(
            read_frame_into(&mut cursor, 1024, &mut payload).unwrap(),
            Some(FRAME_REQUEST)
        );
        assert_eq!(payload, vec![7u8; 512]);
        let capacity = payload.capacity();
        assert_eq!(
            read_frame_into(&mut cursor, 1024, &mut payload).unwrap(),
            Some(FRAME_RESPONSE)
        );
        assert_eq!(payload, vec![9u8; 16]);
        assert_eq!(payload.capacity(), capacity, "the big allocation is kept");
        assert!(read_frame_into(&mut cursor, 1024, &mut payload)
            .unwrap()
            .is_none());
    }

    #[test]
    fn read_frame_into_rejects_oversized_prefixes_before_growing_the_buffer() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(FRAME_REQUEST);
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut payload = Vec::new();
        let err = read_frame_into(&mut Cursor::new(stream), 1024, &mut payload).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { max: 1024, .. }));
        assert_eq!(payload.capacity(), 0, "the cap must gate the allocation");
    }

    #[test]
    fn a_reused_writer_clears_old_contents_but_keeps_the_allocation() {
        let mut writer = PayloadWriter::new();
        writer.put_u64(u64::MAX);
        let first = writer.finish();
        let capacity = first.capacity();
        let mut writer = PayloadWriter::reuse(first);
        writer.put_u8(5);
        let second = writer.finish();
        assert_eq!(second, vec![5]);
        assert_eq!(second.capacity(), capacity);
    }

    #[test]
    fn empty_stream_is_a_clean_eof() {
        let mut cursor = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_RESPONSE, b"abc", 1024).unwrap();
        buf[0] = b'X';
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(FRAME_REQUEST);
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(
            err,
            WireError::FrameTooLarge {
                max: 1024,
                len
            } if len == u32::MAX as usize
        ));
    }

    #[test]
    fn writer_enforces_the_same_cap() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, FRAME_REQUEST, &[0u8; 100], 64).unwrap_err();
        assert!(matches!(
            err,
            WireError::FrameTooLarge { len: 100, max: 64 }
        ));
        assert!(buf.is_empty(), "nothing may hit the wire on rejection");
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_REQUEST, &[9u8; 32], 1024).unwrap();
        let flip_at = buf.len() - 12; // inside the payload
        buf[flip_at] ^= 0x40;
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch));
    }

    #[test]
    fn truncated_frames_error_instead_of_blocking_forever() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_REQUEST, &[7u8; 16], 1024).unwrap();
        buf.truncate(buf.len() - 3); // lose part of the checksum
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::Io(_)));
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_REQUEST, b"x", 1024).unwrap();
        buf[4] = 77;
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, WireError::UnknownFrameKind(77)));
    }

    #[test]
    fn payload_reader_round_trips_every_field_type() {
        let mut writer = PayloadWriter::new();
        writer.put_u8(7);
        writer.put_u16(300);
        writer.put_u32(70_000);
        writer.put_u64(u64::MAX - 1);
        writer.put_str("avx512-vpopcnt");
        writer.put_bytes(&[1, 2, 3]);
        let payload = writer.finish();

        let mut reader = PayloadReader::new(&payload);
        assert_eq!(reader.take_u8("a").unwrap(), 7);
        assert_eq!(reader.take_u16("b").unwrap(), 300);
        assert_eq!(reader.take_u32("c").unwrap(), 70_000);
        assert_eq!(reader.take_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(reader.take_str("e").unwrap(), "avx512-vpopcnt");
        assert_eq!(reader.take_bytes(3, "f").unwrap(), &[1, 2, 3]);
        reader.expect_end().unwrap();
    }

    #[test]
    fn reader_types_truncation_and_trailing_bytes() {
        let payload = vec![1u8, 2];
        let mut reader = PayloadReader::new(&payload);
        assert!(matches!(
            reader.take_u32("field"),
            Err(WireError::Truncated { field: "field" })
        ));
        assert_eq!(reader.take_u8("ok").unwrap(), 1);
        assert!(matches!(
            reader.expect_end(),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn checksum_is_order_and_boundary_sensitive() {
        assert_ne!(checksum(&[b"ab"]), checksum(&[b"ba"]));
        // Same bytes split differently hash identically (it is one stream).
        assert_eq!(checksum(&[b"ab", b"c"]), checksum(&[b"abc"]));
        assert_ne!(checksum(&[b"abc"]), checksum(&[b"abd"]));
    }
}
