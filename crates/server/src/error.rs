//! Server-side error type.

use std::error::Error;
use std::fmt;
use std::io;

use crate::wire::WireError;

/// Why a server could not start or serve.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or accepting on the listener failed.
    Io(io::Error),
    /// A wire-level failure surfaced outside a connection thread.
    Wire(WireError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(err) => write!(f, "i/o error: {err}"),
            ServerError::Wire(err) => write!(f, "wire error: {err}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(err) => Some(err),
            ServerError::Wire(err) => Some(err),
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(err: io::Error) -> Self {
        ServerError::Io(err)
    }
}

impl From<WireError> for ServerError {
    fn from(err: WireError) -> Self {
        ServerError::Wire(err)
    }
}
