//! Server-side error type.

use std::error::Error;
use std::fmt;
use std::io;

use crate::wire::WireError;
use seghdc::SnapshotError;

/// Why a server could not start or serve.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or accepting on the listener failed.
    Io(io::Error),
    /// A wire-level failure surfaced outside a connection thread.
    Wire(WireError),
    /// Loading or saving a codebook snapshot failed. At startup this means
    /// the configured warm-start file exists but is corrupt — refusing to
    /// start beats silently serving cold from a file the operator believes
    /// is warm.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(err) => write!(f, "i/o error: {err}"),
            ServerError::Wire(err) => write!(f, "wire error: {err}"),
            ServerError::Snapshot(err) => write!(f, "codebook snapshot error: {err}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(err) => Some(err),
            ServerError::Wire(err) => Some(err),
            ServerError::Snapshot(err) => Some(err),
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(err: io::Error) -> Self {
        ServerError::Io(err)
    }
}

impl From<WireError> for ServerError {
    fn from(err: WireError) -> Self {
        ServerError::Wire(err)
    }
}

impl From<SnapshotError> for ServerError {
    fn from(err: SnapshotError) -> Self {
        ServerError::Snapshot(err)
    }
}
