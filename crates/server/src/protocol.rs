//! Versioned request/response messages carried inside wire frames.
//!
//! A request frame carries everything the server needs to serve a
//! segmentation with no out-of-band state: the full algorithmic
//! configuration (seed, dimension, α/β/γ, encodings, metric), the
//! requested execution mode, a per-request deadline, and the raw pixel
//! buffer. A response frame carries either the label map plus the
//! [`SegmentReport`](seghdc::SegmentReport)-style telemetry envelope, or
//! one of the typed error statuses ([`WireStatus::Busy`],
//! [`WireStatus::DeadlineExceeded`], …) the admission queue and deadline
//! machinery promise instead of unbounded queuing.
//!
//! Both payloads start with [`PROTOCOL_VERSION`]; a decoder refuses
//! versions it does not speak with [`WireError::UnsupportedVersion`]
//! rather than misreading fields.

use crate::wire::{PayloadReader, PayloadWriter, WireError, WireResult};
use imaging::{DynamicImage, GrayImage, RgbImage};
use seghdc::{ColorEncoding, DistanceMetric, PositionEncoding, SegHdcConfig};

/// Version every payload layout is written at. Version 2 extended the
/// stats response's server counters with the fused-execution counters
/// (`fused_groups`, `fused_requests`, `fused_coalesced`,
/// `fusion_fallbacks`). Version 3 added the streaming [`WireProgress`]
/// payload and the `cancelled_mid_run` server counter.
pub const PROTOCOL_VERSION: u16 = 3;

/// Execution mode requested on the wire (mirrors
/// [`seghdc::ExecutionMode`], with tile geometry spelled out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// Let the engine planner pick whole-image or tiled per image.
    Auto,
    /// Force whole-image execution.
    WholeImage,
    /// Force streaming tiled execution with this geometry.
    Tiled {
        /// Tile width in pixels.
        tile_width: u32,
        /// Tile height in pixels.
        tile_height: u32,
        /// Halo width in pixels.
        halo: u32,
    },
}

/// One segmentation request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSegmentRequest {
    /// Deadline in milliseconds from admission; `0` asks for the server's
    /// default deadline.
    pub deadline_ms: u32,
    /// Full algorithmic configuration (snapshots are never recorded
    /// server-side, so [`SegHdcConfig::record_snapshots`] is not on the
    /// wire).
    pub config: SegHdcConfig,
    /// Requested execution mode.
    pub mode: RequestMode,
    /// Colour channel count: `1` (gray) or `3` (interleaved RGB).
    pub channels: u8,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Row-major pixel bytes (`width × height × channels` of them).
    pub pixels: Vec<u8>,
    /// Whether the client opted in to streaming progress: when `true`,
    /// the server interleaves zero or more `FRAME_PROGRESS` frames
    /// ([`WireProgress`]) before the final response frame. When `false`
    /// (the default, and what [`from_image`](Self::from_image) emits),
    /// the connection stays strictly one frame per request, so clients
    /// that never opt in never see a progress frame.
    pub progress: bool,
}

impl WireSegmentRequest {
    /// Serializes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u16(PROTOCOL_VERSION);
        w.put_u32(self.deadline_ms);
        w.put_u64(self.config.seed);
        w.put_u32(self.config.dimension as u32);
        w.put_u16(self.config.clusters as u16);
        w.put_u16(self.config.iterations as u16);
        w.put_u64(self.config.alpha.to_bits());
        w.put_u32(self.config.beta as u32);
        w.put_u32(self.config.gamma as u32);
        w.put_u8(encode_position(self.config.position_encoding));
        w.put_u8(encode_color(self.config.color_encoding));
        w.put_u8(encode_metric(self.config.distance_metric));
        match self.mode {
            RequestMode::Auto => w.put_u8(0),
            RequestMode::WholeImage => w.put_u8(1),
            RequestMode::Tiled {
                tile_width,
                tile_height,
                halo,
            } => {
                w.put_u8(2);
                w.put_u32(tile_width);
                w.put_u32(tile_height);
                w.put_u32(halo);
            }
        }
        w.put_u8(self.channels);
        w.put_u32(self.width);
        w.put_u32(self.height);
        w.put_bytes(&self.pixels);
        w.put_u8(u8::from(self.progress));
        w.finish()
    }

    /// Deserializes a request payload.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for version/enum/shape violations; the pixel
    /// buffer length is validated against `width × height × channels`
    /// exactly (a short buffer is [`WireError::Truncated`], a long one
    /// [`WireError::TrailingBytes`]).
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = PayloadReader::new(payload);
        let version = r.take_u16("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let deadline_ms = r.take_u32("deadline_ms")?;
        let seed = r.take_u64("seed")?;
        let dimension = r.take_u32("dimension")? as usize;
        let clusters = r.take_u16("clusters")? as usize;
        let iterations = r.take_u16("iterations")? as usize;
        let alpha = f64::from_bits(r.take_u64("alpha_bits")?);
        let beta = r.take_u32("beta")? as usize;
        let gamma = r.take_u32("gamma")? as usize;
        let position_encoding = decode_position(r.take_u8("position_encoding")?)?;
        let color_encoding = decode_color(r.take_u8("color_encoding")?)?;
        let distance_metric = decode_metric(r.take_u8("distance_metric")?)?;
        let mode = match r.take_u8("mode")? {
            0 => RequestMode::Auto,
            1 => RequestMode::WholeImage,
            2 => RequestMode::Tiled {
                tile_width: r.take_u32("tile_width")?,
                tile_height: r.take_u32("tile_height")?,
                halo: r.take_u32("halo")?,
            },
            other => {
                return Err(WireError::InvalidField {
                    field: "mode",
                    message: format!("unknown execution mode {other}"),
                })
            }
        };
        let channels = r.take_u8("channels")?;
        if channels != 1 && channels != 3 {
            return Err(WireError::InvalidField {
                field: "channels",
                message: format!("channel count must be 1 or 3, got {channels}"),
            });
        }
        let width = r.take_u32("width")?;
        let height = r.take_u32("height")?;
        let pixel_bytes = (width as usize)
            .checked_mul(height as usize)
            .and_then(|p| p.checked_mul(channels as usize))
            .ok_or(WireError::InvalidField {
                field: "width",
                message: "image shape overflows".to_string(),
            })?;
        let pixels = r.take_bytes(pixel_bytes, "pixels")?.to_vec();
        let progress = match r.take_u8("progress")? {
            0 => false,
            1 => true,
            other => {
                return Err(WireError::InvalidField {
                    field: "progress",
                    message: format!("progress flag must be 0 or 1, got {other}"),
                })
            }
        };
        r.expect_end()?;
        let config = SegHdcConfig {
            dimension,
            alpha,
            beta,
            gamma,
            clusters,
            iterations,
            position_encoding,
            color_encoding,
            distance_metric,
            seed,
            record_snapshots: false,
        };
        Ok(Self {
            deadline_ms,
            config,
            mode,
            channels,
            width,
            height,
            pixels,
            progress,
        })
    }

    /// Reassembles the pixel buffer into an image, cloning the pixels
    /// (the request stays usable — the client-side and test-side variant).
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidField`] for degenerate shapes (zero-sized
    /// frames included — a server must reject them, not crash).
    pub fn to_image(&self) -> WireResult<DynamicImage> {
        assemble_image(self.channels, self.width, self.height, self.pixels.clone())
    }

    /// Like [`to_image`](Self::to_image), but **moves** the pixel buffer
    /// into the image instead of cloning it — the server's hot path,
    /// where the request is not needed after the image exists.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidField`] for degenerate shapes.
    pub fn into_dynamic_image(self) -> WireResult<DynamicImage> {
        assemble_image(self.channels, self.width, self.height, self.pixels)
    }

    /// Builds a wire request from an in-memory image.
    pub fn from_image(
        config: &SegHdcConfig,
        image: &DynamicImage,
        mode: RequestMode,
        deadline_ms: u32,
    ) -> Self {
        let (channels, pixels) = match image {
            DynamicImage::Gray(img) => (1u8, img.as_raw().to_vec()),
            DynamicImage::Rgb(img) => (3u8, img.as_raw().to_vec()),
        };
        Self {
            deadline_ms,
            config: SegHdcConfig {
                record_snapshots: false,
                ..config.clone()
            },
            mode,
            channels,
            width: image.width() as u32,
            height: image.height() as u32,
            pixels,
            progress: false,
        }
    }

    /// Opts this request in to streaming `FRAME_PROGRESS` frames
    /// (builder-style; see the [`progress`](Self::progress) field).
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }
}

/// The shared image-reassembly step behind [`WireSegmentRequest::to_image`]
/// and [`WireSegmentRequest::into_dynamic_image`].
fn assemble_image(
    channels: u8,
    width: u32,
    height: u32,
    pixels: Vec<u8>,
) -> WireResult<DynamicImage> {
    let invalid = |message: String| WireError::InvalidField {
        field: "image",
        message,
    };
    let width = width as usize;
    let height = height as usize;
    match channels {
        1 => GrayImage::from_raw(width, height, pixels)
            .map(DynamicImage::Gray)
            .map_err(|err| invalid(err.to_string())),
        3 => RgbImage::from_raw(width, height, pixels)
            .map(DynamicImage::Rgb)
            .map_err(|err| invalid(err.to_string())),
        other => Err(invalid(format!(
            "channel count must be 1 or 3, got {other}"
        ))),
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Labels follow.
    Ok,
    /// The admission queue was full; retry with backoff.
    Busy,
    /// The deadline elapsed before (or while) the request was served.
    DeadlineExceeded,
    /// The request was malformed or out of domain; retrying is futile.
    Invalid,
    /// The server failed internally (including a panicking worker).
    Internal,
}

impl WireStatus {
    fn to_byte(self) -> u8 {
        match self {
            WireStatus::Ok => 0,
            WireStatus::Busy => 1,
            WireStatus::DeadlineExceeded => 2,
            WireStatus::Invalid => 3,
            WireStatus::Internal => 4,
        }
    }

    fn from_byte(byte: u8) -> WireResult<Self> {
        Ok(match byte {
            0 => WireStatus::Ok,
            1 => WireStatus::Busy,
            2 => WireStatus::DeadlineExceeded,
            3 => WireStatus::Invalid,
            4 => WireStatus::Internal,
            other => {
                return Err(WireError::InvalidField {
                    field: "status",
                    message: format!("unknown status byte {other}"),
                })
            }
        })
    }
}

/// Engine telemetry echoed in every successful response (the
/// [`seghdc::EngineTelemetry`] envelope, serialized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTelemetry {
    /// Codebook-cache hits over the serving engine's lifetime.
    pub cache_hits: u64,
    /// Codebook-cache misses over the serving engine's lifetime.
    pub cache_misses: u64,
    /// Encoders currently resident in the shared cache.
    pub cache_entries: u32,
    /// Codebook bytes currently resident in the shared cache.
    pub cache_bytes: u64,
    /// Arena matrix high-water mark in bytes.
    pub peak_matrix_bytes: u64,
    /// Execution backend name.
    pub backend: String,
    /// Word-kernel instruction set that served the request.
    pub kernel_isa: String,
}

/// The body of a response: labels or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A served segmentation.
    Labels {
        /// Whether the engine executed the image as streamed tiles.
        executed_tiled: bool,
        /// Label-map width in pixels.
        width: u32,
        /// Label-map height in pixels.
        height: u32,
        /// Row-major per-pixel labels.
        labels: Vec<u32>,
        /// The telemetry envelope.
        telemetry: WireTelemetry,
    },
    /// A typed failure; `status` is never [`WireStatus::Ok`].
    Error {
        /// Which failure.
        status: WireStatus,
        /// Human-readable detail.
        message: String,
    },
}

/// One response as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSegmentResponse {
    /// Microseconds the request waited in the admission queue.
    pub queue_wait_us: u64,
    /// Microseconds the engine spent serving it (zero for rejections).
    pub service_us: u64,
    /// Labels or a typed error.
    pub body: ResponseBody,
}

impl WireSegmentResponse {
    /// Shorthand for an error response.
    pub fn error(status: WireStatus, message: impl Into<String>, queue_wait_us: u64) -> Self {
        Self {
            queue_wait_us,
            service_us: 0,
            body: ResponseBody::Error {
                status,
                message: message.into(),
            },
        }
    }

    /// The response status byte.
    pub fn status(&self) -> WireStatus {
        match &self.body {
            ResponseBody::Labels { .. } => WireStatus::Ok,
            ResponseBody::Error { status, .. } => *status,
        }
    }

    /// The label map of a successful response.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidField`] when the response is an error frame or
    /// the labels do not form a valid map.
    pub fn label_map(&self) -> WireResult<imaging::LabelMap> {
        match &self.body {
            ResponseBody::Labels {
                width,
                height,
                labels,
                ..
            } => imaging::LabelMap::from_raw(*width as usize, *height as usize, labels.clone())
                .map_err(|err| WireError::InvalidField {
                    field: "labels",
                    message: err.to_string(),
                }),
            ResponseBody::Error { status, message } => Err(WireError::InvalidField {
                field: "status",
                message: format!("response is {status:?}: {message}"),
            }),
        }
    }

    /// Serializes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the response payload into `buf`, reusing its allocation
    /// (the server encodes every response on a connection into one pooled
    /// buffer instead of allocating per response).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::reuse(std::mem::take(buf));
        w.put_u16(PROTOCOL_VERSION);
        w.put_u8(self.status().to_byte());
        w.put_u64(self.queue_wait_us);
        w.put_u64(self.service_us);
        match &self.body {
            ResponseBody::Labels {
                executed_tiled,
                width,
                height,
                labels,
                telemetry,
            } => {
                w.put_u8(u8::from(*executed_tiled));
                w.put_u32(*width);
                w.put_u32(*height);
                for &label in labels {
                    w.put_u32(label);
                }
                w.put_u64(telemetry.cache_hits);
                w.put_u64(telemetry.cache_misses);
                w.put_u32(telemetry.cache_entries);
                w.put_u64(telemetry.cache_bytes);
                w.put_u64(telemetry.peak_matrix_bytes);
                w.put_str(&telemetry.backend);
                w.put_str(&telemetry.kernel_isa);
            }
            ResponseBody::Error { message, .. } => {
                w.put_str(message);
            }
        }
        *buf = w.finish();
    }

    /// Deserializes a response payload.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for version/status/shape violations.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = PayloadReader::new(payload);
        let version = r.take_u16("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let status = WireStatus::from_byte(r.take_u8("status")?)?;
        let queue_wait_us = r.take_u64("queue_wait_us")?;
        let service_us = r.take_u64("service_us")?;
        let body = if status == WireStatus::Ok {
            let executed_tiled = r.take_u8("executed_tiled")? != 0;
            let width = r.take_u32("width")?;
            let height = r.take_u32("height")?;
            let count =
                (width as usize)
                    .checked_mul(height as usize)
                    .ok_or(WireError::InvalidField {
                        field: "width",
                        message: "label shape overflows".to_string(),
                    })?;
            let mut labels = Vec::with_capacity(count);
            let raw = r.take_bytes(count * 4, "labels")?;
            for chunk in raw.chunks_exact(4) {
                labels.push(u32::from_le_bytes(chunk.try_into().unwrap()));
            }
            let telemetry = WireTelemetry {
                cache_hits: r.take_u64("cache_hits")?,
                cache_misses: r.take_u64("cache_misses")?,
                cache_entries: r.take_u32("cache_entries")?,
                cache_bytes: r.take_u64("cache_bytes")?,
                peak_matrix_bytes: r.take_u64("peak_matrix_bytes")?,
                backend: r.take_str("backend")?,
                kernel_isa: r.take_str("kernel_isa")?,
            };
            ResponseBody::Labels {
                executed_tiled,
                width,
                height,
                labels,
                telemetry,
            }
        } else {
            ResponseBody::Error {
                status,
                message: r.take_str("message")?,
            }
        };
        r.expect_end()?;
        Ok(Self {
            queue_wait_us,
            service_us,
            body,
        })
    }
}

/// One streaming progress update for an in-flight segmentation request,
/// carried in a [`crate::wire::FRAME_PROGRESS`] frame between the request
/// and its final response.
///
/// `request_id` is the connection's request sequence number (the first
/// segmentation request on a connection is id 1), so a client that
/// pipelines can attribute updates; `rows_done`/`rows_total` count
/// completed tile rows of a streaming tiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireProgress {
    /// Connection-scoped request sequence number this update belongs to.
    pub request_id: u64,
    /// Tile rows completed so far.
    pub rows_done: u32,
    /// Total tile rows the run will process.
    pub rows_total: u32,
    /// Microseconds elapsed since the engine run started.
    pub elapsed_us: u64,
}

impl WireProgress {
    /// Serializes the progress payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the progress payload into `buf`, reusing its allocation
    /// (progress frames share the connection's pooled write buffer).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::reuse(std::mem::take(buf));
        w.put_u16(PROTOCOL_VERSION);
        w.put_u64(self.request_id);
        w.put_u32(self.rows_done);
        w.put_u32(self.rows_total);
        w.put_u64(self.elapsed_us);
        *buf = w.finish();
    }

    /// Deserializes a progress payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnsupportedVersion`] on a version this build does not
    /// speak, [`WireError::Truncated`] on a short payload,
    /// [`WireError::TrailingBytes`] on extra bytes.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = PayloadReader::new(payload);
        let version = r.take_u16("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let progress = Self {
            request_id: r.take_u64("request_id")?,
            rows_done: r.take_u32("rows_done")?,
            rows_total: r.take_u32("rows_total")?,
            elapsed_us: r.take_u64("elapsed_us")?,
        };
        r.expect_end()?;
        Ok(progress)
    }
}

/// A statistics request as it travels on the wire (version only — the
/// response always carries every counter the server keeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStatsRequest;

impl WireStatsRequest {
    /// Serializes the stats-request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u16(PROTOCOL_VERSION);
        w.finish()
    }

    /// Deserializes a stats-request payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnsupportedVersion`] on a version this build does not
    /// speak, [`WireError::TrailingBytes`] on extra bytes.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = PayloadReader::new(payload);
        let version = r.take_u16("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        r.expect_end()?;
        Ok(Self)
    }
}

/// Counters kept by the connection thread serving this client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireConnectionStats {
    /// Segmentation requests received on this connection.
    pub requests: u64,
    /// Responses on this connection that carried labels.
    pub responses_ok: u64,
    /// Responses on this connection that carried a typed error.
    pub responses_error: u64,
}

/// Server-wide counters since the server started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServerStats {
    /// Jobs the admission queue accepted.
    pub admitted: u64,
    /// Responses with served labels.
    pub responses_ok: u64,
    /// `Busy` rejections.
    pub responses_busy: u64,
    /// `DeadlineExceeded` responses.
    pub responses_deadline: u64,
    /// `Invalid` responses.
    pub responses_invalid: u64,
    /// `Internal` responses.
    pub responses_internal: u64,
    /// Cumulative admission-queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Cumulative engine service time, microseconds.
    pub service_us: u64,
    /// Same-codebook groups executed as one fused engine batch.
    pub fused_groups: u64,
    /// Requests served by those fused batches.
    pub fused_requests: u64,
    /// Fused requests answered from another request's engine run because
    /// their pixel payloads were identical (request coalescing).
    pub fused_coalesced: u64,
    /// Fused batches that fell back to per-image serial execution after a
    /// batch error or panic.
    pub fusion_fallbacks: u64,
    /// Engine runs aborted mid-flight by a fired cancel token (deadline
    /// expiry or client abandonment after execution had started).
    pub cancelled_mid_run: u64,
}

/// The shared codebook cache as the server sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCacheStats {
    /// Cache hits over the server's lifetime.
    pub hits: u64,
    /// Cache misses over the server's lifetime.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Encoders currently resident.
    pub entries: u32,
    /// Codebook bytes currently resident.
    pub bytes: u64,
    /// Codebooks warm-started from a startup snapshot.
    pub snapshot_loaded: u32,
}

/// One admission shard's counters (see `crate::shard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireShardStats {
    /// Jobs admitted here because this was their home shard.
    pub routed: u64,
    /// Jobs admitted here because their home shard was full.
    pub spilled: u64,
    /// Jobs dequeued from here by a different worker.
    pub stolen: u64,
    /// Jobs dequeued from here by this shard's own worker.
    pub served: u64,
    /// Jobs queued here right now.
    pub depth: u64,
}

/// A statistics response as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStatsResponse {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker threads (== admission shards).
    pub workers: u32,
    /// Counters for the connection that asked.
    pub connection: WireConnectionStats,
    /// Server-wide counters.
    pub server: WireServerStats,
    /// Shared codebook-cache counters.
    pub cache: WireCacheStats,
    /// Per-shard routing counters, in shard order.
    pub shards: Vec<WireShardStats>,
}

impl WireStatsResponse {
    /// Serializes the stats-response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the stats-response payload into `buf`, reusing its
    /// allocation (so a connection's STATS responses share the pooled
    /// write buffer with every other response kind).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = PayloadWriter::reuse(std::mem::take(buf));
        w.put_u16(PROTOCOL_VERSION);
        w.put_u64(self.uptime_ms);
        w.put_u32(self.workers);
        w.put_u64(self.connection.requests);
        w.put_u64(self.connection.responses_ok);
        w.put_u64(self.connection.responses_error);
        w.put_u64(self.server.admitted);
        w.put_u64(self.server.responses_ok);
        w.put_u64(self.server.responses_busy);
        w.put_u64(self.server.responses_deadline);
        w.put_u64(self.server.responses_invalid);
        w.put_u64(self.server.responses_internal);
        w.put_u64(self.server.queue_wait_us);
        w.put_u64(self.server.service_us);
        w.put_u64(self.server.fused_groups);
        w.put_u64(self.server.fused_requests);
        w.put_u64(self.server.fused_coalesced);
        w.put_u64(self.server.fusion_fallbacks);
        w.put_u64(self.server.cancelled_mid_run);
        w.put_u64(self.cache.hits);
        w.put_u64(self.cache.misses);
        w.put_u64(self.cache.evictions);
        w.put_u32(self.cache.entries);
        w.put_u64(self.cache.bytes);
        w.put_u32(self.cache.snapshot_loaded);
        w.put_u32(self.shards.len() as u32);
        for shard in &self.shards {
            w.put_u64(shard.routed);
            w.put_u64(shard.spilled);
            w.put_u64(shard.stolen);
            w.put_u64(shard.served);
            w.put_u64(shard.depth);
        }
        *buf = w.finish();
    }

    /// Deserializes a stats-response payload.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for version/shape violations; the shard count
    /// is validated against the remaining payload length before the shard
    /// list is allocated.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = PayloadReader::new(payload);
        let version = r.take_u16("version")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let uptime_ms = r.take_u64("uptime_ms")?;
        let workers = r.take_u32("workers")?;
        let connection = WireConnectionStats {
            requests: r.take_u64("connection.requests")?,
            responses_ok: r.take_u64("connection.responses_ok")?,
            responses_error: r.take_u64("connection.responses_error")?,
        };
        let server = WireServerStats {
            admitted: r.take_u64("server.admitted")?,
            responses_ok: r.take_u64("server.responses_ok")?,
            responses_busy: r.take_u64("server.responses_busy")?,
            responses_deadline: r.take_u64("server.responses_deadline")?,
            responses_invalid: r.take_u64("server.responses_invalid")?,
            responses_internal: r.take_u64("server.responses_internal")?,
            queue_wait_us: r.take_u64("server.queue_wait_us")?,
            service_us: r.take_u64("server.service_us")?,
            fused_groups: r.take_u64("server.fused_groups")?,
            fused_requests: r.take_u64("server.fused_requests")?,
            fused_coalesced: r.take_u64("server.fused_coalesced")?,
            fusion_fallbacks: r.take_u64("server.fusion_fallbacks")?,
            cancelled_mid_run: r.take_u64("server.cancelled_mid_run")?,
        };
        let cache = WireCacheStats {
            hits: r.take_u64("cache.hits")?,
            misses: r.take_u64("cache.misses")?,
            evictions: r.take_u64("cache.evictions")?,
            entries: r.take_u32("cache.entries")?,
            bytes: r.take_u64("cache.bytes")?,
            snapshot_loaded: r.take_u32("cache.snapshot_loaded")?,
        };
        let shard_count = r.take_u32("shard_count")? as usize;
        let mut shards = Vec::with_capacity(shard_count.min(1024));
        for _ in 0..shard_count {
            shards.push(WireShardStats {
                routed: r.take_u64("shard.routed")?,
                spilled: r.take_u64("shard.spilled")?,
                stolen: r.take_u64("shard.stolen")?,
                served: r.take_u64("shard.served")?,
                depth: r.take_u64("shard.depth")?,
            });
        }
        r.expect_end()?;
        Ok(Self {
            uptime_ms,
            workers,
            connection,
            server,
            cache,
            shards,
        })
    }
}

fn encode_position(encoding: PositionEncoding) -> u8 {
    match encoding {
        PositionEncoding::Uniform => 0,
        PositionEncoding::Manhattan => 1,
        PositionEncoding::DecayManhattan => 2,
        PositionEncoding::BlockDecayManhattan => 3,
        PositionEncoding::Random => 4,
    }
}

fn decode_position(byte: u8) -> WireResult<PositionEncoding> {
    Ok(match byte {
        0 => PositionEncoding::Uniform,
        1 => PositionEncoding::Manhattan,
        2 => PositionEncoding::DecayManhattan,
        3 => PositionEncoding::BlockDecayManhattan,
        4 => PositionEncoding::Random,
        other => {
            return Err(WireError::InvalidField {
                field: "position_encoding",
                message: format!("unknown variant {other}"),
            })
        }
    })
}

fn encode_color(encoding: ColorEncoding) -> u8 {
    match encoding {
        ColorEncoding::Manhattan => 0,
        ColorEncoding::Random => 1,
    }
}

fn decode_color(byte: u8) -> WireResult<ColorEncoding> {
    Ok(match byte {
        0 => ColorEncoding::Manhattan,
        1 => ColorEncoding::Random,
        other => {
            return Err(WireError::InvalidField {
                field: "color_encoding",
                message: format!("unknown variant {other}"),
            })
        }
    })
}

fn encode_metric(metric: DistanceMetric) -> u8 {
    match metric {
        DistanceMetric::Cosine => 0,
        DistanceMetric::Hamming => 1,
    }
}

fn decode_metric(byte: u8) -> WireResult<DistanceMetric> {
    Ok(match byte {
        0 => DistanceMetric::Cosine,
        1 => DistanceMetric::Hamming,
        other => {
            return Err(WireError::InvalidField {
                field: "distance_metric",
                message: format!("unknown variant {other}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(512)
            .beta(4)
            .iterations(3)
            .seed(42)
            .build()
            .unwrap()
    }

    fn sample_image() -> DynamicImage {
        let mut img = GrayImage::filled(6, 4, 10).unwrap();
        img.set(2, 2, 240).unwrap();
        DynamicImage::Gray(img)
    }

    #[test]
    fn requests_round_trip_for_every_mode() {
        let config = sample_config();
        let image = sample_image();
        for mode in [
            RequestMode::Auto,
            RequestMode::WholeImage,
            RequestMode::Tiled {
                tile_width: 16,
                tile_height: 16,
                halo: 2,
            },
        ] {
            let request = WireSegmentRequest::from_image(&config, &image, mode, 250);
            assert!(!request.progress, "progress streaming is opt-in");
            let decoded = WireSegmentRequest::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(decoded.config, config);
            assert_eq!(decoded.to_image().unwrap(), image);

            let opted = request.with_progress();
            let decoded = WireSegmentRequest::decode(&opted.encode()).unwrap();
            assert!(decoded.progress);
            assert_eq!(decoded, opted);
        }
    }

    #[test]
    fn rgb_requests_round_trip() {
        let mut rgb = RgbImage::new(3, 2).unwrap();
        rgb.set(1, 1, [200, 100, 50]).unwrap();
        let image = DynamicImage::Rgb(rgb);
        let request =
            WireSegmentRequest::from_image(&sample_config(), &image, RequestMode::Auto, 0);
        let decoded = WireSegmentRequest::decode(&request.encode()).unwrap();
        assert_eq!(decoded.channels, 3);
        assert_eq!(decoded.to_image().unwrap(), image);
    }

    #[test]
    fn consuming_image_conversion_matches_the_cloning_one() {
        let image = sample_image();
        let request =
            WireSegmentRequest::from_image(&sample_config(), &image, RequestMode::Auto, 0);
        assert_eq!(request.to_image().unwrap(), image);
        assert_eq!(request.into_dynamic_image().unwrap(), image);

        let mut degenerate =
            WireSegmentRequest::from_image(&sample_config(), &image, RequestMode::Auto, 0);
        degenerate.width = 0;
        degenerate.height = 0;
        degenerate.pixels.clear();
        assert!(matches!(
            degenerate.into_dynamic_image(),
            Err(WireError::InvalidField { field: "image", .. })
        ));
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let ok = WireSegmentResponse {
            queue_wait_us: 5,
            service_us: 10,
            body: ResponseBody::Labels {
                executed_tiled: false,
                width: 2,
                height: 1,
                labels: vec![1, 0],
                telemetry: WireTelemetry {
                    cache_hits: 1,
                    cache_misses: 0,
                    cache_entries: 1,
                    cache_bytes: 64,
                    peak_matrix_bytes: 32,
                    backend: "simd-cpu".to_string(),
                    kernel_isa: "scalar".to_string(),
                },
            },
        };
        let error = WireSegmentResponse::error(WireStatus::Busy, "full", 0);

        let mut buf = Vec::new();
        ok.encode_into(&mut buf);
        assert_eq!(buf, ok.encode());
        let capacity = buf.capacity();
        // A smaller follow-up response reuses the same allocation.
        error.encode_into(&mut buf);
        assert_eq!(buf, error.encode());
        assert_eq!(buf.capacity(), capacity);
    }

    #[test]
    fn snapshot_recording_never_crosses_the_wire() {
        let mut config = sample_config();
        config.record_snapshots = true;
        let request =
            WireSegmentRequest::from_image(&config, &sample_image(), RequestMode::Auto, 0);
        assert!(!request.config.record_snapshots);
    }

    #[test]
    fn wrong_version_is_refused() {
        let request =
            WireSegmentRequest::from_image(&sample_config(), &sample_image(), RequestMode::Auto, 0);
        let mut payload = request.encode();
        payload[0] = 9; // version low byte
        assert!(matches!(
            WireSegmentRequest::decode(&payload),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn zero_sized_images_decode_but_fail_image_reassembly() {
        let mut request =
            WireSegmentRequest::from_image(&sample_config(), &sample_image(), RequestMode::Auto, 0);
        request.width = 0;
        request.height = 0;
        request.pixels.clear();
        let decoded = WireSegmentRequest::decode(&request.encode()).unwrap();
        assert!(matches!(
            decoded.to_image(),
            Err(WireError::InvalidField { field: "image", .. })
        ));
    }

    #[test]
    fn short_pixel_buffers_are_truncation_errors() {
        let request =
            WireSegmentRequest::from_image(&sample_config(), &sample_image(), RequestMode::Auto, 0);
        let payload = request.encode();
        assert!(matches!(
            WireSegmentRequest::decode(&payload[..payload.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            WireSegmentRequest::decode(&long),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn ok_responses_round_trip() {
        let response = WireSegmentResponse {
            queue_wait_us: 1_250,
            service_us: 88_000,
            body: ResponseBody::Labels {
                executed_tiled: true,
                width: 3,
                height: 2,
                labels: vec![0, 1, 1, 0, 2, 2],
                telemetry: WireTelemetry {
                    cache_hits: 9,
                    cache_misses: 1,
                    cache_entries: 1,
                    cache_bytes: 123_456,
                    peak_matrix_bytes: 777,
                    backend: "simd-cpu".to_string(),
                    kernel_isa: "avx2".to_string(),
                },
            },
        };
        let decoded = WireSegmentResponse::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(decoded.status(), WireStatus::Ok);
        let map = decoded.label_map().unwrap();
        assert_eq!(map.as_raw(), &[0, 1, 1, 0, 2, 2]);
    }

    #[test]
    fn error_responses_round_trip_every_status() {
        for status in [
            WireStatus::Busy,
            WireStatus::DeadlineExceeded,
            WireStatus::Invalid,
            WireStatus::Internal,
        ] {
            let response = WireSegmentResponse::error(status, "queue full", 42);
            let decoded = WireSegmentResponse::decode(&response.encode()).unwrap();
            assert_eq!(decoded.status(), status);
            assert!(decoded.label_map().is_err());
            match decoded.body {
                ResponseBody::Error { message, .. } => assert_eq!(message, "queue full"),
                ResponseBody::Labels { .. } => panic!("expected an error body"),
            }
        }
    }

    #[test]
    fn stats_requests_round_trip_and_refuse_unknown_versions() {
        let request = WireStatsRequest;
        assert_eq!(
            WireStatsRequest::decode(&request.encode()).unwrap(),
            request
        );
        let mut payload = request.encode();
        payload[0] = 9;
        assert!(matches!(
            WireStatsRequest::decode(&payload),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut long = request.encode();
        long.push(0);
        assert!(matches!(
            WireStatsRequest::decode(&long),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn stats_responses_round_trip_with_shard_lists() {
        let response = WireStatsResponse {
            uptime_ms: 123_456,
            workers: 4,
            connection: WireConnectionStats {
                requests: 10,
                responses_ok: 9,
                responses_error: 1,
            },
            server: WireServerStats {
                admitted: 40,
                responses_ok: 36,
                responses_busy: 2,
                responses_deadline: 1,
                responses_invalid: 1,
                responses_internal: 0,
                queue_wait_us: 5_000,
                service_us: 90_000,
                fused_groups: 6,
                fused_requests: 20,
                fused_coalesced: 7,
                fusion_fallbacks: 1,
                cancelled_mid_run: 3,
            },
            cache: WireCacheStats {
                hits: 35,
                misses: 3,
                evictions: 1,
                entries: 2,
                bytes: 1 << 20,
                snapshot_loaded: 2,
            },
            shards: vec![
                WireShardStats {
                    routed: 30,
                    spilled: 2,
                    stolen: 4,
                    served: 28,
                    depth: 0,
                },
                WireShardStats::default(),
            ],
        };
        let decoded = WireStatsResponse::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);

        // An empty shard list survives too.
        let empty = WireStatsResponse {
            shards: Vec::new(),
            ..response
        };
        assert_eq!(WireStatsResponse::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn truncated_stats_responses_are_typed_errors() {
        let response = WireStatsResponse {
            uptime_ms: 1,
            workers: 1,
            connection: WireConnectionStats::default(),
            server: WireServerStats::default(),
            cache: WireCacheStats::default(),
            shards: vec![WireShardStats::default()],
        };
        let payload = response.encode();
        for len in 0..payload.len() {
            assert!(
                WireStatsResponse::decode(&payload[..len]).is_err(),
                "truncation to {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn stats_encode_into_reuses_the_buffer_and_matches_encode() {
        let response = WireStatsResponse {
            uptime_ms: 7,
            workers: 2,
            connection: WireConnectionStats::default(),
            server: WireServerStats::default(),
            cache: WireCacheStats::default(),
            shards: vec![WireShardStats::default(); 2],
        };
        let mut buf = vec![0u8; 512];
        let capacity = buf.capacity();
        response.encode_into(&mut buf);
        assert_eq!(buf, response.encode());
        assert_eq!(buf.capacity(), capacity, "the allocation must be reused");
    }

    #[test]
    fn progress_payloads_round_trip() {
        let progress = WireProgress {
            request_id: 42,
            rows_done: 3,
            rows_total: 8,
            elapsed_us: 1_234_567,
        };
        let decoded = WireProgress::decode(&progress.encode()).unwrap();
        assert_eq!(decoded, progress);

        let mut buf = Vec::new();
        progress.encode_into(&mut buf);
        assert_eq!(buf, progress.encode());

        let mut payload = progress.encode();
        payload[0] = 9;
        assert!(matches!(
            WireProgress::decode(&payload),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn unknown_enum_bytes_are_typed_errors() {
        let request =
            WireSegmentRequest::from_image(&sample_config(), &sample_image(), RequestMode::Auto, 0);
        let base = request.encode();
        // position_encoding is at a fixed offset:
        // version(2) deadline(4) seed(8) dim(4) clusters(2) iters(2)
        // alpha(8) beta(4) gamma(4) = 38.
        let mut bad = base.clone();
        bad[38] = 99;
        assert!(matches!(
            WireSegmentRequest::decode(&bad),
            Err(WireError::InvalidField {
                field: "position_encoding",
                ..
            })
        ));
        let mut bad = base.clone();
        bad[39] = 99;
        assert!(matches!(
            WireSegmentRequest::decode(&bad),
            Err(WireError::InvalidField {
                field: "color_encoding",
                ..
            })
        ));
        let mut bad = base;
        bad[40] = 99;
        assert!(matches!(
            WireSegmentRequest::decode(&bad),
            Err(WireError::InvalidField {
                field: "distance_metric",
                ..
            })
        ));
    }
}
