//! Sharded admission: per-worker queues, consistent hashing, work stealing.
//!
//! The single global [`AdmissionQueue`] gave every worker an equal shot at
//! every job, so a burst of same-[`CodebookKey`]
//! requests could land on whichever workers woke first — each paying its
//! own cold codebook path even though the cache is shared. Sharding pins
//! same-shape traffic to one worker instead:
//!
//! * **Routing.** Every job carries a deterministic FNV-1a hash of its
//!   codebook key ([`key_hash`]); a [`HashRing`] of virtual nodes maps the
//!   hash to a *home shard*. Same key → same shard, every time, on every
//!   platform (no `RandomState`, no per-process seeds), so the worker that
//!   built a codebook is the worker that keeps serving it.
//! * **Spill.** A full home shard does not mean the server is full: the
//!   job spills to the least-loaded other shard, and only when *every*
//!   shard is at capacity does admission answer `Busy`. With one shard the
//!   behaviour degenerates to exactly the old global queue.
//! * **Stealing.** A worker whose own shard is empty steals a group from
//!   the deepest other shard, so a skewed key distribution cannot idle
//!   half the pool while one shard backs up.
//!
//! Each shard keeps four monotone counters — `routed`, `spilled`,
//! `stolen`, `served` — surfaced through the `STATS` frame so routing
//! behaviour is observable from outside (the loopback suite asserts a
//! same-key burst routes to exactly one shard).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use seghdc::CodebookKey;

use crate::queue::{AdmissionQueue, PushError};

/// FNV-1a 64 offset basis (shared with the frame and snapshot checksums).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A deterministic, platform-stable hash of a codebook key.
///
/// `std`'s `Hash` + `RandomState` is seeded per process, which would move
/// every key to a different shard on every restart — exactly what a
/// warm-started cache cannot afford. FNV-1a over the key's canonical
/// little-endian field encoding gives the same shard assignment on every
/// run and every platform.
pub fn key_hash(key: &CodebookKey) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = fnv_bytes(hash, &key.seed.to_le_bytes());
    hash = fnv_bytes(hash, &(key.dimension as u64).to_le_bytes());
    hash = fnv_bytes(hash, &(key.width as u64).to_le_bytes());
    hash = fnv_bytes(hash, &(key.height as u64).to_le_bytes());
    hash = fnv_bytes(hash, &(key.channels as u64).to_le_bytes());
    hash = fnv_bytes(hash, &key.alpha_bits.to_le_bytes());
    hash = fnv_bytes(hash, &(key.beta as u64).to_le_bytes());
    hash = fnv_bytes(hash, &(key.gamma as u64).to_le_bytes());
    hash = fnv_bytes(
        hash,
        &[key.position_encoding as u8, key.color_encoding as u8],
    );
    hash
}

/// Virtual nodes placed on the ring per shard. Enough to spread keys
/// evenly across small shard counts; cheap to binary-search.
const VIRTUAL_NODES: usize = 32;

/// A consistent-hash ring over `shards` shards.
///
/// Each shard owns `VIRTUAL_NODES` (32) deterministic points on a `u64`
/// ring; a key hashes to the first point at or after it (wrapping). The
/// assignment depends only on the shard count, so a fleet scheduler can
/// predict where a key lands from the server config alone.
#[derive(Debug)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VIRTUAL_NODES);
        for shard in 0..shards {
            for vnode in 0..VIRTUAL_NODES {
                let mut hash = FNV_OFFSET;
                hash = fnv_bytes(hash, &(shard as u64).to_le_bytes());
                hash = fnv_bytes(hash, &(vnode as u64).to_le_bytes());
                points.push((hash, shard));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// The shard owning `hash`.
    pub fn shard_for(&self, hash: u64) -> usize {
        let index = self.points.partition_point(|&(point, _)| point < hash);
        self.points[index % self.points.len()].1
    }
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Jobs admitted to this shard because it was their home.
    pub routed: u64,
    /// Jobs admitted to this shard because their home shard was full.
    pub spilled: u64,
    /// Jobs dequeued from this shard by a *different* worker (steals).
    pub stolen: u64,
    /// Jobs dequeued from this shard by its own worker.
    pub served: u64,
    /// Jobs currently queued on this shard.
    pub depth: u64,
}

struct Shard<T> {
    queue: AdmissionQueue<T>,
    routed: AtomicU64,
    spilled: AtomicU64,
    stolen: AtomicU64,
    served: AtomicU64,
}

/// Per-worker admission queues behind one consistent-hash front door.
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    ring: HashRing,
}

impl<T> ShardedQueue<T> {
    /// `shards` queues of `depth_per_shard` jobs each.
    pub fn new(shards: usize, depth_per_shard: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    queue: AdmissionQueue::new(depth_per_shard),
                    routed: AtomicU64::new(0),
                    spilled: AtomicU64::new(0),
                    stolen: AtomicU64::new(0),
                    served: AtomicU64::new(0),
                })
                .collect(),
            ring: HashRing::new(shards),
        }
    }

    /// How many shards (== workers) this queue fans out over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard for a key hash (exposed for tests and telemetry).
    pub fn home_shard(&self, hash: u64) -> usize {
        self.ring.shard_for(hash)
    }

    /// Admits a job to its home shard, spilling to the least-loaded other
    /// shard when the home is full. Returns the shard that accepted it.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] only when **every** shard is at capacity;
    /// [`PushError::ShutDown`] after [`shutdown`](Self::shutdown). Both
    /// hand the job back.
    pub fn try_push(&self, job: T, hash: u64) -> Result<usize, PushError<T>> {
        let home = self.ring.shard_for(hash);
        let mut job = match self.shards[home].queue.try_push(job) {
            Ok(()) => {
                self.shards[home].routed.fetch_add(1, Ordering::Relaxed);
                return Ok(home);
            }
            Err(PushError::ShutDown(job)) => return Err(PushError::ShutDown(job)),
            Err(PushError::Full(job)) => job,
        };
        // Home full: offer the job to every other shard, emptiest first.
        let mut others: Vec<usize> = (0..self.shards.len()).filter(|&s| s != home).collect();
        others.sort_by_key(|&s| self.shards[s].queue.len());
        for shard in others {
            job = match self.shards[shard].queue.try_push(job) {
                Ok(()) => {
                    self.shards[shard].spilled.fetch_add(1, Ordering::Relaxed);
                    return Ok(shard);
                }
                Err(PushError::ShutDown(job)) => return Err(PushError::ShutDown(job)),
                Err(PushError::Full(job)) => job,
            };
        }
        Err(PushError::Full(job))
    }

    /// Worker-side dequeue: a group from the worker's own shard if it has
    /// one, else a group stolen from the deepest other shard, else a short
    /// park and retry. Returns `None` once the queue is shut down and every
    /// shard has drained (admitted jobs still get real responses).
    pub fn pop_group_for<F>(&self, worker: usize, max_group: usize, same_group: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        let own = worker % self.shards.len();
        loop {
            if let Some(group) = self.shards[own].queue.try_pop_group(max_group, &same_group) {
                self.shards[own]
                    .served
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                return Some(group);
            }
            // Steal from the deepest other shard so a skewed key mix
            // cannot idle this worker while another shard backs up.
            let victim = (0..self.shards.len())
                .filter(|&s| s != own)
                .max_by_key(|&s| self.shards[s].queue.len())
                .filter(|&s| !self.shards[s].queue.is_empty());
            if let Some(victim) = victim {
                if let Some(group) = self.shards[victim]
                    .queue
                    .try_pop_group(max_group, &same_group)
                {
                    self.shards[victim]
                        .stolen
                        .fetch_add(group.len() as u64, Ordering::Relaxed);
                    return Some(group);
                }
            }
            if self.shards[own].queue.is_shut_down() && self.total_len() == 0 {
                return None;
            }
            // Park on the home shard; pushes there wake us immediately and
            // the timeout bounds how stale a steal opportunity can get.
            self.shards[own]
                .queue
                .wait_for_job(Duration::from_millis(2));
        }
    }

    /// Grows an already-popped `group` with fusible jobs from the worker's
    /// **own** shard, without blocking. Returns how many jobs were added.
    ///
    /// Only the home shard is polled: consistent hashing routes same-key
    /// traffic there, so that is where a late fusible job will land; raiding
    /// other shards from inside a batching window would race their owners.
    pub fn try_extend_group_for<F>(
        &self,
        worker: usize,
        group: &mut Vec<T>,
        max_group: usize,
        same_group: F,
    ) -> usize
    where
        F: Fn(&T, &T) -> bool,
    {
        let own = worker % self.shards.len();
        let added = self.shards[own]
            .queue
            .try_extend_group(group, max_group, same_group);
        if added > 0 {
            self.shards[own]
                .served
                .fetch_add(added as u64, Ordering::Relaxed);
        }
        added
    }

    /// Shuts every shard down and wakes every parked worker.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.queue.shutdown();
        }
    }

    /// Jobs currently queued across all shards.
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(|shard| shard.queue.len()).sum()
    }

    /// A counter snapshot per shard, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| ShardStats {
                routed: shard.routed.load(Ordering::Relaxed),
                spilled: shard.spilled.load(Ordering::Relaxed),
                stolen: shard.stolen.load(Ordering::Relaxed),
                served: shard.served.load(Ordering::Relaxed),
                depth: shard.queue.len() as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seghdc::SegHdcConfig;

    fn sample_key(seed: u64, edge: usize) -> CodebookKey {
        let config = SegHdcConfig::builder()
            .dimension(256)
            .beta(2)
            .seed(seed)
            .build()
            .unwrap();
        CodebookKey::for_shape(&config, edge, edge, 1)
    }

    #[test]
    fn key_hashes_are_deterministic_and_shape_sensitive() {
        assert_eq!(key_hash(&sample_key(1, 32)), key_hash(&sample_key(1, 32)));
        assert_ne!(key_hash(&sample_key(1, 32)), key_hash(&sample_key(2, 32)));
        assert_ne!(key_hash(&sample_key(1, 32)), key_hash(&sample_key(1, 48)));
    }

    #[test]
    fn the_ring_spreads_keys_across_shards() {
        let ring = HashRing::new(4);
        let mut hit = [0usize; 4];
        for seed in 0..64 {
            hit[ring.shard_for(key_hash(&sample_key(seed, 32)))] += 1;
        }
        // Every shard owns some keys; no shard owns almost all of them.
        assert!(hit.iter().all(|&count| count > 0), "ownership: {hit:?}");
        assert!(hit.iter().all(|&count| count < 48), "ownership: {hit:?}");
    }

    #[test]
    fn same_hash_always_routes_to_the_same_shard() {
        let queue = ShardedQueue::new(4, 16);
        let hash = key_hash(&sample_key(9, 32));
        let home = queue.home_shard(hash);
        for n in 0..8 {
            assert_eq!(queue.try_push(n, hash).unwrap(), home);
        }
        let stats = queue.stats();
        assert_eq!(stats[home].routed, 8);
        assert_eq!(stats.iter().map(|s| s.spilled).sum::<u64>(), 0);
    }

    #[test]
    fn a_full_home_shard_spills_and_a_full_queue_refuses() {
        let queue = ShardedQueue::new(2, 1);
        let hash = key_hash(&sample_key(3, 32));
        let home = queue.home_shard(hash);
        assert_eq!(queue.try_push(1u32, hash).unwrap(), home);
        let spill = queue.try_push(2, hash).unwrap();
        assert_ne!(spill, home);
        assert_eq!(queue.stats()[spill].spilled, 1);
        assert!(matches!(queue.try_push(3, hash), Err(PushError::Full(3))));
    }

    #[test]
    fn workers_steal_from_other_shards() {
        let queue = ShardedQueue::new(2, 8);
        let hash = key_hash(&sample_key(5, 32));
        let home = queue.home_shard(hash);
        queue.try_push(1u32, hash).unwrap();
        // The *other* worker finds its own shard empty and steals.
        let thief = 1 - home;
        let group = queue.pop_group_for(thief, 4, |_, _| true).unwrap();
        assert_eq!(group, vec![1]);
        let stats = queue.stats();
        assert_eq!(stats[home].stolen, 1);
        assert_eq!(stats[home].served, 0);
    }

    #[test]
    fn extend_polls_only_the_workers_own_shard() {
        let queue = ShardedQueue::new(2, 8);
        let hash = key_hash(&sample_key(5, 32));
        let home = queue.home_shard(hash);
        queue.try_push(10u32, hash).unwrap();
        let mut group = queue.pop_group_for(home, 1, |_, _| true).unwrap();
        assert_eq!(group, vec![10]);
        // A late same-key arrival on the home shard joins the group...
        queue.try_push(11, hash).unwrap();
        assert_eq!(
            queue.try_extend_group_for(home, &mut group, 4, |_, _| true),
            1
        );
        assert_eq!(group, vec![10, 11]);
        // ...but a job on another shard is left for its own worker.
        queue.try_push(12, hash).unwrap();
        let other = 1 - home;
        assert_eq!(
            queue.try_extend_group_for(other, &mut group, 8, |_, _| true),
            0
        );
        assert_eq!(group, vec![10, 11]);
        assert_eq!(queue.stats()[home].served, 2);
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_returns_none() {
        let queue = ShardedQueue::new(2, 8);
        let hash = key_hash(&sample_key(7, 32));
        let home = queue.home_shard(hash);
        queue.try_push(1u32, hash).unwrap();
        queue.shutdown();
        assert!(matches!(
            queue.try_push(2, hash),
            Err(PushError::ShutDown(2))
        ));
        assert_eq!(queue.pop_group_for(home, 4, |_, _| true), Some(vec![1]));
        assert_eq!(queue.pop_group_for(home, 4, |_, _| true), None);
    }
}
