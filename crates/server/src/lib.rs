//! # seghdc-server — a framed service front-end for the SegHDC engine
//!
//! Turns the long-lived [`SegEngine`](seghdc::SegEngine) into a network
//! service with production-shaped semantics:
//!
//! * **A versioned, length-prefixed wire protocol** ([`wire`],
//!   [`protocol`]): magic bytes, a frame-size cap enforced *before*
//!   allocation, an FNV-1a checksum, and little-endian typed payloads —
//!   hand-rolled because the workspace vendors its dependencies.
//! * **Bounded admission with explicit backpressure** ([`queue`],
//!   [`shard`]): admission is sharded per worker with consistent hashing
//!   on the [`CodebookKey`](seghdc::CodebookKey), spilling and stealing
//!   between shards; only when every shard is full does a request get
//!   [`WireStatus::Busy`] instead of queuing without bound.
//! * **Per-request deadlines** ([`server`]): expired jobs are answered
//!   [`WireStatus::DeadlineExceeded`] without touching the engine, with a
//!   connection-side safety net for stalled workers.
//! * **Cache-aware scheduling**: same-shape traffic is pinned to the
//!   worker whose cache path is warm, and workers dequeue groups of
//!   requests with the same codebook key, so same-shape bursts pay one
//!   codebook build.
//! * **Fused batch execution** ([`ServerConfig::fuse_groups`]): a
//!   dequeued group sharing a configuration, mode, and shape runs as one
//!   engine batch, with byte-identical payloads coalesced onto a single
//!   image and label maps scattered back to each originating connection;
//!   [`ServerConfig::fuse_window`] optionally holds a partial group open
//!   for late fusible arrivals.
//! * **Warm starts** ([`ServerConfig::codebook_snapshot`],
//!   [`ServerHandle::save_snapshot`]): the shared codebook cache persists
//!   to the versioned, checksummed [`seghdc::snapshot`] format and
//!   preloads before the listener accepts.
//! * **Observability** ([`SegClient::stats`]): a `STATS` frame reports
//!   uptime plus per-connection, server-wide, cache and per-shard
//!   counters.
//! * **Panic containment**: a panicking execution answers
//!   [`WireStatus::Internal`] and the engine's poison-recovering shared
//!   state (codebook cache, arena pool) keeps serving.
//!
//! Every successful response carries the engine's telemetry envelope
//! (cache hits/misses, arena high-water mark, backend and kernel ISA), so
//! a fleet scheduler can observe cache behaviour from outside.
//!
//! ## Example
//!
//! ```no_run
//! use imaging::{DynamicImage, GrayImage};
//! use seghdc::SegHdcConfig;
//! use seghdc_server::{serve, RequestMode, SegClient, ServerConfig, WireSegmentRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = serve("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = SegClient::connect(handle.local_addr())?;
//!
//! let image = DynamicImage::Gray(GrayImage::filled(64, 64, 128)?);
//! let config = SegHdcConfig::builder().dimension(1024).build()?;
//! let request = WireSegmentRequest::from_image(&config, &image, RequestMode::Auto, 500);
//! let response = client.segment(&request)?;
//! let labels = response.label_map()?;
//! println!("{}x{} labels", labels.width(), labels.height());
//!
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;
pub mod wire;

mod error;

pub use client::SegClient;
pub use error::ServerError;
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use protocol::{
    RequestMode, ResponseBody, WireCacheStats, WireConnectionStats, WireProgress,
    WireSegmentRequest, WireSegmentResponse, WireServerStats, WireShardStats, WireStatsRequest,
    WireStatsResponse, WireStatus, WireTelemetry, PROTOCOL_VERSION,
};
pub use queue::{AdmissionQueue, PushError};
pub use server::{serve, ServerConfig, ServerHandle};
pub use shard::{key_hash, HashRing, ShardStats, ShardedQueue};
pub use wire::{WireError, WireResult, DEFAULT_MAX_FRAME_BYTES};
