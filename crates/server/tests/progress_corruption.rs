//! Hardening tests for the `FRAME_PROGRESS` payload decoder: corrupt
//! input of every kind must map to a typed [`WireError`] — never a panic
//! — and any payload the decoder accepts must re-encode byte-identically
//! (the payload is pure fixed-width fields, so decode∘encode is identity).

use proptest::prelude::*;
use seghdc_server::{WireError, WireProgress, PROTOCOL_VERSION};

/// One representative progress payload.
fn sample() -> WireProgress {
    WireProgress {
        request_id: 7,
        rows_done: 3,
        rows_total: 12,
        elapsed_us: 48_213,
    }
}

#[test]
fn the_sample_round_trips_and_encode_into_matches_encode() {
    let progress = sample();
    let bytes = progress.encode();
    assert_eq!(WireProgress::decode(&bytes).unwrap(), progress);

    let mut buf = vec![0xFFu8; 64];
    progress.encode_into(&mut buf);
    assert_eq!(buf, bytes);
}

#[test]
fn wrong_version_is_refused_with_the_declared_version() {
    let mut bytes = sample().encode();
    bytes[0] = 0x2a;
    bytes[1] = 0x00;
    match WireProgress::decode(&bytes) {
        Err(WireError::UnsupportedVersion(version)) => assert_eq!(version, 0x2a),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn every_truncation_length_is_a_typed_error() {
    let bytes = sample().encode();
    for len in 0..bytes.len() {
        match WireProgress::decode(&bytes[..len]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("truncation to {len} bytes: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn trailing_bytes_are_rejected_with_their_count() {
    let mut bytes = sample().encode();
    bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    match WireProgress::decode(&bytes) {
        Err(WireError::TrailingBytes(3)) => {}
        other => panic!("expected TrailingBytes(3), got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every field combination round-trips exactly, and the pooled-buffer
    /// encoder produces the same bytes as the allocating one.
    #[test]
    fn arbitrary_payloads_round_trip(
        request_id in any::<u64>(),
        rows_done in any::<u32>(),
        rows_total in any::<u32>(),
        elapsed_us in any::<u64>(),
    ) {
        let progress = WireProgress { request_id, rows_done, rows_total, elapsed_us };
        let bytes = progress.encode();
        prop_assert_eq!(WireProgress::decode(&bytes).unwrap(), progress);
        let mut buf = Vec::new();
        progress.encode_into(&mut buf);
        prop_assert_eq!(buf, bytes);
    }

    /// Any single flipped bit decodes to a typed error or a well-formed
    /// payload that re-encodes byte-identically — never a panic, never a
    /// silent reinterpretation.
    #[test]
    fn random_single_bit_flips_never_panic(offset_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = sample().encode();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= 1 << bit;
        match WireProgress::decode(&bytes) {
            Ok(decoded) => prop_assert_eq!(decoded.encode(), bytes),
            Err(WireError::UnsupportedVersion(version)) => {
                prop_assert!(offset < 2, "only version-byte flips may fire the version check");
                prop_assert_ne!(version, PROTOCOL_VERSION);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Arbitrary random byte strings never panic; anything accepted must
    /// carry the exact payload length and re-encode identically.
    #[test]
    fn random_byte_strings_never_panic(len in 0usize..64, seed in any::<u64>()) {
        // xorshift64* keeps the generator dependency-free.
        let mut state = seed | 1;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8);
        }
        if let Ok(decoded) = WireProgress::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }
}
