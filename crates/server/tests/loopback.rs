//! End-to-end loopback tests: a real listener, real sockets, real workers.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use imaging::{DynamicImage, GrayImage};
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use seghdc_server::{
    serve, RequestMode, ResponseBody, SegClient, ServerConfig, ServerError, WireProgress,
    WireSegmentRequest, WireStatus,
};

fn test_config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(512)
        .beta(4)
        .iterations(3)
        .seed(seed)
        .build()
        .unwrap()
}

fn gradient_image(width: usize, height: usize) -> DynamicImage {
    let mut img = GrayImage::new(width, height).unwrap();
    for y in 0..height {
        for x in 0..width {
            img.set(x, y, (((x + y) * 255) / (width + height - 1)) as u8)
                .unwrap();
        }
    }
    DynamicImage::Gray(img)
}

/// A config whose whole-image run takes long enough to occupy a worker
/// while other requests pile up behind it.
fn slow_config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(4096)
        .beta(4)
        .iterations(10)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn served_labels_are_byte_identical_to_a_direct_engine_run() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    let config = test_config(7);
    let image = gradient_image(48, 32);
    let request = WireSegmentRequest::from_image(&config, &image, RequestMode::Auto, 0);
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Ok);
    let served = response.label_map().unwrap();

    let engine = SegEngine::new(config).unwrap();
    let direct = engine.run(&SegmentRequest::image(&image)).unwrap();
    assert_eq!(served.as_raw(), direct.single().label_map.as_raw());

    // The telemetry envelope travels with the labels.
    match &response.body {
        ResponseBody::Labels { telemetry, .. } => {
            assert_eq!(telemetry.cache_misses, 1);
            assert!(!telemetry.kernel_isa.is_empty());
            assert!(!telemetry.backend.is_empty());
        }
        ResponseBody::Error { .. } => panic!("expected labels"),
    }
    handle.shutdown();
}

#[test]
fn forced_modes_round_trip_through_the_server() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();
    let config = test_config(11);
    let image = gradient_image(64, 48);

    let whole = client
        .segment(&WireSegmentRequest::from_image(
            &config,
            &image,
            RequestMode::WholeImage,
            0,
        ))
        .unwrap();
    let tiled = client
        .segment(&WireSegmentRequest::from_image(
            &config,
            &image,
            RequestMode::Tiled {
                tile_width: 32,
                tile_height: 32,
                halo: 4,
            },
            0,
        ))
        .unwrap();
    match (&whole.body, &tiled.body) {
        (
            ResponseBody::Labels {
                executed_tiled: whole_tiled,
                ..
            },
            ResponseBody::Labels {
                executed_tiled: tiled_tiled,
                ..
            },
        ) => {
            assert!(!whole_tiled);
            assert!(tiled_tiled);
        }
        _ => panic!("expected labels from both modes"),
    }
    handle.shutdown();
}

#[test]
fn oversized_frames_get_an_invalid_frame_then_eof() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            max_frame_bytes: 4096,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The client's own cap must be larger, or it would refuse to send.
    let mut client = SegClient::connect(handle.local_addr())
        .unwrap()
        .max_frame_bytes(64 << 20);

    let request = WireSegmentRequest::from_image(
        &test_config(3),
        &gradient_image(128, 128),
        RequestMode::Auto,
        0,
    );
    assert!(request.encode().len() > 4096);
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Invalid);

    // The server hangs up after a framing violation: the next exchange
    // fails instead of hanging.
    let small = WireSegmentRequest::from_image(
        &test_config(3),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert!(client.segment(&small).is_err());
    handle.shutdown();
}

#[test]
fn zero_sized_images_are_refused_with_an_invalid_frame() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    let mut request = WireSegmentRequest::from_image(
        &test_config(5),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    request.width = 0;
    request.height = 0;
    request.pixels.clear();
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Invalid);

    // The connection survives a well-framed but invalid request.
    let good = WireSegmentRequest::from_image(
        &test_config(5),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&good).unwrap().status(), WireStatus::Ok);
    handle.shutdown();
}

#[test]
fn expired_deadlines_are_answered_with_deadline_exceeded() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Occupy the single worker with a slow request.
    let slow = std::thread::spawn(move || {
        let mut client = SegClient::connect(addr).unwrap();
        let request = WireSegmentRequest::from_image(
            &slow_config(1),
            &gradient_image(96, 96),
            RequestMode::WholeImage,
            30_000,
        );
        client.segment(&request).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    // This request's 1 ms deadline expires while it waits in the queue.
    let mut client = SegClient::connect(addr).unwrap();
    let doomed = WireSegmentRequest::from_image(
        &test_config(2),
        &gradient_image(16, 16),
        RequestMode::Auto,
        1,
    );
    let response = client.segment(&doomed).unwrap();
    assert_eq!(response.status(), WireStatus::DeadlineExceeded);

    assert_eq!(slow.join().unwrap().status(), WireStatus::Ok);
    handle.shutdown();
}

#[test]
fn a_full_admission_queue_answers_busy() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // First slow request occupies the worker; second fills the queue.
    let occupants: Vec<_> = (0..2)
        .map(|n| {
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).unwrap();
                let request = WireSegmentRequest::from_image(
                    &slow_config(n),
                    &gradient_image(96, 96),
                    RequestMode::WholeImage,
                    60_000,
                );
                client.segment(&request).unwrap()
            })
        })
        .inspect(|_| {
            // Stagger admissions so the worker has claimed the first
            // before the second arrives.
            std::thread::sleep(Duration::from_millis(200));
        })
        .collect();

    let mut client = SegClient::connect(addr).unwrap();
    let rejected = WireSegmentRequest::from_image(
        &test_config(9),
        &gradient_image(16, 16),
        RequestMode::Auto,
        60_000,
    );
    let response = client.segment(&rejected).unwrap();
    assert_eq!(response.status(), WireStatus::Busy);
    assert_eq!(response.service_us, 0);

    for occupant in occupants {
        let status = occupant.join().unwrap().status();
        assert!(
            status == WireStatus::Ok || status == WireStatus::DeadlineExceeded,
            "occupant ended as {status:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn concurrent_same_codebook_clients_share_one_cache_miss() {
    // Fusion off: this test pins down the *serial* path's per-request
    // cache telemetry. The four requests carry identical pixels, so the
    // fused path would coalesce them into one engine run and the cache
    // would never be consulted four times.
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            fuse_groups: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).unwrap();
                let request = WireSegmentRequest::from_image(
                    &test_config(21),
                    &gradient_image(40, 40),
                    RequestMode::Auto,
                    0,
                );
                client.segment(&request).unwrap()
            })
        })
        .collect();

    let mut max_hits = 0u64;
    for client in clients {
        let response = client.join().unwrap();
        match response.body {
            ResponseBody::Labels { telemetry, .. } => {
                // The per-key build lock guarantees one build no matter
                // how the four runs interleave.
                assert_eq!(telemetry.cache_misses, 1);
                max_hits = max_hits.max(telemetry.cache_hits);
            }
            ResponseBody::Error { status, message } => {
                panic!("expected labels, got {status:?}: {message}")
            }
        }
    }
    // The last run to finish observed the other three as hits.
    assert_eq!(max_hits, 3);
    handle.shutdown();
}

/// A scratch directory under the system tempdir, removed on drop even if
/// the test panics.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("seghdc-loopback-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_snapshot_warm_started_server_serves_identical_labels_without_a_miss() {
    let dir = TempDir::new("warm");
    let path = dir.path("codebooks.sgsn");

    let config = test_config(31);
    let image = gradient_image(40, 28);
    let request = WireSegmentRequest::from_image(&config, &image, RequestMode::Auto, 0);

    // Cold server: serve once (one miss), then persist its cache.
    let cold = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(cold.local_addr()).unwrap();
    let cold_response = client.segment(&request).unwrap();
    assert_eq!(cold_response.status(), WireStatus::Ok);
    let cold_labels = cold_response.label_map().unwrap();
    assert_eq!(cold.save_snapshot(&path).unwrap(), 1);
    cold.shutdown();

    // Warm server: byte-identical labels, zero cache misses.
    let warm = serve(
        "127.0.0.1:0",
        ServerConfig {
            codebook_snapshot: Some(path),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = SegClient::connect(warm.local_addr()).unwrap();
    let warm_response = client.segment(&request).unwrap();
    assert_eq!(warm_response.status(), WireStatus::Ok);
    assert_eq!(
        warm_response.label_map().unwrap().as_raw(),
        cold_labels.as_raw()
    );
    match &warm_response.body {
        ResponseBody::Labels { telemetry, .. } => {
            assert_eq!(telemetry.cache_misses, 0, "warm start must not rebuild");
            assert!(telemetry.cache_hits >= 1);
        }
        ResponseBody::Error { status, message } => {
            panic!("expected labels, got {status:?}: {message}")
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.snapshot_loaded, 1);
    assert_eq!(stats.cache.misses, 0);
    warm.shutdown();
}

#[test]
fn a_corrupt_snapshot_refuses_to_start_but_a_missing_one_is_a_cold_start() {
    let dir = TempDir::new("corrupt");

    // Corrupt file: the server must refuse to start rather than silently
    // serve cold from a file the operator believes is warm.
    let corrupt = dir.path("corrupt.sgsn");
    std::fs::write(&corrupt, b"not a snapshot at all").unwrap();
    let err = serve(
        "127.0.0.1:0",
        ServerConfig {
            codebook_snapshot: Some(corrupt),
            ..ServerConfig::default()
        },
    )
    .err()
    .expect("a corrupt snapshot must refuse to start");
    assert!(matches!(err, ServerError::Snapshot(_)), "got {err:?}");

    // Missing file: a normal first-boot cold start.
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            codebook_snapshot: Some(dir.path("never-written.sgsn")),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();
    let request = WireSegmentRequest::from_image(
        &test_config(32),
        &gradient_image(16, 16),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&request).unwrap().status(), WireStatus::Ok);
    assert_eq!(client.stats().unwrap().cache.snapshot_loaded, 0);
    handle.shutdown();
}

#[test]
fn a_same_key_burst_routes_to_one_shard_with_one_cache_miss() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Eight same-shape requests over four connections: one codebook key.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).unwrap();
                let request = WireSegmentRequest::from_image(
                    &test_config(77),
                    &gradient_image(36, 36),
                    RequestMode::Auto,
                    0,
                );
                for _ in 0..2 {
                    assert_eq!(client.segment(&request).unwrap().status(), WireStatus::Ok);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let mut observer = SegClient::connect(addr).unwrap();
    let stats = observer.stats().unwrap();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.shards.len(), 4);

    // Consistent hashing pins every admission to the key's home shard.
    let routed: Vec<u64> = stats.shards.iter().map(|shard| shard.routed).collect();
    assert_eq!(routed.iter().sum::<u64>(), 8, "routing: {routed:?}");
    assert_eq!(
        routed.iter().filter(|&&count| count > 0).count(),
        1,
        "a same-key burst must land on exactly one shard: {routed:?}"
    );
    assert_eq!(stats.shards.iter().map(|s| s.spilled).sum::<u64>(), 0);
    // One burst, one codebook build.
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.server.admitted, 8);
    assert_eq!(stats.server.responses_ok, 8);
    // This observer connection has not sent any segmentation request.
    assert_eq!(stats.connection.requests, 0);
    handle.shutdown();
}

#[test]
fn a_mixed_burst_is_fused_with_byte_identical_labels_per_connection() {
    let fused = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            fuse_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let serial = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            fuse_groups: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let fused_addr = fused.local_addr();

    // Occupy the fused server's single worker so the burst queues behind
    // it and dequeues as whole groups.
    let occupy = std::thread::spawn(move || {
        let mut client = SegClient::connect(fused_addr).unwrap();
        let request = WireSegmentRequest::from_image(
            &slow_config(50),
            &gradient_image(96, 96),
            RequestMode::WholeImage,
            60_000,
        );
        client.segment(&request).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    // Mixed shapes (two codebook keys) with connection-distinct pixels,
    // so a label map scattered to the wrong connection cannot pass.
    let shapes = [
        (24usize, 24usize),
        (24, 24),
        (24, 24),
        (32, 32),
        (32, 32),
        (24, 24),
    ];
    let burst: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(n, &(w, h))| {
            std::thread::spawn(move || {
                let mut image = GrayImage::new(w, h).unwrap();
                for y in 0..h {
                    for x in 0..w {
                        image
                            .set(x, y, ((x * 3 + y * 5 + n * 37) % 256) as u8)
                            .unwrap();
                    }
                }
                let image = DynamicImage::Gray(image);
                let request = WireSegmentRequest::from_image(
                    &test_config(50),
                    &image,
                    RequestMode::WholeImage,
                    60_000,
                );
                let mut client = SegClient::connect(fused_addr).unwrap();
                let response = client.segment(&request).unwrap();
                (image, response)
            })
        })
        .collect();

    let mut serial_client = SegClient::connect(serial.local_addr()).unwrap();
    for worker in burst {
        let (image, response) = worker.join().unwrap();
        assert_eq!(response.status(), WireStatus::Ok);
        // Byte-identical to the serial (fusion-off) execution of the
        // exact same request.
        let request = WireSegmentRequest::from_image(
            &test_config(50),
            &image,
            RequestMode::WholeImage,
            60_000,
        );
        let serial_response = serial_client.segment(&request).unwrap();
        assert_eq!(serial_response.status(), WireStatus::Ok);
        assert_eq!(
            response.label_map().unwrap().as_raw(),
            serial_response.label_map().unwrap().as_raw()
        );
    }
    assert_eq!(occupy.join().unwrap().status(), WireStatus::Ok);

    let mut observer = SegClient::connect(fused_addr).unwrap();
    let stats = observer.stats().unwrap();
    // The queued burst dequeued as groups; at least one multi-request
    // group ran fused (exact counts depend on timing).
    assert!(
        stats.server.fused_groups >= 1 && stats.server.fused_requests >= 2,
        "expected fused execution, got {:?}",
        stats.server
    );
    assert_eq!(stats.server.fusion_fallbacks, 0);
    fused.shutdown();
    serial.shutdown();
}

#[test]
fn stats_frames_report_connection_and_server_counters() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    let good = WireSegmentRequest::from_image(
        &test_config(41),
        &gradient_image(16, 16),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&good).unwrap().status(), WireStatus::Ok);

    let mut bad = good.clone();
    bad.width = 0;
    bad.height = 0;
    bad.pixels.clear();
    assert_eq!(client.segment(&bad).unwrap().status(), WireStatus::Invalid);

    let stats = client.stats().unwrap();
    assert_eq!(stats.connection.requests, 2);
    assert_eq!(stats.connection.responses_ok, 1);
    assert_eq!(stats.connection.responses_error, 1);
    assert_eq!(stats.server.responses_ok, 1);
    assert_eq!(stats.server.responses_invalid, 1);
    assert!(stats.server.service_us > 0);
    assert_eq!(stats.workers as usize, stats.shards.len());

    // The served group shows up in exactly the shard counters.
    let served: u64 = stats.shards.iter().map(|s| s.served + s.stolen).sum();
    assert_eq!(served, 2);
    handle.shutdown();
}

#[test]
fn a_long_tiled_job_streams_progress_frames_before_its_response() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    // 64×64 tiled as 16×16 → four tile rows, each slow enough to matter.
    let config = slow_config(21);
    let image = gradient_image(64, 64);
    let request = WireSegmentRequest::from_image(
        &config,
        &image,
        RequestMode::Tiled {
            tile_width: 16,
            tile_height: 16,
            halo: 2,
        },
        60_000,
    );

    let mut frames: Vec<WireProgress> = Vec::new();
    let streamed = client
        .segment_with_progress(&request, |progress| frames.push(*progress))
        .unwrap();
    assert_eq!(streamed.status(), WireStatus::Ok);

    // One frame per completed tile row, all before the final response.
    assert_eq!(frames.len(), 4, "expected one progress frame per tile row");
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(frame.request_id, 1, "first request on this connection");
        assert_eq!(frame.rows_done, i as u32 + 1);
        assert_eq!(frame.rows_total, 4);
    }
    assert!(
        frames
            .windows(2)
            .all(|w| w[0].elapsed_us <= w[1].elapsed_us),
        "elapsed time must be monotone across progress frames"
    );

    // Observation is passive: the plain path returns identical labels.
    let plain = client.segment(&request).unwrap();
    assert_eq!(plain.status(), WireStatus::Ok);
    assert_eq!(
        streamed.label_map().unwrap().as_raw(),
        plain.label_map().unwrap().as_raw()
    );
    handle.shutdown();
}

#[test]
fn an_over_deadline_tiled_job_is_cancelled_mid_run_and_counted() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    // A tiled run whose full execution takes far longer than its 150 ms
    // deadline: the worker starts it promptly (the pool is idle), the
    // deadline-armed cancel token fires mid-run, and the engine stops at
    // the next tile boundary instead of completing the job.
    let request = WireSegmentRequest::from_image(
        &slow_config(23),
        &gradient_image(96, 96),
        RequestMode::Tiled {
            tile_width: 16,
            tile_height: 16,
            halo: 2,
        },
        150,
    );
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::DeadlineExceeded);

    // The worker recorded the abort (it may land shortly after the
    // client's safety-net response, so poll the stats frame).
    let give_up = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().unwrap();
        if stats.server.cancelled_mid_run >= 1 {
            break;
        }
        assert!(
            Instant::now() < give_up,
            "the worker never recorded the mid-run cancellation"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The aborted run poisoned nothing: the server keeps serving.
    let quick = WireSegmentRequest::from_image(
        &test_config(24),
        &gradient_image(16, 16),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&quick).unwrap().status(), WireStatus::Ok);
    handle.shutdown();
}

#[test]
fn shutdown_answers_new_requests_with_busy_or_refuses_the_connection() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = SegClient::connect(addr).unwrap();
    let request = WireSegmentRequest::from_image(
        &test_config(4),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&request).unwrap().status(), WireStatus::Ok);
    handle.shutdown();
    // After shutdown the port no longer serves: either the connection is
    // refused or an admitted frame is answered Busy by the draining queue.
    if let Ok(mut client) = SegClient::connect(addr) {
        if let Ok(response) = client.segment(&request) {
            assert_eq!(response.status(), WireStatus::Busy);
        }
    }
}
