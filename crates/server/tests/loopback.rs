//! End-to-end loopback tests: a real listener, real sockets, real workers.

use std::time::Duration;

use imaging::{DynamicImage, GrayImage};
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use seghdc_server::{
    serve, RequestMode, ResponseBody, SegClient, ServerConfig, WireSegmentRequest, WireStatus,
};

fn test_config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(512)
        .beta(4)
        .iterations(3)
        .seed(seed)
        .build()
        .unwrap()
}

fn gradient_image(width: usize, height: usize) -> DynamicImage {
    let mut img = GrayImage::new(width, height).unwrap();
    for y in 0..height {
        for x in 0..width {
            img.set(x, y, (((x + y) * 255) / (width + height - 1)) as u8)
                .unwrap();
        }
    }
    DynamicImage::Gray(img)
}

/// A config whose whole-image run takes long enough to occupy a worker
/// while other requests pile up behind it.
fn slow_config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(4096)
        .beta(4)
        .iterations(10)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn served_labels_are_byte_identical_to_a_direct_engine_run() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    let config = test_config(7);
    let image = gradient_image(48, 32);
    let request = WireSegmentRequest::from_image(&config, &image, RequestMode::Auto, 0);
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Ok);
    let served = response.label_map().unwrap();

    let engine = SegEngine::new(config).unwrap();
    let direct = engine.run(&SegmentRequest::image(&image)).unwrap();
    assert_eq!(served.as_raw(), direct.single().label_map.as_raw());

    // The telemetry envelope travels with the labels.
    match &response.body {
        ResponseBody::Labels { telemetry, .. } => {
            assert_eq!(telemetry.cache_misses, 1);
            assert!(!telemetry.kernel_isa.is_empty());
            assert!(!telemetry.backend.is_empty());
        }
        ResponseBody::Error { .. } => panic!("expected labels"),
    }
    handle.shutdown();
}

#[test]
fn forced_modes_round_trip_through_the_server() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();
    let config = test_config(11);
    let image = gradient_image(64, 48);

    let whole = client
        .segment(&WireSegmentRequest::from_image(
            &config,
            &image,
            RequestMode::WholeImage,
            0,
        ))
        .unwrap();
    let tiled = client
        .segment(&WireSegmentRequest::from_image(
            &config,
            &image,
            RequestMode::Tiled {
                tile_width: 32,
                tile_height: 32,
                halo: 4,
            },
            0,
        ))
        .unwrap();
    match (&whole.body, &tiled.body) {
        (
            ResponseBody::Labels {
                executed_tiled: whole_tiled,
                ..
            },
            ResponseBody::Labels {
                executed_tiled: tiled_tiled,
                ..
            },
        ) => {
            assert!(!whole_tiled);
            assert!(tiled_tiled);
        }
        _ => panic!("expected labels from both modes"),
    }
    handle.shutdown();
}

#[test]
fn oversized_frames_get_an_invalid_frame_then_eof() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            max_frame_bytes: 4096,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The client's own cap must be larger, or it would refuse to send.
    let mut client = SegClient::connect(handle.local_addr())
        .unwrap()
        .max_frame_bytes(64 << 20);

    let request = WireSegmentRequest::from_image(
        &test_config(3),
        &gradient_image(128, 128),
        RequestMode::Auto,
        0,
    );
    assert!(request.encode().len() > 4096);
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Invalid);

    // The server hangs up after a framing violation: the next exchange
    // fails instead of hanging.
    let small = WireSegmentRequest::from_image(
        &test_config(3),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert!(client.segment(&small).is_err());
    handle.shutdown();
}

#[test]
fn zero_sized_images_are_refused_with_an_invalid_frame() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = SegClient::connect(handle.local_addr()).unwrap();

    let mut request = WireSegmentRequest::from_image(
        &test_config(5),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    request.width = 0;
    request.height = 0;
    request.pixels.clear();
    let response = client.segment(&request).unwrap();
    assert_eq!(response.status(), WireStatus::Invalid);

    // The connection survives a well-framed but invalid request.
    let good = WireSegmentRequest::from_image(
        &test_config(5),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&good).unwrap().status(), WireStatus::Ok);
    handle.shutdown();
}

#[test]
fn expired_deadlines_are_answered_with_deadline_exceeded() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Occupy the single worker with a slow request.
    let slow = std::thread::spawn(move || {
        let mut client = SegClient::connect(addr).unwrap();
        let request = WireSegmentRequest::from_image(
            &slow_config(1),
            &gradient_image(96, 96),
            RequestMode::WholeImage,
            30_000,
        );
        client.segment(&request).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    // This request's 1 ms deadline expires while it waits in the queue.
    let mut client = SegClient::connect(addr).unwrap();
    let doomed = WireSegmentRequest::from_image(
        &test_config(2),
        &gradient_image(16, 16),
        RequestMode::Auto,
        1,
    );
    let response = client.segment(&doomed).unwrap();
    assert_eq!(response.status(), WireStatus::DeadlineExceeded);

    assert_eq!(slow.join().unwrap().status(), WireStatus::Ok);
    handle.shutdown();
}

#[test]
fn a_full_admission_queue_answers_busy() {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // First slow request occupies the worker; second fills the queue.
    let occupants: Vec<_> = (0..2)
        .map(|n| {
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).unwrap();
                let request = WireSegmentRequest::from_image(
                    &slow_config(n),
                    &gradient_image(96, 96),
                    RequestMode::WholeImage,
                    60_000,
                );
                client.segment(&request).unwrap()
            })
        })
        .inspect(|_| {
            // Stagger admissions so the worker has claimed the first
            // before the second arrives.
            std::thread::sleep(Duration::from_millis(200));
        })
        .collect();

    let mut client = SegClient::connect(addr).unwrap();
    let rejected = WireSegmentRequest::from_image(
        &test_config(9),
        &gradient_image(16, 16),
        RequestMode::Auto,
        60_000,
    );
    let response = client.segment(&rejected).unwrap();
    assert_eq!(response.status(), WireStatus::Busy);
    assert_eq!(response.service_us, 0);

    for occupant in occupants {
        let status = occupant.join().unwrap().status();
        assert!(
            status == WireStatus::Ok || status == WireStatus::DeadlineExceeded,
            "occupant ended as {status:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn concurrent_same_codebook_clients_share_one_cache_miss() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).unwrap();
                let request = WireSegmentRequest::from_image(
                    &test_config(21),
                    &gradient_image(40, 40),
                    RequestMode::Auto,
                    0,
                );
                client.segment(&request).unwrap()
            })
        })
        .collect();

    let mut max_hits = 0u64;
    for client in clients {
        let response = client.join().unwrap();
        match response.body {
            ResponseBody::Labels { telemetry, .. } => {
                // The per-key build lock guarantees one build no matter
                // how the four runs interleave.
                assert_eq!(telemetry.cache_misses, 1);
                max_hits = max_hits.max(telemetry.cache_hits);
            }
            ResponseBody::Error { status, message } => {
                panic!("expected labels, got {status:?}: {message}")
            }
        }
    }
    // The last run to finish observed the other three as hits.
    assert_eq!(max_hits, 3);
    handle.shutdown();
}

#[test]
fn shutdown_answers_new_requests_with_busy_or_refuses_the_connection() {
    let handle = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = SegClient::connect(addr).unwrap();
    let request = WireSegmentRequest::from_image(
        &test_config(4),
        &gradient_image(8, 8),
        RequestMode::Auto,
        0,
    );
    assert_eq!(client.segment(&request).unwrap().status(), WireStatus::Ok);
    handle.shutdown();
    // After shutdown the port no longer serves: either the connection is
    // refused or an admitted frame is answered Busy by the draining queue.
    if let Ok(mut client) = SegClient::connect(addr) {
        if let Ok(response) = client.segment(&request) {
            assert_eq!(response.status(), WireStatus::Busy);
        }
    }
}
