//! Regenerates **Fig. 3** of the SegHDC paper: the Hamming-distance grids
//! (distance from position (0,0) to every position (i,j)) of the four
//! position-encoding variants, expressed in multiples of the flip unit `x`.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin figure3 [--full|--tiny]`

use hdc::HdcRng;
use seghdc::{PositionEncoder, PositionEncoding};
use seghdc_bench::Scale;

fn print_grid(title: &str, encoder: &PositionEncoder, size: usize) {
    let unit = encoder.row_flip_unit().max(encoder.col_flip_unit()).max(1);
    println!("{title} (flip unit x = {unit} bits)");
    let grid = encoder
        .distance_grid(size)
        .expect("grid size is within the encoder bounds");
    for row in &grid {
        let cells: Vec<String> = row
            .iter()
            .map(|&d| format!("{:>5.1}", d as f64 / unit as f64))
            .collect();
        println!("  {}", cells.join(" "));
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The figure is a pure codebook property, so only the smoke-test scale
    // shrinks it; quick and full both use the paper's dimension.
    let (dimension, grid) = match Scale::from_args() {
        Scale::Tiny => (2_000, 4),
        Scale::Quick | Scale::Full => (10_000, 8),
    };
    println!("Fig. 3 reproduction: distance between the HV at (0,0) and every (i,j),");
    println!("in multiples of the flip unit x; alpha = 0.5, beta = 2, d = {dimension}\n");

    let variants = [
        (
            "(a) row/column uniform encoding",
            PositionEncoding::Uniform,
            1.0,
            1,
        ),
        (
            "(b) Manhattan distance encoding",
            PositionEncoding::Manhattan,
            1.0,
            1,
        ),
        (
            "(c) decay Manhattan distance encoding (alpha = 0.5)",
            PositionEncoding::DecayManhattan,
            0.5,
            1,
        ),
        (
            "(d) block decay Manhattan distance encoding (alpha = 0.5, beta = 2)",
            PositionEncoding::BlockDecayManhattan,
            0.5,
            2,
        ),
    ];
    for (title, encoding, alpha, beta) in variants {
        let mut rng = HdcRng::seed_from(2023);
        let encoder = PositionEncoder::new(encoding, dimension, grid, grid, alpha, beta, &mut rng)?;
        print_grid(title, &encoder, grid);
    }
    println!("paper: (a) shows collapsing diagonal distances, (b) distances equal to");
    println!("(i + j) * x, (c) the same shape with half the unit, and (d) distances that");
    println!("increase once per beta-sized block.");
    Ok(())
}
