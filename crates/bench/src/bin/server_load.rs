//! Open-loop load generator for the `seghdc-server` service front-end.
//!
//! Starts an in-process server on a loopback socket, then drives it from
//! several client connections, each issuing requests on a *fixed schedule*
//! (open loop): a request's latency is measured from its **scheduled**
//! send time, so queueing delay from a server falling behind the offered
//! rate shows up in the percentiles instead of silently throttling the
//! generator — the coordinated-omission-free way to measure a service.
//!
//! The offered rate is calibrated from a short serial warm-up (60% of the
//! measured serial capacity), so the run reports a *sustained* throughput
//! rather than a collapse. Shapes are mixed (32², 48², 64² gray) to
//! exercise the shared codebook cache with several keys at once.
//!
//! Results are merged into `crates/bench/BENCH_server.json` (or
//! `SEGHDC_BENCH_JSON` when set) as:
//!
//! * `server_req`         — mean ns per sustained request (1e9 / req/s)
//! * `server_p50_latency` — median end-to-end latency, ns
//! * `server_p99_latency` — 99th-percentile end-to-end latency, ns
//!
//! with `dim` the hypervector dimension and `k` the client connection
//! count. `--quick` runs a seconds-scale smoke (serve a handful of
//! requests, assert they succeed) without touching the JSON — that is the
//! CI mode.
//!
//! `--snapshot-warm` measures the codebook-snapshot warm-start path
//! instead: first-request latency on a cold server (cache build on the
//! request path) versus a server started from a persisted snapshot, plus
//! a short sustained warm run. It records:
//!
//! * `server_cold_first` — first-request latency on a cold cache, ns
//! * `server_warm_first` — first-request latency after warm start, ns
//! * `server_warm_req`   — mean ns per request, warm serial stream
//!
//! `--quick --snapshot-warm` combines the two: a JSON-free smoke that
//! still asserts the warm-started server serves with zero cache misses.
//!
//! `--batch-burst` measures fused same-codebook batch execution instead:
//! a closed-loop burst of one-key traffic is served twice by a one-worker
//! server — once with group fusion off (the serial per-request baseline)
//! and once with fusion on plus a short batching window — and the
//! sustained req/s of both arms is reported with the fusion counters. It
//! records:
//!
//! * `server_serial_req` — mean ns per request, fusion off
//! * `server_fused_req`  — mean ns per request, fusion + window on
//!
//! `--quick --batch-burst` is the JSON-free CI smoke for the same path.
//!
//! `--progress` measures the streaming-progress and mid-run-cancellation
//! path instead: a long tiled job is driven through
//! [`SegClient::segment_with_progress`] to time the first
//! `FRAME_PROGRESS` frame, then the same job is re-sent with a deadline
//! of half its measured runtime so the worker's deadline-armed cancel
//! token aborts it mid-run. It records:
//!
//! * `server_first_progress` — ns from send to the first progress frame
//! * `server_cancel_latency` — ns past the deadline until the
//!   `DeadlineExceeded` response for the aborted run
//!
//! `--quick --progress` is the JSON-free CI smoke: it still asserts at
//! least one progress frame streamed and that the over-deadline run was
//! cancelled mid-flight (the `cancelled_mid_run` stats counter moved).

use std::path::Path;
use std::time::{Duration, Instant};

use imaging::{DynamicImage, GrayImage};
use seghdc::SegHdcConfig;
use seghdc_bench::bench_json::{merge_into_file, BenchRecord};
use seghdc_server::{
    serve, RequestMode, ResponseBody, SegClient, ServerConfig, WireSegmentRequest, WireStatus,
};

const DIMENSION: usize = 512;
const SHAPE_EDGES: [usize; 3] = [32, 48, 64];

fn load_config() -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(DIMENSION)
        .beta(4)
        .iterations(3)
        .seed(99)
        .build()
        .expect("load config is valid")
}

fn gradient_image(edge: usize) -> DynamicImage {
    let mut img = GrayImage::new(edge, edge).expect("non-empty");
    for y in 0..edge {
        for x in 0..edge {
            img.set(x, y, (((x + y) * 255) / (2 * edge - 2)) as u8)
                .expect("in bounds");
        }
    }
    DynamicImage::Gray(img)
}

/// The request mix, one per shape, reused round-robin.
fn request_mix() -> Vec<WireSegmentRequest> {
    let config = load_config();
    SHAPE_EDGES
        .iter()
        .map(|&edge| {
            WireSegmentRequest::from_image(
                &config,
                &gradient_image(edge),
                RequestMode::WholeImage,
                0,
            )
        })
        .collect()
}

struct ConnectionStats {
    /// End-to-end latencies (scheduled send → response), nanoseconds.
    latencies_ns: Vec<u64>,
    ok: usize,
    rejected: usize,
    kernel_isa: String,
}

/// Drives one connection on a fixed schedule of `count` sends spaced
/// `interval` apart.
fn drive_connection(
    addr: std::net::SocketAddr,
    start_at: Instant,
    interval: Duration,
    count: usize,
) -> ConnectionStats {
    let mut client = SegClient::connect(addr).expect("connect to loopback server");
    let mix = request_mix();
    let mut stats = ConnectionStats {
        latencies_ns: Vec::with_capacity(count),
        ok: 0,
        rejected: 0,
        kernel_isa: String::new(),
    };
    for n in 0..count {
        let scheduled = start_at + interval * n as u32;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let response = client
            .segment(&mix[n % mix.len()])
            .expect("loopback exchange");
        stats
            .latencies_ns
            .push(scheduled.elapsed().as_nanos() as u64);
        match &response.body {
            ResponseBody::Labels { telemetry, .. } => {
                stats.ok += 1;
                if stats.kernel_isa.is_empty() {
                    stats.kernel_isa = telemetry.kernel_isa.clone();
                }
            }
            ResponseBody::Error { .. } => stats.rejected += 1,
        }
    }
    stats
}

/// One shape, one codebook key: the burst workload group fusion targets.
const BURST_EDGE: usize = 48;
/// Distinct frames cycled through the burst; repeats of a frame inside
/// one fused group exercise identical-payload coalescing.
const BURST_FRAMES: usize = 3;
/// Closed-loop client connections in the burst.
const BURST_CONNECTIONS: usize = 8;

/// Same-key burst mix: `BURST_FRAMES` distinct 48² frames.
fn burst_mix() -> Vec<WireSegmentRequest> {
    let config = load_config();
    (0..BURST_FRAMES)
        .map(|phase| {
            let mut img = GrayImage::new(BURST_EDGE, BURST_EDGE).expect("non-empty");
            for y in 0..BURST_EDGE {
                for x in 0..BURST_EDGE {
                    img.set(x, y, ((x * 7 + y * 13 + phase * 31) % 256) as u8)
                        .expect("in bounds");
                }
            }
            WireSegmentRequest::from_image(
                &config,
                &DynamicImage::Gray(img),
                RequestMode::WholeImage,
                0,
            )
        })
        .collect()
}

/// Serves the same closed-loop one-key burst with fusion off (serial
/// baseline) and on (fused batches plus a short batching window), and
/// reports the sustained req/s of both arms.
fn batch_burst(quick: bool) {
    let per_connection = if quick { 4 } else { 48 };

    // Both arms pin one worker: the burst is one codebook key, which
    // consistent hashing routes to one shard anyway, and a single worker
    // keeps the serial-versus-fused comparison free of steal noise.
    let run = |fuse: bool| {
        let handle = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                fuse_groups: fuse,
                fuse_window: if fuse {
                    Duration::from_micros(500)
                } else {
                    Duration::ZERO
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind burst server");
        let addr = handle.local_addr();

        // Warm the codebook off the clock and grab the kernel ISA.
        let mut observer = SegClient::connect(addr).expect("observer connection");
        let mix = burst_mix();
        let mut kernel_isa = String::from("unknown");
        for request in &mix {
            let response = observer.segment(request).expect("warm-up exchange");
            assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
            if let ResponseBody::Labels { telemetry, .. } = &response.body {
                kernel_isa = telemetry.kernel_isa.clone();
            }
        }

        let started = Instant::now();
        let threads: Vec<_> = (0..BURST_CONNECTIONS)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = SegClient::connect(addr).expect("burst connection");
                    let mix = burst_mix();
                    for n in 0..per_connection {
                        let response = client
                            .segment(&mix[(c + n) % mix.len()])
                            .expect("burst exchange");
                        assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("burst thread");
        }
        let elapsed = started.elapsed();
        let stats = observer.stats().expect("stats frame");
        handle.shutdown();

        let rps = (BURST_CONNECTIONS * per_connection) as f64 / elapsed.as_secs_f64();
        (rps, stats, kernel_isa)
    };

    let (serial_rps, serial_stats, _) = run(false);
    let (fused_rps, fused_stats, kernel_isa) = run(true);
    assert_eq!(
        serial_stats.server.fused_requests, 0,
        "the serial arm must not fuse"
    );
    assert!(
        fused_stats.server.fused_requests > 0,
        "the fused arm never fused: {:?}",
        fused_stats.server
    );
    assert_eq!(
        fused_stats.server.fusion_fallbacks, 0,
        "the burst should never hit the fallback path"
    );

    println!(
        "batch burst ({BURST_CONNECTIONS} connections, one {BURST_EDGE}\u{b2} codebook key): \
         serial {serial_rps:.1} req/s, fused {fused_rps:.1} req/s ({:.2}x)",
        fused_rps / serial_rps
    );
    println!(
        "fusion: {} groups covering {} requests, {} coalesced, {} fallbacks",
        fused_stats.server.fused_groups,
        fused_stats.server.fused_requests,
        fused_stats.server.fused_coalesced,
        fused_stats.server.fusion_fallbacks
    );

    if quick {
        println!("server_load --quick --batch-burst: both arms served every request");
        return;
    }

    let records = vec![
        BenchRecord {
            op: "server_serial_req".to_string(),
            isa: kernel_isa.clone(),
            dim: DIMENSION,
            k: BURST_CONNECTIONS,
            ns_per_op: 1e9 / serial_rps,
        },
        BenchRecord {
            op: "server_fused_req".to_string(),
            isa: kernel_isa,
            dim: DIMENSION,
            k: BURST_CONNECTIONS,
            ns_per_op: 1e9 / fused_rps,
        },
    ];
    let path = std::env::var_os("SEGHDC_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_server.json"));
    merge_into_file(&path, &records).expect("write bench records");
    println!("recorded {} records to {}", records.len(), path.display());
}

/// Dimension of the long-tiled-job config: big hypervectors and many
/// k-means iterations make each 16×16 tile a visible unit of work, so
/// tile-row progress frames arrive well before the final response.
const PROGRESS_DIMENSION: usize = 4096;
/// Edge of the square image segmented by the progress mode (6 tile rows).
const PROGRESS_EDGE: usize = 96;

/// The long tiled job the progress/cancel mode measures.
fn progress_request(deadline_ms: u32) -> WireSegmentRequest {
    let config = SegHdcConfig::builder()
        .dimension(PROGRESS_DIMENSION)
        .beta(4)
        .iterations(10)
        .seed(17)
        .build()
        .expect("progress config is valid");
    WireSegmentRequest::from_image(
        &config,
        &gradient_image(PROGRESS_EDGE),
        RequestMode::Tiled {
            tile_width: 16,
            tile_height: 16,
            halo: 2,
        },
        deadline_ms,
    )
}

/// Measures time-to-first-progress-frame on a long tiled job, then the
/// latency of a deadline-armed mid-run cancellation of the same job.
fn progress_mode(quick: bool) {
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind progress server");
    let mut client = SegClient::connect(handle.local_addr()).expect("progress connection");

    // Arm 1: the full run, streaming progress. The first frame's arrival
    // time is the interactivity figure a UI cares about.
    let request = progress_request(60_000);
    let started = Instant::now();
    let mut first_progress_ns = 0u64;
    let mut frames = 0usize;
    let response = client
        .segment_with_progress(&request, |_| {
            if frames == 0 {
                first_progress_ns = started.elapsed().as_nanos() as u64;
            }
            frames += 1;
        })
        .expect("progress exchange");
    let total_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
    assert!(frames > 0, "a multi-row tiled run must stream progress");
    let kernel_isa = match &response.body {
        ResponseBody::Labels { telemetry, .. } => telemetry.kernel_isa.clone(),
        ResponseBody::Error { .. } => unreachable!("status was Ok"),
    };

    // Arm 2: the same job with half its measured runtime as the deadline —
    // guaranteed to expire mid-run at any machine speed — timing how far
    // past the deadline the client learns of the abort.
    let deadline_ms = ((total_ns / 2) / 1_000_000).max(25) as u32;
    let sent = Instant::now();
    let response = client
        .segment(&progress_request(deadline_ms))
        .expect("cancel exchange");
    let answered_ns = sent.elapsed().as_nanos() as u64;
    assert_eq!(
        response.status(),
        WireStatus::DeadlineExceeded,
        "a half-runtime deadline must expire mid-run: {:?}",
        response.body
    );
    let cancel_latency_ns = answered_ns.saturating_sub(u64::from(deadline_ms) * 1_000_000);

    // The worker recorded the abort (it can land shortly after the
    // client's safety-net response, so poll the stats frame briefly).
    let give_up = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats frame");
        if stats.server.cancelled_mid_run >= 1 {
            break;
        }
        assert!(
            Instant::now() < give_up,
            "the worker never recorded a mid-run cancellation"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();

    println!(
        "progress: first frame after {:.2} ms ({frames} frames over a {:.2} ms tiled run); \
         cancel answered {:.2} ms past its {deadline_ms} ms deadline",
        first_progress_ns as f64 / 1e6,
        total_ns as f64 / 1e6,
        cancel_latency_ns as f64 / 1e6,
    );

    if quick {
        println!("server_load --quick --progress: streamed progress and cancelled mid-run");
        return;
    }

    let records = vec![
        BenchRecord {
            op: "server_first_progress".to_string(),
            isa: kernel_isa.clone(),
            dim: PROGRESS_DIMENSION,
            k: 1,
            ns_per_op: first_progress_ns as f64,
        },
        BenchRecord {
            op: "server_cancel_latency".to_string(),
            isa: kernel_isa,
            dim: PROGRESS_DIMENSION,
            k: 1,
            ns_per_op: cancel_latency_ns as f64,
        },
    ];
    let path = std::env::var_os("SEGHDC_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_server.json"));
    merge_into_file(&path, &records).expect("write bench records");
    println!("recorded {} records to {}", records.len(), path.display());
}

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

/// Measures cold-cache versus snapshot-warm-started first-request
/// latency, then a short sustained warm stream.
fn snapshot_warm(quick: bool) {
    let dir = std::env::temp_dir().join(format!("seghdc-server-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot scratch dir");
    let path = dir.join("codebooks.sgsn");
    let mix = request_mix();

    // Cold server: the first request pays the codebook build.
    let cold = serve("127.0.0.1:0", ServerConfig::default()).expect("bind cold server");
    let mut client = SegClient::connect(cold.local_addr()).expect("cold connection");
    let cold_start = Instant::now();
    let response = client.segment(&mix[0]).expect("cold exchange");
    let cold_first_ns = cold_start.elapsed().as_nanos() as u64;
    assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
    let kernel_isa = match &response.body {
        ResponseBody::Labels { telemetry, .. } => telemetry.kernel_isa.clone(),
        ResponseBody::Error { .. } => unreachable!("status was Ok"),
    };
    // Touch every key in the mix so the snapshot carries all of them.
    for request in &mix[1..] {
        let response = client.segment(request).expect("cold exchange");
        assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
    }
    let saved = cold
        .save_snapshot(&path)
        .expect("persist codebook snapshot");
    cold.shutdown();

    // Warm server: the build cost moved off the request path to startup.
    let warm = serve(
        "127.0.0.1:0",
        ServerConfig {
            codebook_snapshot: Some(path),
            ..ServerConfig::default()
        },
    )
    .expect("bind warm server");
    let mut client = SegClient::connect(warm.local_addr()).expect("warm connection");
    let warm_start = Instant::now();
    let response = client.segment(&mix[0]).expect("warm exchange");
    let warm_first_ns = warm_start.elapsed().as_nanos() as u64;
    assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
    match &response.body {
        ResponseBody::Labels { telemetry, .. } => assert_eq!(
            telemetry.cache_misses, 0,
            "warm-started server rebuilt a codebook"
        ),
        ResponseBody::Error { .. } => unreachable!("status was Ok"),
    }

    // Short sustained warm stream for a mean ns/request figure.
    let rounds = if quick { 2 } else { 16 };
    let stream_start = Instant::now();
    for _ in 0..rounds {
        for request in &mix {
            let response = client.segment(request).expect("warm exchange");
            assert_eq!(response.status(), WireStatus::Ok, "{:?}", response.body);
        }
    }
    let warm_req_ns = stream_start.elapsed().as_nanos() as f64 / (rounds * mix.len()) as f64;
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "snapshot warm start ({saved} codebooks): cold first {:.2} ms, warm first {:.2} ms, \
         warm sustained {:.3} ms/req",
        cold_first_ns as f64 / 1e6,
        warm_first_ns as f64 / 1e6,
        warm_req_ns / 1e6
    );

    if quick {
        println!("server_load --quick --snapshot-warm: warm start served with zero misses");
        return;
    }

    let records = vec![
        BenchRecord {
            op: "server_cold_first".to_string(),
            isa: kernel_isa.clone(),
            dim: DIMENSION,
            k: 1,
            ns_per_op: cold_first_ns as f64,
        },
        BenchRecord {
            op: "server_warm_first".to_string(),
            isa: kernel_isa.clone(),
            dim: DIMENSION,
            k: 1,
            ns_per_op: warm_first_ns as f64,
        },
        BenchRecord {
            op: "server_warm_req".to_string(),
            isa: kernel_isa,
            dim: DIMENSION,
            k: 1,
            ns_per_op: warm_req_ns,
        },
    ];
    let path = std::env::var_os("SEGHDC_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_server.json"));
    merge_into_file(&path, &records).expect("write bench records");
    println!("recorded {} records to {}", records.len(), path.display());
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    if std::env::args().any(|arg| arg == "--snapshot-warm") {
        snapshot_warm(quick);
        return;
    }
    if std::env::args().any(|arg| arg == "--batch-burst") {
        batch_burst(quick);
        return;
    }
    if std::env::args().any(|arg| arg == "--progress") {
        progress_mode(quick);
        return;
    }
    let connections: usize = if quick { 2 } else { 4 };

    let handle = serve("127.0.0.1:0", ServerConfig::default()).expect("bind loopback server");
    let addr = handle.local_addr();

    // Serial warm-up: builds the codebooks and measures serial capacity.
    let mut warm_client = SegClient::connect(addr).expect("warm-up connection");
    let mix = request_mix();
    let warm_start = Instant::now();
    let warm_rounds = 2;
    for _ in 0..warm_rounds {
        for request in &mix {
            let response = warm_client.segment(request).expect("warm-up exchange");
            assert_eq!(
                response.status(),
                WireStatus::Ok,
                "warm-up request failed: {:?}",
                response.body
            );
        }
    }
    let serial_ns = warm_start.elapsed().as_nanos() as f64 / (warm_rounds * mix.len()) as f64;

    if quick {
        // CI smoke: the warm-up already proved the loopback path; run one
        // short concurrent burst and exit without touching the JSON.
        let start_at = Instant::now() + Duration::from_millis(20);
        let interval = Duration::from_nanos((serial_ns * connections as f64) as u64);
        let threads: Vec<_> = (0..connections)
            .map(|_| std::thread::spawn(move || drive_connection(addr, start_at, interval, 8)))
            .collect();
        let mut ok = 0;
        for thread in threads {
            let stats = thread.join().expect("driver thread");
            assert_eq!(stats.rejected, 0, "smoke run saw rejected requests");
            ok += stats.ok;
        }
        handle.shutdown();
        println!("server_load --quick: {ok} requests served over {connections} connections");
        return;
    }

    // Offer 60% of serial capacity per the whole fleet: sustainable by
    // construction, so percentiles measure the service, not a collapse.
    let offered_interval_ns = (serial_ns / 0.6) * connections as f64;
    let interval = Duration::from_nanos(offered_interval_ns as u64);
    let target = Duration::from_secs(6);
    let per_connection = (target.as_nanos() as f64 / offered_interval_ns).ceil() as usize;

    let start_at = Instant::now() + Duration::from_millis(50);
    let threads: Vec<_> = (0..connections)
        .map(|_| {
            std::thread::spawn(move || drive_connection(addr, start_at, interval, per_connection))
        })
        .collect();

    let mut latencies = Vec::new();
    let mut ok = 0;
    let mut rejected = 0;
    let mut kernel_isa = String::from("unknown");
    for thread in threads {
        let stats = thread.join().expect("driver thread");
        latencies.extend(stats.latencies_ns);
        ok += stats.ok;
        rejected += stats.rejected;
        if !stats.kernel_isa.is_empty() {
            kernel_isa = stats.kernel_isa;
        }
    }
    let elapsed = start_at.elapsed();
    handle.shutdown();

    latencies.sort_unstable();
    let total = ok + rejected;
    let rps = ok as f64 / elapsed.as_secs_f64();
    let p50 = percentile_ns(&latencies, 0.50);
    let p99 = percentile_ns(&latencies, 0.99);

    println!(
        "sustained: {rps:.1} req/s over {connections} connections ({ok}/{total} ok, \
         {rejected} rejected) in {:.1}s",
        elapsed.as_secs_f64()
    );
    println!(
        "latency: p50 {:.2} ms, p99 {:.2} ms (from scheduled send time)",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6
    );

    let records = vec![
        BenchRecord {
            op: "server_req".to_string(),
            isa: kernel_isa.clone(),
            dim: DIMENSION,
            k: connections,
            ns_per_op: 1e9 / rps,
        },
        BenchRecord {
            op: "server_p50_latency".to_string(),
            isa: kernel_isa.clone(),
            dim: DIMENSION,
            k: connections,
            ns_per_op: p50 as f64,
        },
        BenchRecord {
            op: "server_p99_latency".to_string(),
            isa: kernel_isa,
            dim: DIMENSION,
            k: connections,
            ns_per_op: p99 as f64,
        },
    ];
    let path = std::env::var_os("SEGHDC_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_server.json"));
    merge_into_file(&path, &records).expect("write bench records");
    println!("recorded {} records to {}", records.len(), path.display());
}
