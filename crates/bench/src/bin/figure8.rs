//! Regenerates **Fig. 8** of the SegHDC paper: the prediction masks of a
//! DSB2018-style sample image after clustering iteration 1, 2, 3 and 4.
//! The masks (plus the input and ground truth) are written as PGM files
//! under `target/figure8/` and the per-iteration IoU is printed.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin figure8 [--full|--tiny]`

use imaging::{metrics, pnm};
use seghdc::{SegEngine, SegmentRequest};
use seghdc_bench::{seghdc_config_for, Scale};
use std::path::PathBuf;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let profile = match scale {
        Scale::Full => DatasetProfile::dsb2018_like(),
        Scale::Quick => DatasetProfile::dsb2018_like().scaled(128, 96),
        Scale::Tiny => DatasetProfile::dsb2018_like().scaled(16, 16),
    };
    let generator = NucleiImageGenerator::new(profile.clone(), 11)?;
    let sample = generator.generate(0)?;
    let truth = sample.ground_truth.to_binary();

    let mut config = seghdc_config_for(&profile, scale);
    config.iterations = 4;
    config.record_snapshots = true;

    let output_dir = PathBuf::from("target/figure8");
    std::fs::create_dir_all(&output_dir)?;
    pnm::save_pgm(&sample.image.to_gray(), output_dir.join("input.pgm"))?;
    pnm::save_pgm(
        &truth.to_gray_visualization(),
        output_dir.join("ground_truth.pgm"),
    )?;

    println!("Fig. 8 reproduction: prediction masks over the first 4 iterations");
    println!(
        "scale: {scale:?}; masks written to {}\n",
        output_dir.display()
    );
    println!("{:>10} {:>10}", "iteration", "IoU");

    let segmentation = SegEngine::new(config)?
        .run(&SegmentRequest::image(&sample.image).whole_image())?
        .outputs
        .remove(0);
    for (index, snapshot) in segmentation.snapshots.iter().enumerate() {
        let iou = metrics::matched_binary_iou(snapshot, &truth)?;
        pnm::save_pgm(
            &snapshot.to_gray_visualization(),
            output_dir.join(format!("iteration_{}.pgm", index + 1)),
        )?;
        println!("{:>10} {:>10.4}", index + 1, iou);
    }

    println!("\npaper: after 1 iteration almost all pixels share one label; from 2 iterations");
    println!("onwards the mask is close to the ground truth.");
    Ok(())
}
