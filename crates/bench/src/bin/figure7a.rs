//! Regenerates **Fig. 7(a)** of the SegHDC paper: IoU score and latency as a
//! function of the number of clustering iterations (1–10) on a
//! DSB2018-style sample image, with the hypervector dimension fixed.
//!
//! Latency is measured on this host and also rescaled to the Raspberry Pi
//! profile so the series has the same units as the paper's right axis.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin figure7a [--full|--tiny]`

use edge_device::DeviceProfile;
use seghdc::sweep;
use seghdc_bench::{seghdc_config_for, Scale};
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let (profile, dimension) = match scale {
        // The paper fixes d = 10 000 for this sweep on the 256x320x3 image.
        Scale::Full => (DatasetProfile::dsb2018_like(), 10_000),
        Scale::Quick => (DatasetProfile::dsb2018_like().scaled(128, 96), 2_000),
        Scale::Tiny => (DatasetProfile::dsb2018_like().scaled(16, 16), 256),
    };
    let generator = NucleiImageGenerator::new(profile.clone(), 11)?;
    let sample = generator.generate(0)?;
    let truth = sample.ground_truth.to_binary();

    let mut base = seghdc_config_for(&profile, scale);
    base.dimension = dimension;

    let pi = DeviceProfile::raspberry_pi_4();
    let host = DeviceProfile::desktop_host();

    println!("Fig. 7(a) reproduction: IoU and latency vs. number of iterations");
    println!(
        "scale: {scale:?}, image {}x{}x{}, d = {dimension}\n",
        sample.image.width(),
        sample.image.height(),
        sample.image.channels()
    );
    println!(
        "{:>11} {:>10} {:>14} {:>18}",
        "iterations", "IoU", "host latency", "est. Pi latency"
    );
    let points = sweep::iteration_sweep(&base, 1..=10, &sample.image, &truth)?;
    for point in &points {
        let pi_latency = pi.scale_measurement(&host, point.latency);
        println!(
            "{:>11} {:>10.4} {:>13.2}s {:>17.2}s",
            point.value,
            point.iou,
            point.latency.as_secs_f64(),
            pi_latency.as_secs_f64()
        );
    }
    println!("\npaper: latency grows from ~20s (1 iteration) to ~300s (10 iterations) on the");
    println!("Pi while the IoU saturates after about 4 iterations.");
    Ok(())
}
