//! Regenerates **Table I** of the SegHDC paper: mean IoU on the three
//! nuclei datasets for the CNN baseline (BL), the RPos and RColor ablations
//! and SegHDC, plus the relative improvement of SegHDC over the baseline.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin table1 [--full|--tiny]`

use seghdc_bench::{
    baseline_config_for, dataset_profiles, evaluate_method_batch, samples_per_dataset,
    seghdc_config_for, Method, Scale,
};
use synthdata::SyntheticDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let samples = samples_per_dataset(scale);
    let baseline_config = baseline_config_for(scale);

    println!("Table I reproduction: IoU score on 3 (synthetic) datasets");
    println!("scale: {scale:?}, {samples} images per dataset\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "Dataset", "BL [16]", "RPos", "RColor", "SegHDC", "Improvement"
    );

    for profile in dataset_profiles(scale) {
        let dataset = SyntheticDataset::new(profile.clone(), 2023, samples)?;
        let seghdc_config = seghdc_config_for(&profile, scale);
        // Generate each dataset's images once; every method then runs as one
        // batch over them (SegHDC-family methods share codebooks per shape
        // through the public `segment_batch` engine).
        let mut images = Vec::with_capacity(samples);
        let mut truths = Vec::with_capacity(samples);
        for index in 0..samples.min(dataset.len()) {
            let sample = dataset.sample(index)?;
            images.push(sample.image);
            truths.push(sample.ground_truth);
        }
        let mut scores = Vec::new();
        for method in Method::all() {
            let per_image =
                evaluate_method_batch(method, &images, &truths, &seghdc_config, &baseline_config)?;
            scores.push(per_image.iter().sum::<f64>() / per_image.len() as f64);
        }
        let improvement = (scores[3] - scores[0]) * 100.0;
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.1}%",
            profile.name.trim_end_matches("-like"),
            scores[0],
            scores[1],
            scores[2],
            scores[3],
            improvement
        );
    }
    println!("\npaper (real datasets): BBBC005 0.7490/0.0361/0.1016/0.9414 (+25.7%),");
    println!("                       DSB2018 0.6281/0.1172/0.2352/0.8038 (+28.0%),");
    println!("                       MoNuSeg 0.5088/0.1959/0.3832/0.5509 (+8.27%)");
    Ok(())
}
