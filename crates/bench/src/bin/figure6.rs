//! Regenerates **Fig. 6** of the SegHDC paper: qualitative prediction masks
//! (and per-image IoU) of the CNN baseline and SegHDC on one sample image
//! from each dataset. The input image, ground truth and both predictions are
//! written as PGM files under `target/figure6/` so they can be compared
//! visually, and the per-image IoU scores are printed.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin figure6 [--full|--tiny]`

use cnn_baseline::KimSegmenter;
use imaging::{metrics, pnm};
use seghdc::{SegEngine, SegmentRequest};
use seghdc_bench::{baseline_config_for, dataset_profiles, seghdc_config_for, Scale};
use std::path::PathBuf;
use synthdata::NucleiImageGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let output_dir = PathBuf::from("target/figure6");
    std::fs::create_dir_all(&output_dir)?;

    println!("Fig. 6 reproduction: qualitative masks and per-image IoU (scale: {scale:?})");
    println!("masks are written to {}\n", output_dir.display());
    println!(
        "{:<16} {:>16} {:>16}",
        "Dataset", "Baseline IoU", "SegHDC IoU"
    );

    for profile in dataset_profiles(scale) {
        let generator = NucleiImageGenerator::new(profile.clone(), 6)?;
        let sample = generator.generate(0)?;
        let truth = sample.ground_truth.to_binary();
        let short_name = profile.name.trim_end_matches("-like").to_lowercase();

        pnm::save_pgm(
            &sample.image.to_gray(),
            output_dir.join(format!("{short_name}_input.pgm")),
        )?;
        pnm::save_pgm(
            &truth.to_gray_visualization(),
            output_dir.join(format!("{short_name}_truth.pgm")),
        )?;

        let baseline = KimSegmenter::new(baseline_config_for(scale))?.segment(&sample.image)?;
        let baseline_iou = metrics::matched_binary_iou(&baseline.label_map, &truth)?;
        pnm::save_pgm(
            &baseline.label_map.to_gray_visualization(),
            output_dir.join(format!("{short_name}_baseline.pgm")),
        )?;

        let engine = SegEngine::new(seghdc_config_for(&profile, scale))?;
        let seghdc = engine
            .run(&SegmentRequest::image(&sample.image).whole_image())?
            .outputs
            .remove(0);
        let seghdc_iou = metrics::matched_binary_iou(&seghdc.label_map, &truth)?;
        pnm::save_pgm(
            &seghdc.label_map.to_gray_visualization(),
            output_dir.join(format!("{short_name}_seghdc.pgm")),
        )?;

        println!(
            "{:<16} {:>16.4} {:>16.4}",
            profile.name.trim_end_matches("-like"),
            baseline_iou,
            seghdc_iou
        );
    }

    println!("\npaper (real datasets): BBBC005 0.6995 vs 0.9559, DSB2018 0.7612 vs 0.8259,");
    println!("                       MoNuSeg 0.3496 vs 0.5299 (baseline vs SegHDC).");
    Ok(())
}
