//! Regenerates **Fig. 7(b)** of the SegHDC paper: IoU score and latency as a
//! function of the hypervector dimension (200–1000) on a DSB2018-style
//! sample image, with the number of iterations fixed at 10.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin figure7b [--full|--tiny]`

use edge_device::DeviceProfile;
use seghdc::sweep;
use seghdc_bench::{seghdc_config_for, Scale};
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let profile = match scale {
        Scale::Full => DatasetProfile::dsb2018_like(),
        Scale::Quick => DatasetProfile::dsb2018_like().scaled(128, 96),
        Scale::Tiny => DatasetProfile::dsb2018_like().scaled(16, 16),
    };
    let generator = NucleiImageGenerator::new(profile.clone(), 11)?;
    let sample = generator.generate(0)?;
    let truth = sample.ground_truth.to_binary();

    let mut base = seghdc_config_for(&profile, scale);
    base.iterations = 10;

    let pi = DeviceProfile::raspberry_pi_4();
    let host = DeviceProfile::desktop_host();

    println!("Fig. 7(b) reproduction: IoU and latency vs. hypervector dimension");
    println!(
        "scale: {scale:?}, image {}x{}x{}, 10 iterations\n",
        sample.image.width(),
        sample.image.height(),
        sample.image.channels()
    );
    println!(
        "{:>10} {:>10} {:>14} {:>18}",
        "dimension", "IoU", "host latency", "est. Pi latency"
    );
    let dimensions: &[usize] = match scale {
        Scale::Tiny => &[128, 256],
        Scale::Quick | Scale::Full => &[200, 400, 600, 800, 1000],
    };
    let points = sweep::dimension_sweep(&base, dimensions.iter().copied(), &sample.image, &truth)?;
    for point in &points {
        let pi_latency = pi.scale_measurement(&host, point.latency);
        println!(
            "{:>10} {:>10.4} {:>13.2}s {:>17.2}s",
            point.value,
            point.iou,
            point.latency.as_secs_f64(),
            pi_latency.as_secs_f64()
        );
    }
    println!("\npaper: latency rises from ~90s (d=200) to ~110s (d=1000) on the Pi and 800");
    println!("dimensions is reported as the sweet spot for this image.");
    Ok(())
}
