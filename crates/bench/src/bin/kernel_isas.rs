//! Prints one kernel ISA name per line (`hdc::kernels::available()`),
//! best-first with `scalar` last.
//!
//! CI uses this to run the kernel-equivalence suite once per ISA the
//! runner actually supports:
//!
//! ```sh
//! for isa in $(cargo run -q --release -p seghdc_bench --bin kernel_isas); do
//!     SEGHDC_KERNELS=$isa cargo test -q --release --test kernel_equivalence
//! done
//! ```

fn main() {
    for kernels in hdc::kernels::available() {
        println!("{}", kernels.name());
    }
}
