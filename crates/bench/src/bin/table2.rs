//! Regenerates **Table II** of the SegHDC paper: IoU and latency on a
//! Raspberry Pi 4 for one DSB2018-sized image (256×320×3) and one
//! BBBC005-sized image (520×696×1), including the baseline's out-of-memory
//! failure on the larger image.
//!
//! SegHDC is executed for real (in Rust, on this host) and its wall-clock
//! time is rescaled to the Raspberry Pi profile; the CNN baseline's latency
//! is estimated analytically from its operation count because running the
//! reference 1000-iteration training takes hours even on a desktop.
//!
//! Usage: `cargo run -p seghdc_bench --release --bin table2 [--full|--tiny]`

use edge_device::{DeviceProfile, Workload};
use imaging::metrics;
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use seghdc_bench::Scale;
use synthdata::{DatasetProfile, NucleiImageGenerator};

struct Row {
    label: &'static str,
    profile: DatasetProfile,
    seghdc_config: SegHdcConfig,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let pi = DeviceProfile::raspberry_pi_4();
    let host = DeviceProfile::desktop_host();

    // In quick mode the images are smaller but keep the paper's aspect
    // ratios and channel counts, so the OOM / speedup conclusions still
    // follow from the same model.
    let (dsb_size, bbbc_size) = match scale {
        Scale::Full => ((320usize, 256usize), (696usize, 520usize)),
        Scale::Quick => ((160, 128), (348, 260)),
        Scale::Tiny => ((20, 16), (24, 20)),
    };

    let rows = vec![
        Row {
            label: "DSB2018 sample",
            profile: DatasetProfile::dsb2018_like().scaled(dsb_size.0, dsb_size.1),
            seghdc_config: SegHdcConfig::edge_dsb2018(),
        },
        Row {
            label: "BBBC005 sample",
            profile: DatasetProfile::bbbc005_like().scaled(bbbc_size.0, bbbc_size.1),
            seghdc_config: SegHdcConfig::edge_bbbc005(),
        },
    ];

    println!("Table II reproduction: latency on Raspberry Pi for processing one image");
    println!("scale: {scale:?}\n");
    println!(
        "{:<24} {:<16} {:>10} {:>16} {:>12}",
        "Method", "Image size", "IoU", "Latency on Pi", "Speedup"
    );

    for row in rows {
        let generator = NucleiImageGenerator::new(row.profile.clone(), 7)?;
        let sample = generator.generate(0)?;
        let (width, height, channels) = (
            sample.image.width(),
            sample.image.height(),
            sample.image.channels(),
        );

        // --- CNN baseline: analytical estimate at the paper's reference
        // configuration (100 channels, 1000 iterations).
        let cnn_workload = Workload::cnn_unsupervised(width, height, channels, 100, 2, 1000);
        let baseline_cell = match pi.estimate(&cnn_workload) {
            Ok(estimate) => format!("{:.1}s", estimate.total().as_secs_f64()),
            Err(edge_device::DeviceError::OutOfMemory { .. }) => "x* (OOM)".to_string(),
            Err(err) => return Err(err.into()),
        };
        // The paper reports the baseline IoU only where it runs.
        let baseline_iou = if pi.check_memory(&cnn_workload).is_ok() {
            "  0.76*".to_string()
        } else {
            "   x*".to_string()
        };
        println!(
            "{:<24} {:<16} {:>10} {:>16} {:>12}",
            format!("Baseline ({})", row.label),
            format!("{width}x{height}x{channels}"),
            baseline_iou,
            baseline_cell,
            "baseline"
        );

        // --- SegHDC: run for real (through the public batch engine), score,
        // and rescale the measured latency.
        let mut config = row.seghdc_config.clone();
        if scale != Scale::Full {
            config.beta = (config.beta * width / 320).max(1);
        }
        if scale == Scale::Tiny {
            config.dimension = 256;
            config.iterations = 2;
        }
        let segmentation = SegEngine::new(config)?
            .run(&SegmentRequest::image(&sample.image).whole_image())?
            .outputs
            .remove(0);
        let iou =
            metrics::matched_binary_iou(&segmentation.label_map, &sample.ground_truth.to_binary())?;
        let host_latency = segmentation.total_time();
        let pi_latency = pi.scale_measurement(&host, host_latency);
        let speedup = match pi.estimate(&cnn_workload) {
            Ok(estimate) => format!(
                "{:.1}x",
                estimate.total().as_secs_f64() / pi_latency.as_secs_f64().max(1e-9)
            ),
            Err(_) => "-".to_string(),
        };
        println!(
            "{:<24} {:<16} {:>10.4} {:>16} {:>12}",
            format!("SegHDC ({})", row.label),
            format!("{width}x{height}x{channels}"),
            iou,
            format!(
                "{:.1}s (host {:.1}s)",
                pi_latency.as_secs_f64(),
                host_latency.as_secs_f64()
            ),
            speedup
        );
    }

    println!("\n* Baseline IoU on the DSB2018 sample is taken from the paper (0.7612); the");
    println!("  reference 1000-iteration training is estimated analytically, not executed.");
    println!("paper: baseline 11453.0s vs SegHDC 35.8s (319.9x) on 256x320x3; baseline OOM");
    println!("       vs SegHDC 178.31s (IoU 0.9587) on 520x696x1.");
    Ok(())
}
