//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the SegHDC paper.
//!
//! Each binary (`table1`, `table2`, `figure3`, `figure6`, `figure7a`,
//! `figure7b`, `figure8`) prints the rows or series of the corresponding
//! table/figure. By default the harnesses run a **scaled** workload (smaller
//! images, fewer samples and a lower hypervector dimension) so the whole
//! suite finishes in minutes on a laptop; pass `--full` to run at the
//! paper's original scale. `EXPERIMENTS.md` records both the paper values
//! and the values measured with the scaled defaults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;

use cnn_baseline::{KimConfig, KimSegmenter};
use imaging::{metrics, LabelMap};
use seghdc::{ColorEncoding, PositionEncoding, SegEngine, SegHdcConfig, SegmentRequest};
use synthdata::{DatasetProfile, SyntheticDataset};

/// Scale at which an experiment harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 16×16 images, one sample, minimal dimensions — a seconds-long sanity
    /// pass used by the binary smoke tests.
    Tiny,
    /// Reduced image sizes / sample counts / dimensions; finishes in minutes.
    Quick,
    /// The paper's original image sizes and parameters.
    Full,
}

impl Scale {
    /// Parses the scale from command-line arguments (`--full` selects
    /// [`Scale::Full`], `--tiny` selects [`Scale::Tiny`], everything else
    /// defaults to [`Scale::Quick`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else if std::env::args().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Quick
        }
    }
}

/// The three evaluation datasets of the paper, with the image size used at
/// the given scale.
pub fn dataset_profiles(scale: Scale) -> Vec<DatasetProfile> {
    let profiles = vec![
        DatasetProfile::bbbc005_like(),
        DatasetProfile::dsb2018_like(),
        DatasetProfile::monuseg_like(),
    ];
    match scale {
        Scale::Full => profiles,
        Scale::Quick => profiles.into_iter().map(|p| p.scaled(96, 96)).collect(),
        Scale::Tiny => profiles.into_iter().map(|p| p.scaled(16, 16)).collect(),
    }
}

/// Number of images evaluated per dataset at the given scale.
pub fn samples_per_dataset(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 1,
        Scale::Quick => 4,
        Scale::Full => 20,
    }
}

/// SegHDC configuration for a dataset profile, following Table I's
/// hyper-parameters (`α = 0.2`, `γ = 1`, `β = 21/26`, 2 or 3 clusters), with
/// the dimension reduced in quick and tiny modes.
pub fn seghdc_config_for(profile: &DatasetProfile, scale: Scale) -> SegHdcConfig {
    let mut config = if profile.name.starts_with("BBBC005") {
        SegHdcConfig::bbbc005()
    } else if profile.name.starts_with("MoNuSeg") {
        SegHdcConfig::monuseg()
    } else {
        SegHdcConfig::dsb2018()
    };
    match scale {
        Scale::Full => {}
        Scale::Quick => {
            config.dimension = 2000;
            config.iterations = 5;
            // β scales with the image: the paper's 21/26 blocks on ~256-pixel
            // axes correspond to ~8 blocks on a 96-pixel axis.
            config.beta = (config.beta * 96 / 256).max(1);
        }
        Scale::Tiny => {
            config.dimension = 256;
            config.iterations = 2;
            config.beta = (config.beta * 16 / 256).max(1);
        }
    }
    config
}

/// CNN-baseline configuration at the given scale.
pub fn baseline_config_for(scale: Scale) -> KimConfig {
    match scale {
        Scale::Tiny => KimConfig::tiny(),
        Scale::Quick => KimConfig::evaluation(),
        Scale::Full => KimConfig::reference(),
    }
}

/// Which segmentation method a Table I column refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The CNN baseline of Kim et al. (column "BL").
    CnnBaseline,
    /// SegHDC with random position hypervectors (column "RPos").
    RandomPosition,
    /// SegHDC with random colour hypervectors (column "RColor").
    RandomColor,
    /// The full SegHDC pipeline.
    SegHdc,
}

impl Method {
    /// All Table I columns in presentation order.
    pub fn all() -> [Method; 4] {
        [
            Method::CnnBaseline,
            Method::RandomPosition,
            Method::RandomColor,
            Method::SegHdc,
        ]
    }

    /// The column label used in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Method::CnnBaseline => "BL [16]",
            Method::RandomPosition => "RPos",
            Method::RandomColor => "RColor",
            Method::SegHdc => "SegHDC",
        }
    }
}

/// The SegHDC configuration a Table I column runs with: the base
/// configuration for the `SegHDC` column and the random-codebook ablations
/// for `RPos`/`RColor` (`None` for the CNN baseline).
fn seghdc_variant_for(method: Method, base: &SegHdcConfig) -> Option<SegHdcConfig> {
    match method {
        Method::CnnBaseline => None,
        Method::SegHdc => Some(base.clone()),
        Method::RandomPosition => Some(SegHdcConfig {
            position_encoding: PositionEncoding::Random,
            ..base.clone()
        }),
        Method::RandomColor => Some(SegHdcConfig {
            color_encoding: ColorEncoding::Random,
            ..base.clone()
        }),
    }
}

/// Runs one method over a whole batch of images and returns one matched
/// binary IoU per image.
///
/// Every SegHDC-family method goes through one [`SegEngine`] batch
/// request, so codebooks are derived **once per image shape** for the whole
/// batch (via the engine's persistent codebook cache) instead of once per
/// image — this is the entry point all experiment binaries route their
/// segmentations through. The CNN baseline trains per image by
/// construction and is run in a loop.
///
/// # Errors
///
/// Returns a boxed error if segmentation or scoring fails, or if `images`
/// and `truths` disagree in length.
pub fn evaluate_method_batch(
    method: Method,
    images: &[imaging::DynamicImage],
    truths: &[LabelMap],
    seghdc_config: &SegHdcConfig,
    baseline_config: &KimConfig,
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    if images.len() != truths.len() {
        return Err(format!("{} images but {} ground truths", images.len(), truths.len()).into());
    }
    let predictions: Vec<LabelMap> = match seghdc_variant_for(method, seghdc_config) {
        Some(config) => SegEngine::new(config)?
            .run(&SegmentRequest::batch(images).whole_image())?
            .outputs
            .into_iter()
            .map(|output| output.label_map)
            .collect(),
        None => {
            let mut maps = Vec::with_capacity(images.len());
            for image in images {
                maps.push(
                    KimSegmenter::new(baseline_config.clone())?
                        .segment(image)?
                        .label_map,
                );
            }
            maps
        }
    };
    predictions
        .iter()
        .zip(truths)
        .map(|(prediction, truth)| Ok(metrics::matched_binary_iou(prediction, &truth.to_binary())?))
        .collect()
}

/// Runs one method on one image and returns the matched binary IoU against
/// the ground truth. Thin wrapper over
/// [`evaluate_method_batch`] for single-image call sites.
///
/// # Errors
///
/// Returns a boxed error if segmentation or scoring fails.
pub fn evaluate_method(
    method: Method,
    image: &imaging::DynamicImage,
    truth: &LabelMap,
    seghdc_config: &SegHdcConfig,
    baseline_config: &KimConfig,
) -> Result<f64, Box<dyn std::error::Error>> {
    let scores = evaluate_method_batch(
        method,
        std::slice::from_ref(image),
        std::slice::from_ref(truth),
        seghdc_config,
        baseline_config,
    )?;
    Ok(scores[0])
}

/// Mean IoU of one method over the first `samples` images of a dataset,
/// evaluated as one batch (codebooks shared across the same-shaped images).
///
/// # Errors
///
/// Returns a boxed error if dataset generation or evaluation fails.
pub fn mean_iou_over_dataset(
    method: Method,
    dataset: &SyntheticDataset,
    samples: usize,
    seghdc_config: &SegHdcConfig,
    baseline_config: &KimConfig,
) -> Result<f64, Box<dyn std::error::Error>> {
    let count = samples.min(dataset.len());
    let mut images = Vec::with_capacity(count);
    let mut truths = Vec::with_capacity(count);
    for index in 0..count {
        let sample = dataset.sample(index)?;
        images.push(sample.image);
        truths.push(sample.ground_truth);
    }
    let scores = evaluate_method_batch(method, &images, &truths, seghdc_config, baseline_config)?;
    Ok(scores.iter().sum::<f64>() / count as f64)
}

/// Formats a duration in seconds with one decimal, as in the paper's tables.
pub fn format_seconds(duration: std::time::Duration) -> String {
    format!("{:.1}s", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profiles_are_smaller_than_full_profiles() {
        let quick = dataset_profiles(Scale::Quick);
        let full = dataset_profiles(Scale::Full);
        assert_eq!(quick.len(), 3);
        assert_eq!(full.len(), 3);
        for (q, f) in quick.iter().zip(&full) {
            assert!(q.width < f.width);
            assert_eq!(q.name, f.name);
        }
        assert!(samples_per_dataset(Scale::Quick) < samples_per_dataset(Scale::Full));
    }

    #[test]
    fn per_dataset_configs_follow_table_one() {
        let full = dataset_profiles(Scale::Full);
        let bbbc = seghdc_config_for(&full[0], Scale::Full);
        let dsb = seghdc_config_for(&full[1], Scale::Full);
        let monu = seghdc_config_for(&full[2], Scale::Full);
        assert_eq!(bbbc.beta, 21);
        assert_eq!(dsb.beta, 26);
        assert_eq!(monu.clusters, 3);
        // Quick mode shrinks the dimension but keeps the cluster counts.
        let quick = seghdc_config_for(&full[2], Scale::Quick);
        assert_eq!(quick.clusters, 3);
        assert!(quick.dimension < monu.dimension);
        quick.validate().unwrap();
    }

    #[test]
    fn tiny_scale_shrinks_everything_further() {
        let tiny = dataset_profiles(Scale::Tiny);
        assert!(tiny.iter().all(|p| p.width == 16 && p.height == 16));
        assert_eq!(samples_per_dataset(Scale::Tiny), 1);
        for profile in &tiny {
            let config = seghdc_config_for(profile, Scale::Tiny);
            assert!(config.dimension <= 256);
            config.validate().unwrap();
        }
        assert_eq!(
            baseline_config_for(Scale::Tiny).feature_channels,
            KimConfig::tiny().feature_channels
        );
    }

    #[test]
    fn batch_evaluation_matches_single_image_evaluation() {
        let profile = DatasetProfile::bbbc005_like().scaled(24, 24);
        let dataset = SyntheticDataset::new(profile.clone(), 9, 2).unwrap();
        let mut config = seghdc_config_for(&profile, Scale::Tiny);
        config.dimension = 512;
        let mut images = Vec::new();
        let mut truths = Vec::new();
        for index in 0..2 {
            let sample = dataset.sample(index).unwrap();
            images.push(sample.image);
            truths.push(sample.ground_truth);
        }
        let batch = evaluate_method_batch(
            Method::SegHdc,
            &images,
            &truths,
            &config,
            &KimConfig::tiny(),
        )
        .unwrap();
        assert_eq!(batch.len(), 2);
        for (index, score) in batch.iter().enumerate() {
            let single = evaluate_method(
                Method::SegHdc,
                &images[index],
                &truths[index],
                &config,
                &KimConfig::tiny(),
            )
            .unwrap();
            assert_eq!(*score, single, "image {index}");
        }
        // Length mismatches are rejected.
        assert!(evaluate_method_batch(
            Method::SegHdc,
            &images,
            &truths[..1],
            &config,
            &KimConfig::tiny()
        )
        .is_err());
    }

    #[test]
    fn method_labels_match_the_paper_columns() {
        let labels: Vec<&str> = Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["BL [16]", "RPos", "RColor", "SegHDC"]);
    }

    #[test]
    fn evaluate_method_runs_seghdc_on_a_tiny_sample() {
        let profile = DatasetProfile::bbbc005_like().scaled(48, 48);
        let dataset = SyntheticDataset::new(profile.clone(), 3, 1).unwrap();
        let sample = dataset.sample(0).unwrap();
        let mut config = seghdc_config_for(&profile, Scale::Quick);
        config.dimension = 1000;
        config.iterations = 3;
        let iou = evaluate_method(
            Method::SegHdc,
            &sample.image,
            &sample.ground_truth,
            &config,
            &KimConfig::tiny(),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&iou));
        assert!(
            iou > 0.5,
            "SegHDC should segment the easy profile well: {iou}"
        );
    }

    #[test]
    fn mean_iou_over_dataset_averages_multiple_samples() {
        let profile = DatasetProfile::bbbc005_like().scaled(40, 40);
        let dataset = SyntheticDataset::new(profile.clone(), 5, 2).unwrap();
        let mut config = seghdc_config_for(&profile, Scale::Quick);
        config.dimension = 800;
        config.iterations = 2;
        let mean = mean_iou_over_dataset(Method::SegHdc, &dataset, 2, &config, &KimConfig::tiny())
            .unwrap();
        assert!((0.0..=1.0).contains(&mean));
    }

    #[test]
    fn format_seconds_produces_one_decimal() {
        assert_eq!(
            format_seconds(std::time::Duration::from_millis(1234)),
            "1.2s"
        );
    }
}
