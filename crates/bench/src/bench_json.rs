//! Machine-readable benchmark records (`BENCH_kernels.json`).
//!
//! The `kernels` and `batch_engine` benches append their measurements to
//! one JSON file so the perf trajectory of the kernel layer is tracked in
//! the repository rather than in scrollback. The format is deliberately
//! rigid — a JSON array with exactly one record object per line:
//!
//! ```json
//! [
//! {"op":"hamming","isa":"avx2","dim":16384,"k":1,"ns_per_op":1234.5},
//! {"op":"cluster_matrix_fused","isa":"avx512-vpopcnt","dim":2048,"k":4,"ns_per_op":9.0e6}
//! ]
//! ```
//!
//! Rigid enough that the workspace needs no JSON dependency (the build
//! environment is offline): the writer emits exactly this shape and the
//! parser accepts only it. Records are keyed by `(op, isa, dim, k)`;
//! [`merge_into_file`] replaces same-key records and appends new ones, so
//! the two bench binaries can update the same file without clobbering each
//! other — and re-runs refresh numbers in place.

use std::fmt::Write as _;
use std::path::Path;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Operation name (e.g. `hamming`, `cluster_matrix_fused`).
    pub op: String,
    /// Kernel ISA the measurement ran with (`scalar`, `avx2`, …).
    pub isa: String,
    /// Hypervector dimension of the workload.
    pub dim: usize,
    /// Number of centroids/groups (1 for single-operand kernels).
    pub k: usize,
    /// Median wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
}

impl BenchRecord {
    /// The merge key: records describing the same workload replace each
    /// other.
    pub fn key(&self) -> (String, String, usize, usize) {
        (self.op.clone(), self.isa.clone(), self.dim, self.k)
    }

    /// Renders the record as its canonical single-line JSON object.
    pub fn to_json_line(&self) -> String {
        debug_assert!(is_plain(&self.op) && is_plain(&self.isa));
        format!(
            "{{\"op\":\"{}\",\"isa\":\"{}\",\"dim\":{},\"k\":{},\"ns_per_op\":{:.1}}}",
            self.op, self.isa, self.dim, self.k, self.ns_per_op
        )
    }

    /// Parses one canonical record line (the exact shape
    /// [`to_json_line`](Self::to_json_line) emits, trailing comma allowed).
    pub fn parse_json_line(line: &str) -> Option<Self> {
        let body = line
            .trim()
            .trim_end_matches(',')
            .strip_prefix('{')?
            .strip_suffix('}')?;
        let mut op = None;
        let mut isa = None;
        let mut dim = None;
        let mut k = None;
        let mut ns = None;
        for field in split_top_level_fields(body) {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            match key {
                "op" => op = Some(unquote(value)?),
                "isa" => isa = Some(unquote(value)?),
                "dim" => dim = value.parse::<usize>().ok(),
                "k" => k = value.parse::<usize>().ok(),
                "ns_per_op" => ns = value.parse::<f64>().ok(),
                _ => return None,
            }
        }
        Some(Self {
            op: op?,
            isa: isa?,
            dim: dim?,
            k: k?,
            ns_per_op: ns?,
        })
    }
}

/// Only benign identifier-ish strings may appear in the string fields, so
/// no escaping is ever needed in either direction.
fn is_plain(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn unquote(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    is_plain(inner).then(|| inner.to_string())
}

/// Splits `"a":"b","c":1` on commas (values are never nested, so top-level
/// commas are the only commas outside quotes).
fn split_top_level_fields(body: &str) -> impl Iterator<Item = &str> {
    body.split(',').filter(|f| !f.trim().is_empty())
}

/// Parses a whole `BENCH_kernels.json` body; `None` when any non-bracket
/// line is malformed (strictness keeps hand edits honest).
pub fn parse_file(content: &str) -> Option<Vec<BenchRecord>> {
    let mut records = Vec::new();
    for line in content.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed == "[" || trimmed == "]" {
            continue;
        }
        records.push(BenchRecord::parse_json_line(trimmed)?);
    }
    Some(records)
}

/// Renders records as the canonical file body (sorted by op, dim, k, then
/// ISA, so diffs stay stable across runs).
pub fn render_file(records: &[BenchRecord]) -> String {
    let mut sorted: Vec<&BenchRecord> = records.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.op, a.dim, a.k, &a.isa)
            .partial_cmp(&(&b.op, b.dim, b.k, &b.isa))
            .unwrap()
    });
    let mut out = String::from("[\n");
    for (i, record) in sorted.iter().enumerate() {
        let comma = if i + 1 == sorted.len() { "" } else { "," };
        let _ = writeln!(out, "{}{}", record.to_json_line(), comma);
    }
    out.push_str("]\n");
    out
}

/// Merges `new_records` into the JSON file at `path`: same-key records are
/// replaced, new keys appended, everything else preserved. A missing or
/// unparsable file is treated as empty (a fresh file is written).
///
/// # Errors
///
/// Returns an IO error when the file cannot be written.
pub fn merge_into_file(path: &Path, new_records: &[BenchRecord]) -> std::io::Result<()> {
    let mut records = std::fs::read_to_string(path)
        .ok()
        .and_then(|content| parse_file(&content))
        .unwrap_or_default();
    for new in new_records {
        match records.iter_mut().find(|r| r.key() == new.key()) {
            Some(existing) => *existing = new.clone(),
            None => records.push(new.clone()),
        }
    }
    std::fs::write(path, render_file(&records))
}

/// The bench JSON output path: `SEGHDC_BENCH_JSON` when set, otherwise
/// `BENCH_kernels.json` in the bench crate (the committed location —
/// `cargo bench` runs with the package directory as its working
/// directory).
pub fn default_path() -> std::path::PathBuf {
    std::env::var_os("SEGHDC_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_kernels.json"))
}

/// Median wall-clock nanoseconds per operation: one untimed warm-up, then
/// `samples` timed runs of `routine` (each covering `ops_per_sample`
/// operations), reporting the median sample.
pub fn median_ns_per_op<R>(
    samples: usize,
    ops_per_sample: u64,
    mut routine: impl FnMut() -> R,
) -> f64 {
    assert!(samples > 0 && ops_per_sample > 0);
    std::hint::black_box(routine());
    let mut timings: Vec<u128> = (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(routine());
            start.elapsed().as_nanos()
        })
        .collect();
    timings.sort_unstable();
    timings[timings.len() / 2] as f64 / ops_per_sample as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(op: &str, isa: &str, dim: usize, k: usize, ns: f64) -> BenchRecord {
        BenchRecord {
            op: op.to_string(),
            isa: isa.to_string(),
            dim,
            k,
            ns_per_op: ns,
        }
    }

    #[test]
    fn records_round_trip_through_the_line_format() {
        let r = record("cluster_matrix_fused", "avx512-vpopcnt", 2048, 4, 12345.6);
        let line = r.to_json_line();
        assert_eq!(
            line,
            "{\"op\":\"cluster_matrix_fused\",\"isa\":\"avx512-vpopcnt\",\
             \"dim\":2048,\"k\":4,\"ns_per_op\":12345.6"
                .to_owned()
                + "}"
        );
        assert_eq!(BenchRecord::parse_json_line(&line).unwrap(), r);
        // Trailing comma (non-final array line) parses too.
        assert_eq!(
            BenchRecord::parse_json_line(&format!("{line},")).unwrap(),
            r
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "not json",
            "{\"op\":\"a\",\"isa\":\"b\",\"dim\":1,\"k\":1}",
            "{\"op\":\"a\",\"isa\":\"b\",\"dim\":x,\"k\":1,\"ns_per_op\":1.0}",
            "{\"op\":\"a b\",\"isa\":\"b\",\"dim\":1,\"k\":1,\"ns_per_op\":1.0}",
            "{\"op\":\"a\",\"isa\":\"b\",\"dim\":1,\"k\":1,\"ns_per_op\":1.0,\"extra\":2}",
        ] {
            assert!(BenchRecord::parse_json_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn file_render_and_parse_round_trip_sorted() {
        let records = vec![
            record("b_op", "scalar", 64, 2, 2.0),
            record("a_op", "avx2", 128, 1, 1.0),
            record("a_op", "avx2", 64, 1, 3.0),
        ];
        let body = render_file(&records);
        assert!(body.starts_with("[\n"));
        assert!(body.ends_with("]\n"));
        let parsed = parse_file(&body).unwrap();
        // Sorted by (op, dim, k, isa).
        assert_eq!(parsed[0], records[2]);
        assert_eq!(parsed[1], records[1]);
        assert_eq!(parsed[2], records[0]);
        assert!(parse_file("[\ngarbage\n]\n").is_none());
        assert_eq!(parse_file("[\n]\n").unwrap(), Vec::new());
    }

    #[test]
    fn merge_replaces_same_key_records_and_appends_new_ones() {
        let dir = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_kernels.json");
        let _ = std::fs::remove_file(&path);

        merge_into_file(&path, &[record("op", "scalar", 64, 1, 10.0)]).unwrap();
        merge_into_file(
            &path,
            &[
                record("op", "scalar", 64, 1, 20.0), // replaces
                record("op", "avx2", 64, 1, 5.0),    // appends
            ],
        )
        .unwrap();
        let merged = parse_file(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.len(), 2);
        let scalar = merged.iter().find(|r| r.isa == "scalar").unwrap();
        assert_eq!(scalar.ns_per_op, 20.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn median_timing_counts_each_operation() {
        let mut calls = 0usize;
        let ns = median_ns_per_op(3, 100, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3 samples
        assert!(ns >= 0.0);
    }
}
