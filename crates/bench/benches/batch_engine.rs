//! Benchmarks of the batched `HvMatrix` engine against the naive
//! per-vector baseline it replaced:
//!
//! * per-pixel encoding (`encode_pixel` in a loop, one allocation per
//!   pixel) versus batch encoding (`encode_matrix`, one allocation total);
//! * serial versus parallel K-Means assignment (`RAYON_NUM_THREADS=1`
//!   versus all cores) on the matrix path;
//! * the naive end-to-end pipeline (per-pixel encode + per-vector
//!   `cluster`) versus the batched `segment` path — the ≥2× speedup
//!   acceptance gate of the batch-engine refactor, checked at 128×128 with
//!   d = 2048;
//! * full engine requests through the scalar-pinned backend versus the
//!   default SIMD-auto backend (`backend_scalar_vs_simd`) — the kernel
//!   layer's end-to-end speedup; current numbers live in this crate's
//!   `README.md` ("Kernel layer" section).
//!
//! Reference numbers from the 1-core CI container (release, medians of 10
//! samples):
//!
//! | benchmark            | naive     | batched  | speedup |
//! |----------------------|-----------|----------|---------|
//! | encode 64×64         | 777 µs    | 344 µs   | 2.3×    |
//! | encode 128×128       | 5.31 ms   | 1.41 ms  | 3.8×    |
//! | end-to-end 64×64     | 68.0 ms   | 22.6 ms  | 3.0×    |
//! | end-to-end 128×128   | 274.1 ms  | 91.7 ms  | 3.0×    |
//!
//! Serial and parallel assignment tie on one core; on multi-core hosts the
//! parallel row sweep scales with the worker count.

use criterion::{criterion_group, BenchmarkId, Criterion};
use hdc::kernels;
use hdc::BinaryHypervector;
use imaging::DynamicImage;
use seghdc::{
    DistanceMetric, HvKmeans, PixelEncoder, SegEngine, SegHdc, SegHdcConfig, SegmentRequest,
    SimdCpuBackend,
};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

const DIMENSION: usize = 2048;
const ITERATIONS: usize = 3;

fn sample_image(width: usize, height: usize) -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(width, height);
    NucleiImageGenerator::new(profile, 3)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn config() -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(DIMENSION)
        .beta(8)
        .iterations(ITERATIONS)
        .build()
        .expect("parameters are valid")
}

fn build_encoder(image: &DynamicImage) -> PixelEncoder {
    SegHdc::new(config())
        .expect("config is valid")
        .build_encoder(image.width(), image.height(), image.channels())
        .expect("encoder builds")
}

/// The pre-refactor encoding loop: one heap-allocated hypervector per pixel.
fn encode_per_pixel(encoder: &PixelEncoder, image: &DynamicImage) -> Vec<BinaryHypervector> {
    let mut out = Vec::with_capacity(image.pixel_count());
    for y in 0..image.height() {
        for x in 0..image.width() {
            out.push(encoder.encode_pixel(image, x, y).expect("in bounds"));
        }
    }
    out
}

fn intensities_of(image: &DynamicImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.pixel_count());
    for y in 0..image.height() {
        for x in 0..image.width() {
            out.push(image.intensity_at(x, y).expect("in bounds"));
        }
    }
    out
}

fn bench_encode_per_pixel_vs_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_per_pixel_vs_matrix");
    group.sample_size(10);
    for &size in &[64usize, 128] {
        let image = sample_image(size, size);
        let encoder = build_encoder(&image);
        group.bench_with_input(
            BenchmarkId::new("per_pixel", format!("{size}x{size}")),
            &image,
            |bencher, image| bencher.iter(|| black_box(encode_per_pixel(&encoder, image))),
        );
        group.bench_with_input(
            BenchmarkId::new("matrix", format!("{size}x{size}")),
            &image,
            |bencher, image| bencher.iter(|| black_box(encoder.encode_matrix(image).unwrap())),
        );
    }
    group.finish();
}

fn bench_kmeans_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_assignment_serial_vs_parallel");
    group.sample_size(10);
    for &size in &[64usize, 128] {
        let image = sample_image(size, size);
        let encoder = build_encoder(&image);
        let matrix = encoder.encode_matrix(&image).expect("encoding succeeds");
        let intensities = intensities_of(&image);
        let kmeans = HvKmeans::new(2, ITERATIONS, DistanceMetric::Cosine, false)
            .expect("parameters are valid");
        group.bench_function(
            BenchmarkId::new("serial", format!("{size}x{size}")),
            |bencher| {
                std::env::set_var("RAYON_NUM_THREADS", "1");
                bencher.iter(|| black_box(kmeans.cluster_matrix(&matrix, &intensities).unwrap()));
                std::env::remove_var("RAYON_NUM_THREADS");
            },
        );
        group.bench_function(
            BenchmarkId::new("parallel", format!("{size}x{size}")),
            |bencher| {
                bencher.iter(|| black_box(kmeans.cluster_matrix(&matrix, &intensities).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_naive_vs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_naive_vs_batched");
    group.sample_size(10);
    for &size in &[64usize, 128] {
        let image = sample_image(size, size);
        let engine = SegEngine::new(config()).expect("config is valid");
        group.bench_with_input(
            BenchmarkId::new("naive_per_vector", format!("{size}x{size}")),
            &image,
            |bencher, image| {
                bencher.iter(|| {
                    // The pre-refactor pipeline: per-pixel encode into owned
                    // vectors, then the per-vector reference clusterer.
                    let encoder = build_encoder(image);
                    let pixels = encode_per_pixel(&encoder, image);
                    let intensities = intensities_of(image);
                    let kmeans = HvKmeans::new(2, ITERATIONS, DistanceMetric::Cosine, false)
                        .expect("parameters are valid");
                    black_box(kmeans.cluster(&pixels, &intensities).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_matrix", format!("{size}x{size}")),
            &image,
            |bencher, image| {
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Full engine requests with the scalar-pinned backend versus the default
/// SIMD-auto backend — the end-to-end view of the kernel-layer speedup
/// (labels are byte-identical; see `tests/kernel_equivalence.rs`).
fn bench_backend_scalar_vs_simd(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_scalar_vs_simd");
    group.sample_size(10);
    for &size in &[64usize, 128] {
        let image = sample_image(size, size);
        let scalar_engine = SegEngine::builder(config())
            .backend(Box::new(SimdCpuBackend::scalar()))
            .build()
            .expect("config is valid");
        let simd_engine = SegEngine::builder(config())
            .backend(Box::new(SimdCpuBackend::auto()))
            .build()
            .expect("config is valid");
        let simd_label = format!("simd_auto[{}]", simd_engine.kernel_isa());
        for (name, engine) in [
            ("scalar".to_string(), scalar_engine),
            (simd_label, simd_engine),
        ] {
            // Warm the codebook cache so the comparison isolates the
            // encode + cluster kernels.
            engine
                .run(&SegmentRequest::image(&image).whole_image())
                .expect("segmentation succeeds");
            group.bench_with_input(
                BenchmarkId::new(name, format!("{size}x{size}")),
                &image,
                |bencher, image| {
                    bencher.iter(|| {
                        black_box(
                            engine
                                .run(&SegmentRequest::image(image).whole_image())
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_per_pixel_vs_matrix,
    bench_kmeans_serial_vs_parallel,
    bench_end_to_end_naive_vs_batched,
    bench_backend_scalar_vs_simd
);

/// Times one warm-cache engine request per available kernel ISA and
/// merges the medians into `BENCH_kernels.json` (op `engine_run`), the
/// same machine-readable file the `kernels` bench writes. The criterion
/// stub exposes no sample data, so this pass times itself.
fn emit_engine_records() {
    use seghdc_bench::bench_json::{self, BenchRecord};

    let size = 128usize;
    let image = sample_image(size, size);
    let cfg = config();
    let clusters = cfg.clusters;
    let mut records = Vec::new();
    for k in kernels::available() {
        let engine = SegEngine::builder(config())
            .backend(Box::new(SimdCpuBackend::with_kernels(k)))
            .build()
            .expect("config is valid");
        // Warm the codebook cache so the measurement isolates the
        // encode + cluster kernels.
        engine
            .run(&SegmentRequest::image(&image).whole_image())
            .expect("segmentation succeeds");
        let ns = bench_json::median_ns_per_op(10, 1, || {
            black_box(
                engine
                    .run(&SegmentRequest::image(&image).whole_image())
                    .unwrap(),
            )
        });
        println!("engine_run[{}] {size}x{size}: {:.1} ns/run", k.name(), ns);
        records.push(BenchRecord {
            op: "engine_run".to_string(),
            isa: k.name().to_string(),
            dim: DIMENSION,
            k: clusters,
            ns_per_op: ns,
        });
    }
    let path = bench_json::default_path();
    bench_json::merge_into_file(&path, &records).expect("bench JSON is writable");
    println!("merged {} records into {}", records.len(), path.display());
}

fn main() {
    benches();
    emit_engine_records();
}
