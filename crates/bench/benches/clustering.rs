//! Benchmarks of the HV K-Means clusterer: cost per iteration (the slope of
//! Fig. 7a's latency series) and the cosine-vs-Hamming distance ablation
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::HvMatrix;
use imaging::DynamicImage;
use seghdc::{DistanceMetric, HvKmeans, SegHdc, SegHdcConfig};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn encoded_pixels(dim: usize) -> (HvMatrix, Vec<u8>) {
    let profile = DatasetProfile::dsb2018_like().scaled(48, 48);
    let sample = NucleiImageGenerator::new(profile, 5)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds");
    let image: DynamicImage = sample.image;
    let config = SegHdcConfig::builder()
        .dimension(dim)
        .beta(8)
        .iterations(1)
        .build()
        .expect("config is valid");
    let pipeline = SegHdc::new(config).expect("pipeline builds");
    let encoder = pipeline
        .build_encoder(image.width(), image.height(), image.channels())
        .expect("encoder builds");
    let matrix = encoder.encode_matrix(&image).expect("encoding succeeds");
    let mut intensities = Vec::with_capacity(image.pixel_count());
    for y in 0..image.height() {
        for x in 0..image.width() {
            intensities.push(image.intensity_at(x, y).expect("in bounds"));
        }
    }
    (matrix, intensities)
}

fn bench_iteration_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_by_iteration_count");
    group.sample_size(10);
    let (pixels, intensities) = encoded_pixels(800);
    for &iterations in &[1usize, 3, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |bencher, &iterations| {
                let kmeans = HvKmeans::new(2, iterations, DistanceMetric::Cosine, false)
                    .expect("parameters are valid");
                bencher.iter(|| black_box(kmeans.cluster_matrix(&pixels, &intensities).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_distance_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_by_distance_metric");
    group.sample_size(10);
    let (pixels, intensities) = encoded_pixels(800);
    for (name, metric) in [
        ("cosine", DistanceMetric::Cosine),
        ("hamming", DistanceMetric::Hamming),
    ] {
        group.bench_function(name, |bencher| {
            let kmeans = HvKmeans::new(2, 3, metric, false).expect("parameters are valid");
            bencher.iter(|| black_box(kmeans.cluster_matrix(&pixels, &intensities).unwrap()))
        });
    }
    group.finish();
}

fn bench_cluster_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_by_cluster_count");
    group.sample_size(10);
    let (pixels, intensities) = encoded_pixels(800);
    for &clusters in &[2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clusters),
            &clusters,
            |bencher, &clusters| {
                let kmeans = HvKmeans::new(clusters, 3, DistanceMetric::Cosine, false)
                    .expect("parameters are valid");
                bencher.iter(|| black_box(kmeans.cluster_matrix(&pixels, &intensities).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_iteration_count,
    bench_distance_metric,
    bench_cluster_count
);
criterion_main!(benches);
