//! Benchmarks of the SegHDC encoding stage (position + colour + pixel HV
//! production) across position-encoding variants and hypervector
//! dimensions — the encoding half of the latency series of Fig. 7(b) and
//! the ablation of the encoding design choice (Table I RPos/RColor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::DynamicImage;
use seghdc::{PositionEncoding, SegHdc, SegHdcConfig};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn sample_image(width: usize, height: usize) -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(width, height);
    NucleiImageGenerator::new(profile, 3)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn config(dimension: usize, encoding: PositionEncoding) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(dimension)
        .beta(8)
        .iterations(1)
        .position_encoding(encoding)
        .build()
        .expect("parameters are valid")
}

fn bench_encode_by_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_matrix_by_dimension");
    group.sample_size(10);
    let image = sample_image(64, 64);
    for &dim in &[200usize, 400, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, &dim| {
            let pipeline = SegHdc::new(config(dim, PositionEncoding::BlockDecayManhattan))
                .expect("config is valid");
            let encoder = pipeline
                .build_encoder(image.width(), image.height(), image.channels())
                .expect("encoder builds");
            bencher.iter(|| black_box(encoder.encode_matrix(&image).unwrap()))
        });
    }
    group.finish();
}

fn bench_encode_by_variant(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_matrix_by_position_variant");
    group.sample_size(10);
    let image = sample_image(64, 64);
    let variants = [
        ("uniform", PositionEncoding::Uniform),
        ("manhattan", PositionEncoding::Manhattan),
        ("block_decay", PositionEncoding::BlockDecayManhattan),
        ("random", PositionEncoding::Random),
    ];
    for (name, variant) in variants {
        group.bench_function(name, |bencher| {
            let pipeline = SegHdc::new(config(800, variant)).expect("config is valid");
            let encoder = pipeline
                .build_encoder(image.width(), image.height(), image.channels())
                .expect("encoder builds");
            bencher.iter(|| black_box(encoder.encode_matrix(&image).unwrap()))
        });
    }
    group.finish();
}

fn bench_codebook_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_construction");
    group.sample_size(10);
    let image = sample_image(64, 64);
    for &dim in &[800usize, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, &dim| {
            let pipeline = SegHdc::new(config(dim, PositionEncoding::BlockDecayManhattan))
                .expect("config is valid");
            bencher.iter(|| {
                black_box(
                    pipeline
                        .build_encoder(image.width(), image.height(), image.channels())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_by_dimension,
    bench_encode_by_variant,
    bench_codebook_construction
);
criterion_main!(benches);
