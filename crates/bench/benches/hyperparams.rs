//! Hyper-parameter ablation benchmarks: the cost impact of the block size
//! `β` and the colour weighting `γ` — the remaining design choices listed in
//! DESIGN.md. (Their *accuracy* impact is covered by the Table I harness and
//! the unit tests; these benches track the latency side.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::DynamicImage;
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn sample_image() -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(64, 64);
    NucleiImageGenerator::new(profile, 21)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn bench_beta(c: &mut Criterion) {
    let mut group = c.benchmark_group("seghdc_by_beta");
    group.sample_size(10);
    let image = sample_image();
    for &beta in &[1usize, 8, 26] {
        group.bench_with_input(
            BenchmarkId::from_parameter(beta),
            &beta,
            |bencher, &beta| {
                let config = SegHdcConfig::builder()
                    .dimension(800)
                    .beta(beta)
                    .iterations(3)
                    .build()
                    .expect("parameters are valid");
                let engine = SegEngine::new(config).expect("engine builds");
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(&image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("seghdc_by_gamma");
    group.sample_size(10);
    let image = sample_image();
    for &gamma in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(gamma),
            &gamma,
            |bencher, &gamma| {
                let config = SegHdcConfig::builder()
                    .dimension(800)
                    .beta(8)
                    .gamma(gamma)
                    .iterations(3)
                    .build()
                    .expect("parameters are valid");
                let engine = SegEngine::new(config).expect("engine builds");
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(&image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_cluster_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("seghdc_by_cluster_count");
    group.sample_size(10);
    let image = sample_image();
    for &clusters in &[2usize, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clusters),
            &clusters,
            |bencher, &clusters| {
                let config = SegHdcConfig::builder()
                    .dimension(800)
                    .beta(8)
                    .clusters(clusters)
                    .iterations(3)
                    .build()
                    .expect("parameters are valid");
                let engine = SegEngine::new(config).expect("engine builds");
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(&image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_beta, bench_gamma, bench_cluster_count);
criterion_main!(benches);
