//! Per-ISA benchmarks of the unified word-kernel layer.
//!
//! Measures the raw `hdc::kernels` operations the pipeline's hot loops
//! dispatch through (popcount-fused Hamming, bit-sliced plane dots,
//! vertical-counter carry adds, XOR binds), the K-Means assignment step
//! in both shapes — the pre-fusion per-centroid path (one virtual
//! `and_popcount` per plane per centroid, K row popcounts per pixel;
//! the PR 4 loop) against the fused `BitSlicedGroup` path
//! (`plane_dot_multi`, one row load and one popcount per pixel) — and
//! the composed
//! `cluster_matrix_with` iteration, for **every** kernel ISA the host
//! supports (`hdc::kernels::available()`), not just scalar-versus-auto.
//!
//! Timing is a median over `SAMPLES` wall-clock runs after one warm-up
//! (the vendored criterion stub exposes no sample data, so the bench
//! times itself). Besides the human-readable report, every measurement
//! is merged into `crates/bench/BENCH_kernels.json` (override the path
//! with `SEGHDC_BENCH_JSON`) as `(op, isa, dim, k, ns_per_op)` records —
//! the machine-readable perf trajectory referenced by
//! `crates/bench/README.md` ("Kernel layer" section).

use hdc::kernels::{self, Kernels};
use hdc::{Accumulator, BinaryHypervector, BitSlicedGroup, HdcRng, HvMatrix};
use seghdc::{DistanceMetric, HvKmeans};
use seghdc_bench::bench_json::{self, BenchRecord};
use std::hint::black_box;

const DIMENSION: usize = 16_384;
const ROWS: usize = 2_000;
const SAMPLES: usize = 10;

/// The composed-stage workload: a 128x128 image's worth of rows at the
/// paper's edge dimension, with the issue's K = 4 centroids.
const IMAGE_ROWS: usize = 128 * 128;
const IMAGE_DIMENSION: usize = 2_048;
const CLUSTERS: usize = 4;

fn random_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
    let mut rng = HdcRng::seed_from(seed);
    let vectors: Vec<BinaryHypervector> = (0..rows)
        .map(|_| BinaryHypervector::random(dim, &mut rng))
        .collect();
    HvMatrix::from_vectors(&vectors).expect("vectors share a dimension")
}

/// Bundled centroids in realistic mid-iteration K-Means state: centroid
/// `c` bundles a disjoint `rows / clusters` share of the matrix rows, so
/// its counts carry the 11+ bit planes that actual `cluster_matrix`
/// centroids have once every pixel is assigned (thousands of members per
/// cluster) — the plane depth both assignment paths scale with.
fn sample_centroids(matrix: &HvMatrix, clusters: usize, kernels: &dyn Kernels) -> Vec<Accumulator> {
    let share = matrix.rows() / clusters;
    (0..clusters)
        .map(|c| {
            let mut acc = Accumulator::zeros(matrix.dim()).expect("dimension is non-zero");
            for row in (c * share)..(c * share + share) {
                acc.add_row_with(matrix.row(row), kernels)
                    .expect("dims match");
            }
            acc
        })
        .collect()
}

struct Reporter {
    records: Vec<BenchRecord>,
}

impl Reporter {
    fn record(&mut self, op: &str, isa: &str, dim: usize, k: usize, ns_per_op: f64) {
        println!("{op:28} {isa:16} d={dim:<6} k={k}  {ns_per_op:12.1} ns/op");
        self.records.push(BenchRecord {
            op: op.to_string(),
            isa: isa.to_string(),
            dim,
            k,
            ns_per_op,
        });
    }
}

fn bench_hamming(report: &mut Reporter) {
    let matrix = random_matrix(ROWS, DIMENSION, 1);
    let probe = matrix.row(0).to_hypervector();
    for k in kernels::available() {
        let ns = bench_json::median_ns_per_op(SAMPLES, ROWS as u64, || {
            let mut total = 0u64;
            for row in 0..ROWS {
                total += k.hamming(matrix.row(row).as_words(), probe.as_words());
            }
            black_box(total)
        });
        report.record("hamming", k.name(), DIMENSION, 1, ns);
    }
}

fn bench_plane_dot(report: &mut Reporter) {
    let matrix = random_matrix(ROWS, DIMENSION, 2);
    let mut accumulator = Accumulator::zeros(DIMENSION).expect("dimension is non-zero");
    for row in 0..9 {
        accumulator.add_row(matrix.row(row)).expect("dims match");
    }
    for k in kernels::available() {
        let sliced = accumulator.to_bit_sliced_with(k);
        let ns = bench_json::median_ns_per_op(SAMPLES, ROWS as u64, || {
            let mut total = 0u64;
            for row in 0..ROWS {
                total += sliced.dot_row_with(matrix.row(row), k).expect("dims match");
            }
            black_box(total)
        });
        report.record("plane_dot", k.name(), DIMENSION, 1, ns);
    }
}

fn bench_bundle_add(report: &mut Reporter) {
    let matrix = random_matrix(ROWS, DIMENSION, 3);
    for k in kernels::available() {
        let ns = bench_json::median_ns_per_op(SAMPLES, ROWS as u64, || {
            let mut accumulator = Accumulator::zeros(DIMENSION).expect("non-zero");
            for row in 0..ROWS {
                accumulator
                    .add_row_with(matrix.row(row), k)
                    .expect("dims match");
            }
            black_box(accumulator.items())
        });
        report.record("bundle_add", k.name(), DIMENSION, 1, ns);
    }
}

fn bench_xor_into(report: &mut Reporter) {
    let matrix = random_matrix(ROWS, DIMENSION, 4);
    let key = matrix.row(0).to_hypervector();
    for k in kernels::available() {
        let mut scratch = random_matrix(ROWS, DIMENSION, 5);
        let ns = bench_json::median_ns_per_op(SAMPLES, ROWS as u64, || {
            for row in 0..ROWS {
                scratch
                    .row_mut(row)
                    .xor_assign_with(&key, k)
                    .expect("dims match");
            }
            black_box(scratch.row(0).count_ones())
        });
        report.record("xor_into", k.name(), DIMENSION, 1, ns);
    }
}

/// A centroid snapshot in the exact shape the PR 4 assignment loop
/// consumed: separately-owned bit planes plus the cached norm.
struct Pr4Centroid {
    planes: Vec<Vec<u64>>,
    norm: f64,
}

impl Pr4Centroid {
    fn from_accumulator(acc: &Accumulator, k: &dyn Kernels) -> Self {
        let counts = acc.counts();
        let words_per_plane = acc.dim().div_ceil(64);
        let mut planes = vec![vec![0u64; words_per_plane]; acc.plane_count()];
        for (i, &count) in counts.iter().enumerate() {
            for (p, plane) in planes.iter_mut().enumerate() {
                plane[i / 64] |= u64::from((count >> p) & 1) << (i % 64);
            }
        }
        Self {
            planes,
            norm: acc.norm_with(k),
        }
    }
}

/// The pre-fusion assignment loop, reproduced at PR 4 fidelity: the dot
/// against each centroid is one virtual `and_popcount` call **per plane**
/// (each with its own horizontal reduction), and every centroid
/// re-popcounts the pixel row for the cosine denominator.
fn assign_per_centroid(
    matrix: &HvMatrix,
    centroids: &[Pr4Centroid],
    labels: &mut [u32],
    k: &dyn Kernels,
) {
    for (row_idx, label) in labels.iter_mut().enumerate() {
        let row = matrix.row(row_idx);
        let row_words = row.as_words();
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let mut dot = 0u64;
            for (p, plane) in centroid.planes.iter().enumerate() {
                dot += k.and_popcount(plane, row_words) << p;
            }
            let ones = k.popcount(row_words);
            let similarity = if centroid.norm == 0.0 || ones == 0 {
                0.0
            } else {
                dot as f64 / (centroid.norm * (ones as f64).sqrt())
            };
            let distance = 1.0 - similarity;
            if distance < best_distance {
                best_distance = distance;
                best = c;
            }
        }
        *label = best as u32;
    }
}

/// The fused assignment loop: all K dots from one `plane_dot_multi`
/// sweep, one row popcount, distances from the group's cached norms.
fn assign_fused(matrix: &HvMatrix, group: &BitSlicedGroup, labels: &mut [u32], k: &dyn Kernels) {
    let clusters = group.len();
    let mut dots = vec![0u64; clusters];
    for (row_idx, label) in labels.iter_mut().enumerate() {
        let row = matrix.row(row_idx);
        dots.fill(0);
        group.dot_row_range_with(0..clusters, row, &mut dots, k);
        let ones = k.popcount(row.as_words()) as usize;
        let row_norm = (ones as f64).sqrt();
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (c, &dot) in dots.iter().enumerate() {
            let distance = group.cosine_distance_with_row_norm(c, dot, row_norm);
            if distance < best_distance {
                best_distance = distance;
                best = c;
            }
        }
        *label = best as u32;
    }
}

/// Fused versus per-centroid cosine assignment over a full image's rows —
/// the acceptance workload of the fusion issue (128x128, d = 2048, K = 4).
fn bench_assignment(report: &mut Reporter) {
    let matrix = random_matrix(IMAGE_ROWS, IMAGE_DIMENSION, 6);
    for k in kernels::available() {
        let centroids = sample_centroids(&matrix, CLUSTERS, k);
        let pr4: Vec<Pr4Centroid> = centroids
            .iter()
            .map(|c| Pr4Centroid::from_accumulator(c, k))
            .collect();
        let group = BitSlicedGroup::from_accumulators(&centroids, k).expect("dims match");
        let mut labels = vec![0u32; IMAGE_ROWS];

        let ns = bench_json::median_ns_per_op(SAMPLES, IMAGE_ROWS as u64, || {
            assign_per_centroid(&matrix, &pr4, &mut labels, k);
            black_box(labels[0])
        });
        report.record(
            "assign_per_centroid",
            k.name(),
            IMAGE_DIMENSION,
            CLUSTERS,
            ns,
        );
        let per_centroid_ns = ns;

        let ns = bench_json::median_ns_per_op(SAMPLES, IMAGE_ROWS as u64, || {
            assign_fused(&matrix, &group, &mut labels, k);
            black_box(labels[0])
        });
        report.record("assign_fused", k.name(), IMAGE_DIMENSION, CLUSTERS, ns);
        println!(
            "  -> fused speedup on {}: {:.2}x",
            k.name(),
            per_centroid_ns / ns
        );
    }
}

/// The composed K-Means iteration (`cluster_matrix_with`, now running the
/// fused assignment internally) on the same workload.
fn bench_cluster_iteration(report: &mut Reporter) {
    let matrix = random_matrix(IMAGE_ROWS, IMAGE_DIMENSION, 6);
    let intensities: Vec<u8> = (0..matrix.rows()).map(|i| (i % 251) as u8).collect();
    for clusters in [2usize, CLUSTERS] {
        let kmeans = HvKmeans::new(clusters, 3, DistanceMetric::Cosine, false).expect("valid");
        for k in kernels::available() {
            let ns = bench_json::median_ns_per_op(SAMPLES, 1, || {
                black_box(
                    kmeans
                        .cluster_matrix_with(&matrix, &intensities, k)
                        .expect("clustering succeeds"),
                )
            });
            report.record("cluster_matrix", k.name(), IMAGE_DIMENSION, clusters, ns);
        }
    }
}

fn main() {
    let mut report = Reporter {
        records: Vec::new(),
    };
    println!("kernel-layer benchmarks ({SAMPLES} samples, median):");
    bench_hamming(&mut report);
    bench_plane_dot(&mut report);
    bench_bundle_add(&mut report);
    bench_xor_into(&mut report);
    bench_assignment(&mut report);
    bench_cluster_iteration(&mut report);
    let path = bench_json::default_path();
    bench_json::merge_into_file(&path, &report.records).expect("bench JSON is writable");
    println!(
        "merged {} records into {}",
        report.records.len(),
        path.display()
    );
}
