//! Scalar-versus-SIMD benchmarks of the unified word-kernel layer.
//!
//! Measures the raw `hdc::kernels` operations the pipeline's hot loops
//! dispatch through (popcount-fused Hamming, bit-sliced plane dots,
//! vertical-counter carry adds, XOR binds) and one composed stage — the
//! K-Means iteration (`cluster_matrix_with`) — with the scalar reference
//! kernels against the runtime-detected `auto` selection. On hardware
//! without SIMD support the two selections coincide and the bench acts as
//! a dispatch-overhead check.
//!
//! Results are recorded in `crates/bench/README.md` ("Kernel layer"
//! section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::kernels::{self, Kernels};
use hdc::{Accumulator, BinaryHypervector, HdcRng, HvMatrix};
use seghdc::{DistanceMetric, HvKmeans};
use std::hint::black_box;

const DIMENSION: usize = 16_384;
const ROWS: usize = 2_000;

fn selections() -> Vec<(&'static str, &'static dyn Kernels)> {
    let mut all = vec![("scalar", kernels::scalar())];
    let auto = kernels::auto();
    all.push((auto.name(), auto));
    all
}

fn random_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
    let mut rng = HdcRng::seed_from(seed);
    let vectors: Vec<BinaryHypervector> = (0..rows)
        .map(|_| BinaryHypervector::random(dim, &mut rng))
        .collect();
    HvMatrix::from_vectors(&vectors).expect("vectors share a dimension")
}

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_hamming");
    group.sample_size(10);
    let matrix = random_matrix(ROWS, DIMENSION, 1);
    let probe = matrix.row(0).to_hypervector();
    for (name, k) in selections() {
        group.bench_function(BenchmarkId::new(name, format!("{ROWS}x{DIMENSION}")), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for row in 0..ROWS {
                    total += k.hamming(matrix.row(row).as_words(), probe.as_words());
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_plane_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_plane_dot");
    group.sample_size(10);
    let matrix = random_matrix(ROWS, DIMENSION, 2);
    let mut accumulator = Accumulator::zeros(DIMENSION).expect("dimension is non-zero");
    for row in 0..9 {
        accumulator.add_row(matrix.row(row)).expect("dims match");
    }
    for (name, k) in selections() {
        let sliced = accumulator.to_bit_sliced_with(k);
        group.bench_function(BenchmarkId::new(name, format!("{ROWS}x{DIMENSION}")), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for row in 0..ROWS {
                    total += sliced.dot_row_with(matrix.row(row), k).expect("dims match");
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_bundle_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_bundle_add");
    group.sample_size(10);
    let matrix = random_matrix(ROWS, DIMENSION, 3);
    for (name, k) in selections() {
        group.bench_function(BenchmarkId::new(name, format!("{ROWS}x{DIMENSION}")), |b| {
            b.iter(|| {
                let mut accumulator = Accumulator::zeros(DIMENSION).expect("non-zero");
                for row in 0..ROWS {
                    accumulator
                        .add_row_with(matrix.row(row), k)
                        .expect("dims match");
                }
                black_box(accumulator.items())
            })
        });
    }
    group.finish();
}

fn bench_xor_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_xor_into");
    group.sample_size(10);
    let matrix = random_matrix(ROWS, DIMENSION, 4);
    let key = matrix.row(0).to_hypervector();
    for (name, k) in selections() {
        let mut scratch = random_matrix(ROWS, DIMENSION, 5);
        group.bench_function(BenchmarkId::new(name, format!("{ROWS}x{DIMENSION}")), |b| {
            b.iter(|| {
                for row in 0..ROWS {
                    scratch
                        .row_mut(row)
                        .xor_assign_with(&key, k)
                        .expect("dims match");
                }
                black_box(scratch.row(0).count_ones())
            })
        });
    }
    group.finish();
}

fn bench_cluster_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_cluster_matrix");
    group.sample_size(10);
    // A 128x128 image's worth of rows at the paper's edge dimension.
    let matrix = random_matrix(128 * 128, 2048, 6);
    let intensities: Vec<u8> = (0..matrix.rows()).map(|i| (i % 251) as u8).collect();
    let kmeans = HvKmeans::new(2, 3, DistanceMetric::Cosine, false).expect("valid");
    for (name, k) in selections() {
        group.bench_function(BenchmarkId::new(name, "128x128xd2048"), |b| {
            b.iter(|| {
                black_box(
                    kmeans
                        .cluster_matrix_with(&matrix, &intensities, k)
                        .expect("clustering succeeds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hamming,
    bench_plane_dot,
    bench_bundle_add,
    bench_xor_into,
    bench_cluster_iteration
);
criterion_main!(benches);
