//! End-to-end SegHDC pipeline benchmarks: the full encode-plus-cluster cost
//! as a function of image size (the quantity behind both rows of Table II)
//! and of the iteration count (Fig. 7a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::DynamicImage;
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn sample_image(width: usize, height: usize) -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(width, height);
    NucleiImageGenerator::new(profile, 9)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn edge_config(iterations: usize) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(800)
        .alpha(1.0)
        .beta(8)
        .iterations(iterations)
        .build()
        .expect("parameters are valid")
}

fn bench_by_image_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("seghdc_end_to_end_by_image_size");
    group.sample_size(10);
    for &(width, height) in &[(32usize, 32usize), (64, 64), (96, 96)] {
        let image = sample_image(width, height);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}x{height}")),
            &image,
            |bencher, image| {
                let engine = SegEngine::new(edge_config(3)).expect("config is valid");
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_by_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("seghdc_end_to_end_by_iterations");
    group.sample_size(10);
    let image = sample_image(64, 64);
    for &iterations in &[1usize, 5, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |bencher, &iterations| {
                let engine = SegEngine::new(edge_config(iterations)).expect("config is valid");
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(&image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_image_size, bench_by_iterations);
criterion_main!(benches);
