//! Benchmarks of the CNN baseline's per-image training cost: how it scales
//! with image size and with the number of feature channels. Together with
//! the `end_to_end` SegHDC benchmarks these back the speedup column of
//! Table II (the baseline's per-iteration cost is orders of magnitude higher
//! than a full SegHDC run).

use cnn_baseline::{KimConfig, KimSegmenter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::DynamicImage;
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn sample_image(width: usize, height: usize) -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(width, height);
    NucleiImageGenerator::new(profile, 13)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn short_config(feature_channels: usize) -> KimConfig {
    KimConfig {
        feature_channels,
        max_iterations: 3,
        ..KimConfig::tiny()
    }
}

fn bench_by_image_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_train_by_image_size");
    group.sample_size(10);
    for &(width, height) in &[(32usize, 32usize), (48, 48), (64, 64)] {
        let image = sample_image(width, height);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}x{height}")),
            &image,
            |bencher, image| {
                let segmenter = KimSegmenter::new(short_config(16)).expect("config is valid");
                bencher.iter(|| black_box(segmenter.segment(image).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_by_channel_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_train_by_feature_channels");
    group.sample_size(10);
    let image = sample_image(48, 48);
    for &channels in &[8usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(channels),
            &channels,
            |bencher, &channels| {
                let segmenter = KimSegmenter::new(short_config(channels)).expect("config is valid");
                bencher.iter(|| black_box(segmenter.segment(&image).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_image_size, bench_by_channel_count);
criterion_main!(benches);
