//! Warm-versus-cold codebook-cache latency of the `SegEngine` request
//! path.
//!
//! Building the position/colour codebooks is the per-request fixed cost of
//! a segmentation: it depends on the hypervector dimension and image shape
//! but not on pixel data, which is exactly what the engine's persistent
//! codebook cache amortises. Each workload is measured two ways:
//!
//! * **cold** — a fresh `SegEngine` per request, so every request rebuilds
//!   the codebooks (the behaviour of the deprecated per-call `SegHdc`
//!   wrappers);
//! * **warm** — one long-lived engine across requests, so every request
//!   after the first hits the cache.
//!
//! The `16x16/d=10000` workload is the service-shaped case (small crops,
//! the paper's full dimension) where codebook construction dominates; as
//! the pixel count grows (`32x32/d=8192`, `128x128/d=2048`) encode+cluster
//! dominates and the cache win becomes a smaller constant. Measured
//! numbers live in `crates/bench/README.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::DynamicImage;
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

fn sample_image(edge: usize) -> DynamicImage {
    let profile = DatasetProfile::dsb2018_like().scaled(edge, edge);
    NucleiImageGenerator::new(profile, 7)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn config(dimension: usize) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(dimension)
        .beta(4)
        .iterations(3)
        .build()
        .expect("parameters are valid")
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_cache");
    group.sample_size(10);
    for &(edge, dimension) in &[(16usize, 10_000usize), (32, 8192), (128, 2048)] {
        let image = sample_image(edge);
        let label = format!("{edge}x{edge}_d{dimension}");

        group.bench_function(
            BenchmarkId::new("cold_engine_per_request", &label),
            |bencher| {
                bencher.iter(|| {
                    let engine = SegEngine::new(config(dimension)).expect("config is valid");
                    black_box(engine.run(&SegmentRequest::image(&image)).unwrap())
                })
            },
        );

        let warm = SegEngine::new(config(dimension)).expect("config is valid");
        // Populate the cache once, outside the timing loop.
        warm.run(&SegmentRequest::image(&image)).unwrap();
        group.bench_function(BenchmarkId::new("warm_shared_engine", &label), |bencher| {
            bencher.iter(|| black_box(warm.run(&SegmentRequest::image(&image)).unwrap()))
        });
        let telemetry = warm.telemetry();
        println!(
            "{label}: warm engine served {} hits / {} miss(es), {:.2} MB of codebooks resident",
            telemetry.cache_hits,
            telemetry.cache_misses,
            telemetry.cache_bytes as f64 / 1e6
        );
    }
    group.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
