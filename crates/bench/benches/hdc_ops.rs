//! Micro-benchmarks of the hypervector substrate: the kernels whose cost
//! dominates SegHDC's latency (Table II) and its scaling with the dimension
//! (Fig. 7b). The packed-u64 representation is contrasted with a
//! byte-per-element representation to back the design choice called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::{Accumulator, BinaryHypervector, HdcRng};
use std::hint::black_box;

fn bench_xor_and_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_xor_hamming");
    group.sample_size(20);
    for &dim in &[800usize, 2000, 10_000] {
        let mut rng = HdcRng::seed_from(1);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("xor", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(a.xor(&b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("hamming", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(a.hamming(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_packed_vs_bytewise(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_packed_vs_bytewise");
    group.sample_size(20);
    let dim = 10_000usize;
    let mut rng = HdcRng::seed_from(2);
    let a = BinaryHypervector::random(dim, &mut rng);
    let b = BinaryHypervector::random(dim, &mut rng);
    let a_bytes = a.to_bits();
    let b_bytes = b.to_bits();
    group.bench_function("hamming_packed_u64", |bencher| {
        bencher.iter(|| black_box(a.hamming(&b).unwrap()))
    });
    group.bench_function("hamming_byte_per_element", |bencher| {
        bencher.iter(|| {
            let d: usize = a_bytes.iter().zip(&b_bytes).filter(|(x, y)| x != y).count();
            black_box(d)
        })
    });
    group.finish();
}

fn bench_accumulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_accumulator");
    group.sample_size(20);
    let dim = 2000usize;
    let mut rng = HdcRng::seed_from(3);
    let hvs: Vec<BinaryHypervector> = (0..64)
        .map(|_| BinaryHypervector::random(dim, &mut rng))
        .collect();
    group.bench_function("bundle_64_vectors", |bencher| {
        bencher.iter(|| {
            let mut acc = Accumulator::zeros(dim).unwrap();
            for hv in &hvs {
                acc.add(hv).unwrap();
            }
            black_box(acc)
        })
    });
    let mut acc = Accumulator::zeros(dim).unwrap();
    for hv in &hvs {
        acc.add(hv).unwrap();
    }
    group.bench_function("cosine_distance_to_centroid", |bencher| {
        bencher.iter(|| black_box(acc.cosine_distance(&hvs[0]).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_xor_and_hamming,
    bench_packed_vs_bytewise,
    bench_accumulator
);
criterion_main!(benches);
