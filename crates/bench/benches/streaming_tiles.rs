//! Benchmarks of streaming tiled segmentation against the whole-image
//! path on a synthetic microscopy scan.
//!
//! The point of `segment_streaming` is memory, not raw speed: the
//! whole-image path allocates one `pixels × d` matrix, the streaming path
//! roughly one halo-padded tile. The bench reports both wall-clock times
//! (the streaming path pays the halo overlap re-encode plus the stitch, so
//! expect a modest constant-factor cost) and prints the measured peak
//! matrix bytes per variant so the memory trade is visible next to the
//! latency numbers.
//!
//! Reference numbers from the 1-core CI container (release, d = 2048,
//! 3 iterations, 64-px tiles + 4-px halo, medians of 10):
//!
//! | image   | whole-image | streaming | peak matrix (whole → streaming) |
//! |---------|-------------|-----------|---------------------------------|
//! | 128×128 | 90.0 ms     | 121.6 ms  | 4.19 MB → 1.18 MB (3.5×)        |
//! | 256×256 | 413.1 ms    | 558.3 ms  | 16.78 MB → 1.33 MB (12.6×)      |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::{DynamicImage, ImageView};
use seghdc::{SegEngine, SegHdcConfig, SegmentRequest, TileConfig};
use std::hint::black_box;
use synthdata::{DatasetProfile, NucleiImageGenerator};

const DIMENSION: usize = 2048;

fn scan_image(edge: usize) -> DynamicImage {
    let profile = DatasetProfile::microscopy_scan_like().scaled(edge, edge);
    NucleiImageGenerator::new(profile, 17)
        .expect("profile is valid")
        .generate(0)
        .expect("generation succeeds")
        .image
}

fn engine() -> SegEngine {
    let config = SegHdcConfig::builder()
        .dimension(DIMENSION)
        .beta(8)
        .iterations(3)
        .build()
        .expect("parameters are valid");
    SegEngine::new(config).expect("config is valid")
}

fn bench_whole_vs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_image_vs_streaming_tiles");
    group.sample_size(10);
    let engine = engine();
    for &edge in &[128usize, 256] {
        let image = scan_image(edge);
        let tiles = TileConfig::square(64, 4).expect("tile parameters are valid");

        // Report the memory trade once per size, outside the timing loop.
        let view = ImageView::full(&image);
        let mut arena = seghdc::TileArena::new();
        engine
            .run_tiled_in(&view, &tiles, &mut arena)
            .expect("streaming segmentation succeeds");
        let whole_bytes = edge * edge * DIMENSION.div_ceil(64) * 8;
        println!(
            "{edge}x{edge}: whole-image matrix {whole_bytes} B, streaming peak {} B ({:.1}x less)",
            arena.peak_matrix_bytes(),
            whole_bytes as f64 / arena.peak_matrix_bytes() as f64
        );

        group.bench_with_input(
            BenchmarkId::new("whole_image", format!("{edge}x{edge}")),
            &image,
            |bencher, image| {
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(image).whole_image())
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_64px_tiles", format!("{edge}x{edge}")),
            &image,
            |bencher, image| {
                bencher.iter(|| {
                    black_box(
                        engine
                            .run(&SegmentRequest::image(image).tiled(tiles))
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_streaming_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_batch");
    group.sample_size(10);
    let engine = engine();
    let images: Vec<DynamicImage> = (0..2).map(|_| scan_image(128)).collect();
    let tiles = TileConfig::square(64, 4).expect("tile parameters are valid");
    group.bench_function(BenchmarkId::from_parameter("2x128x128"), |bencher| {
        bencher.iter(|| {
            black_box(
                engine
                    .run(&SegmentRequest::batch(&images).tiled(tiles))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_whole_vs_streaming, bench_streaming_batch);
criterion_main!(benches);
