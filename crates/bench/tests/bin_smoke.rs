//! Smoke tests for every experiment binary: each must run to completion on
//! a tiny (16×16-class) workload and produce output. The binaries were
//! previously untested and broke silently on API changes; this harness runs
//! the real executables (cargo exposes their paths via `CARGO_BIN_EXE_*`)
//! with `--tiny`.

use std::process::Command;

fn run_bin(path: &str, name: &str) {
    let output = Command::new(path)
        .arg("--tiny")
        .output()
        .unwrap_or_else(|err| panic!("failed to launch {name}: {err}"));
    assert!(
        output.status.success(),
        "{name} --tiny exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "{name} --tiny printed nothing on stdout"
    );
}

#[test]
fn table1_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_table1"), "table1");
}

#[test]
fn table2_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_table2"), "table2");
}

#[test]
fn figure3_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_figure3"), "figure3");
}

#[test]
fn figure6_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_figure6"), "figure6");
}

#[test]
fn figure7a_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_figure7a"), "figure7a");
}

#[test]
fn figure7b_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_figure7b"), "figure7b");
}

#[test]
fn figure8_runs_on_a_tiny_workload() {
    run_bin(env!("CARGO_BIN_EXE_figure8"), "figure8");
}
