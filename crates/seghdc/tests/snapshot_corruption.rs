//! Hardening tests for the snapshot decoder: corrupt input of every kind
//! must map to a typed [`SnapshotError`] — never a panic, never an
//! allocation beyond the input's own size.

use proptest::prelude::*;
use seghdc::cache::CodebookKey;
use seghdc::snapshot::{CentroidSetSnapshot, Snapshot, SnapshotError, SNAPSHOT_MAGIC};
use seghdc::{SegHdc, SegHdcConfig};
use std::sync::Arc;

fn config(seed: u64) -> SegHdcConfig {
    SegHdcConfig::builder()
        .dimension(192)
        .beta(2)
        .iterations(1)
        .seed(seed)
        .build()
        .unwrap()
}

/// One representative snapshot with both section kinds populated.
fn sample_bytes() -> Vec<u8> {
    let cfg = config(11);
    let key = CodebookKey::for_shape(&cfg, 7, 5, 1);
    let encoder = SegHdc::new(cfg).unwrap().build_encoder(7, 5, 1).unwrap();
    let mut snapshot = Snapshot::new();
    snapshot.push_codebook(key, Arc::new(encoder)).unwrap();

    let mut acc = hdc::Accumulator::zeros(100).unwrap();
    let mut rng = hdc::HdcRng::seed_from(5);
    for _ in 0..6 {
        acc.add(&hdc::BinaryHypervector::random(100, &mut rng))
            .unwrap();
    }
    snapshot.push_centroid_set(CentroidSetSnapshot {
        key,
        centroids: vec![acc.to_bit_sliced()],
    });
    snapshot.to_bytes()
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[0] = b'X';
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::BadMagic { found }) => assert_eq!(&found[1..], &SNAPSHOT_MAGIC[1..]),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn wrong_version_is_rejected_with_the_declared_version() {
    let mut bytes = sample_bytes();
    // Version bytes sit right after the 4-byte magic. Patch, then re-seal
    // the checksum so the version check (not the checksum) is what fires.
    bytes[4] = 0x2a;
    bytes[5] = 0x00;
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion(version)) => assert_eq!(version, 0x2a),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn every_truncation_length_is_a_typed_error() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        match Snapshot::from_bytes(&bytes[..len]) {
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch
                | SnapshotError::BadMagic { .. },
            ) => {}
            other => panic!("truncation to {len} bytes: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn oversized_declared_counts_are_capped_before_allocation() {
    let bytes = sample_bytes();
    // The codebook-count field lives at offset 6 (magic 4 + version 2).
    // Declare u32::MAX sections: the cap check must fire without the
    // decoder attempting to materialize them.
    let mut patched = bytes.clone();
    patched[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut patched);
    match Snapshot::from_bytes(&patched) {
        Err(SnapshotError::LengthCap { len, .. }) => assert_eq!(len, u64::from(u32::MAX)),
        other => panic!("expected LengthCap, got {other:?}"),
    }

    // Same for the centroid-set count at offset 10.
    let mut patched = bytes.clone();
    patched[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut patched);
    assert!(matches!(
        Snapshot::from_bytes(&patched),
        Err(SnapshotError::LengthCap { .. })
    ));
}

#[test]
fn a_huge_dimension_inside_a_key_is_capped() {
    let bytes = sample_bytes();
    // The first codebook key starts at offset 14; its dimension is the
    // u64 after the 8-byte seed.
    let mut patched = bytes.clone();
    patched[22..30].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut patched);
    match Snapshot::from_bytes(&patched) {
        Err(SnapshotError::LengthCap { field, .. }) => assert_eq!(field, "key dimension"),
        other => panic!("expected LengthCap on the dimension, got {other:?}"),
    }
}

#[test]
fn flipped_checksum_bytes_are_detected() {
    let bytes = sample_bytes();
    let len = bytes.len();
    for offset in len - 8..len {
        let mut patched = bytes.clone();
        patched[offset] ^= 0x01;
        assert!(
            matches!(
                Snapshot::from_bytes(&patched),
                Err(SnapshotError::ChecksumMismatch)
            ),
            "flip at trailer offset {offset}"
        );
    }
}

#[test]
fn trailing_garbage_inside_the_sealed_body_is_rejected() {
    // Append bytes between the last section and the checksum, re-seal:
    // the checksum passes but the decoder must notice the leftovers.
    let mut bytes = sample_bytes();
    let trailer_at = bytes.len() - 8;
    bytes.splice(trailer_at..trailer_at, [0xAA, 0xBB, 0xCC]);
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        // Depending on where the cursor lands the spare bytes are either
        // left over after the sections or consumed into a field that then
        // fails validation; both are acceptable typed outcomes, a silent
        // success is not.
        Err(
            SnapshotError::TrailingBytes(_)
            | SnapshotError::Truncated { .. }
            | SnapshotError::InvalidField { .. }
            | SnapshotError::LengthCap { .. },
        ) => {}
        other => panic!("expected a typed error, got {other:?}"),
    }
}

/// Recomputes the FNV-1a-64 trailer after a deliberate body patch.
fn reseal(bytes: &mut [u8]) {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let body_len = bytes.len() - 8;
    for &byte in &bytes[..body_len] {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    bytes[body_len..].copy_from_slice(&hash.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single flipped byte decodes to a typed error or (for flips that
    /// cancel out semantically, which a checksum can in principle admit) a
    /// well-formed snapshot — never a panic.
    #[test]
    fn random_single_byte_flips_never_panic(offset_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = sample_bytes();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= 1 << bit;
        let _ = Snapshot::from_bytes(&bytes);
    }

    /// Any flipped byte with a re-sealed checksum — so corruption reaches
    /// the section decoders instead of stopping at the trailer — still
    /// never panics and never silently corrupts a length check.
    #[test]
    fn resealed_body_corruption_never_panics(offset_frac in 0.0f64..1.0, byte in any::<u8>()) {
        let mut bytes = sample_bytes();
        let body_len = bytes.len() - 8;
        let offset = ((body_len - 1) as f64 * offset_frac) as usize;
        bytes[offset] = byte;
        reseal(&mut bytes);
        let _ = Snapshot::from_bytes(&bytes);
    }

    /// Random truncation points (with the remainder re-sealed so the
    /// checksum is valid for the shortened body) hit the per-field
    /// truncation guards, not the trailer check.
    #[test]
    fn resealed_truncations_report_truncated_fields(keep_frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let body_len = bytes.len() - 8;
        let keep = 14 + ((body_len - 14) as f64 * keep_frac) as usize;
        if keep >= body_len {
            return Ok(());
        }
        let mut shortened = bytes[..keep].to_vec();
        shortened.extend_from_slice(&[0u8; 8]);
        reseal(&mut shortened);
        match Snapshot::from_bytes(&shortened) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated body decoded successfully"),
        }
    }

    /// Arbitrary random bytes with a valid header and sealed checksum:
    /// the decoder walks garbage sections and must always return an error
    /// (the sample's section counts guarantee content follows).
    #[test]
    fn sealed_random_bodies_never_panic(len in 0usize..512, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut bytes = Vec::with_capacity(14 + len + 8);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one codebook section
        bytes.extend_from_slice(&0u32.to_le_bytes());
        for _ in 0..len {
            // xorshift64* keeps the generator dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8);
        }
        bytes.extend_from_slice(&[0u8; 8]);
        reseal(&mut bytes);
        prop_assert!(Snapshot::from_bytes(&bytes).is_err());
    }
}
