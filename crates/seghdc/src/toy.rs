//! The 3-dimensional toy vectorisation example of Fig. 1.
//!
//! The paper motivates SegHDC with a 3×3 binary image whose pixels are
//! mapped into a 3-dimensional space by summing a per-position vector
//! (XOR of a row vector and a column vector) and a per-colour vector. White
//! pixels land in one small region of the cube, black pixels in another.
//! This module reproduces that construction exactly so the
//! `toy_vectorization` example can print the same picture.

use crate::{Result, SegHdcError};

/// One pixel of the toy example after vectorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToyPixel {
    /// Row of the pixel in the 3×3 image.
    pub row: usize,
    /// Column of the pixel in the 3×3 image.
    pub col: usize,
    /// Whether the input pixel was white (`true`) or black (`false`).
    pub white: bool,
    /// The 3-D coordinates the pixel maps to (sum of position and colour
    /// vectors, element-wise).
    pub coordinates: [u8; 3],
}

/// Vectorises a 3×3 binary image as in Fig. 1.
///
/// `image` is given row-major, `true` for white pixels. The row, column and
/// colour vectors are the fixed example vectors of the figure: positions are
/// XOR combinations of binary row/column codes and the two colours use
/// distinct binary codes; the final coordinate is the element-wise sum of
/// position and colour vectors, so each coordinate is in `{0, 1, 2}`.
///
/// # Errors
///
/// Returns [`SegHdcError::InvalidConfig`] if `image` does not contain
/// exactly 9 pixels.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), seghdc::SegHdcError> {
/// // Checkerboard-ish pattern from the paper's figure.
/// let image = [true, true, false, true, true, false, false, false, true];
/// let pixels = seghdc::toy::vectorize_toy_image(&image)?;
/// assert_eq!(pixels.len(), 9);
/// # Ok(())
/// # }
/// ```
pub fn vectorize_toy_image(image: &[bool]) -> Result<Vec<ToyPixel>> {
    if image.len() != 9 {
        return Err(SegHdcError::InvalidConfig {
            message: format!("the toy example is a 3x3 image; got {} pixels", image.len()),
        });
    }
    // Fixed binary codes (as in the figure: short, hand-picked vectors).
    let row_codes: [[u8; 3]; 3] = [[1, 0, 1], [1, 1, 1], [0, 1, 1]];
    let col_codes: [[u8; 3]; 3] = [[0, 0, 0], [0, 1, 0], [1, 0, 1]];
    let white_code: [u8; 3] = [0, 1, 1];
    let black_code: [u8; 3] = [1, 0, 0];

    let mut out = Vec::with_capacity(9);
    for row in 0..3 {
        for col in 0..3 {
            let white = image[row * 3 + col];
            let color = if white { white_code } else { black_code };
            let mut coordinates = [0u8; 3];
            for (i, coordinate) in coordinates.iter_mut().enumerate() {
                let position = row_codes[row][i] ^ col_codes[col][i];
                *coordinate = position + color[i];
            }
            out.push(ToyPixel {
                row,
                col,
                white,
                coordinates,
            });
        }
    }
    Ok(out)
}

/// Euclidean distance between two toy-pixel coordinates.
pub fn toy_distance(a: &ToyPixel, b: &ToyPixel) -> f64 {
    a.coordinates
        .iter()
        .zip(&b.coordinates)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_image() -> [bool; 9] {
        // White pixels form one group, black pixels the other (the specific
        // pattern follows the spirit of Fig. 1 rather than its exact pixels,
        // which the paper does not enumerate).
        [true, true, false, true, true, false, false, false, true]
    }

    #[test]
    fn wrong_sized_input_is_rejected() {
        assert!(vectorize_toy_image(&[true; 4]).is_err());
        assert!(vectorize_toy_image(&[true; 10]).is_err());
    }

    #[test]
    fn produces_nine_pixels_with_coordinates_in_range() {
        let pixels = vectorize_toy_image(&figure_image()).unwrap();
        assert_eq!(pixels.len(), 9);
        for p in &pixels {
            assert!(p.coordinates.iter().all(|&c| c <= 2));
        }
    }

    #[test]
    fn same_color_pixels_are_on_average_closer_than_different_color_pixels() {
        let pixels = vectorize_toy_image(&figure_image()).unwrap();
        let mut same = Vec::new();
        let mut different = Vec::new();
        for i in 0..pixels.len() {
            for j in (i + 1)..pixels.len() {
                let d = toy_distance(&pixels[i], &pixels[j]);
                if pixels[i].white == pixels[j].white {
                    same.push(d);
                } else {
                    different.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) < mean(&different),
            "same {} vs different {}",
            mean(&same),
            mean(&different)
        );
    }

    #[test]
    fn distance_is_zero_only_for_identical_coordinates() {
        let pixels = vectorize_toy_image(&figure_image()).unwrap();
        assert_eq!(toy_distance(&pixels[0], &pixels[0]), 0.0);
    }
}
