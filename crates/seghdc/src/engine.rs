//! The long-lived segmentation engine: one unified planner over every
//! execution path.
//!
//! [`SegEngine`] replaces the five historical `SegHdc` entry points
//! (`segment`, `segment_batch`, `segment_streaming`,
//! `segment_streaming_in`, `segment_streaming_batch`) with one flow:
//!
//! ```text
//! SegmentRequest ──► SegEngine::plan ──► SegEngine::run ──► SegmentReport
//! ```
//!
//! The engine owns three long-lived pieces a per-call API cannot have:
//!
//! * an [`ExecBackend`] — the per-tile "encode region + cluster matrix"
//!   unit every path executes through ([`SimdCpuBackend::auto`] by
//!   default, which picks SIMD word kernels when the CPU supports them; a
//!   scalar-pinned [`crate::CpuBackend`] or a device backend via
//!   [`SegEngineBuilder::backend`]);
//! * a persistent [`CodebookCache`] — codebooks are keyed on
//!   `(seed, shape, dimension, encodings)` and reused across calls and
//!   threads, so a warm request skips the dominant fixed cost;
//! * a pool of [`TileArena`] scratch buffers, reused across requests and
//!   workers, whose byte high-water mark is reported on every
//!   [`SegmentReport`].
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use imaging::{DynamicImage, GrayImage};
//! use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
//!
//! let mut img = GrayImage::filled(24, 24, 15)?;
//! for y in 6..18 {
//!     for x in 6..18 {
//!         img.set(x, y, 230)?;
//!     }
//! }
//! let image = DynamicImage::Gray(img);
//!
//! let config = SegHdcConfig::builder().dimension(1024).iterations(3).build()?;
//! let engine = SegEngine::new(config)?;
//!
//! let cold = engine.run(&SegmentRequest::image(&image))?;
//! assert_eq!(cold.outputs[0].label_map.pixel_count(), 24 * 24);
//! assert_eq!(cold.telemetry.cache_misses, 1);
//!
//! // Same shape again: the codebooks come from the cache.
//! let warm = engine.run(&SegmentRequest::image(&image))?;
//! assert_eq!(warm.telemetry.cache_hits, 1);
//! assert_eq!(
//!     cold.outputs[0].label_map.as_raw(),
//!     warm.outputs[0].label_map.as_raw()
//! );
//! # Ok(())
//! # }
//! ```

use crate::cache::{CacheStats, CodebookCache, CodebookKey};
use crate::observe::RunObserver;
use crate::sync::lock_unpoisoned;
use crate::tiled::{self, StreamingSegmentation, TileArena, TileConfig};
use crate::{
    ExecBackend, HvKmeans, PixelEncoder, Result, SegHdcConfig, SegHdcError, SimdCpuBackend,
};
use imaging::{DynamicImage, ImageView, LabelMap, TileRect};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SegEngine`], separate from the algorithmic
/// [`SegHdcConfig`].
///
/// The defaults suit a workstation service: a 64 MiB codebook cache, a
/// 128 MiB per-image matrix budget before the planner switches to
/// streaming tiles, and 256×256 tiles with an 8-pixel halo when it does.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Byte capacity of the persistent codebook cache.
    pub codebook_cache_bytes: usize,
    /// Auto-planning threshold: a request whose whole-image hypervector
    /// matrix would exceed this many bytes is executed in streaming tiled
    /// mode instead.
    pub matrix_budget_bytes: usize,
    /// Tile geometry the planner uses when it chooses tiled execution on
    /// its own ([`ExecutionMode::Tiled`] overrides it per request).
    pub auto_tile: TileConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            codebook_cache_bytes: 64 << 20,
            matrix_budget_bytes: 128 << 20,
            auto_tile: TileConfig::square(256, 8).expect("default tile geometry is valid"),
        }
    }
}

/// How a request asks to be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Let the planner pick per image: whole-image when the hypervector
    /// matrix fits [`EngineOptions::matrix_budget_bytes`], streaming tiles
    /// otherwise.
    Auto,
    /// Force whole-image execution regardless of size.
    WholeImage,
    /// Force streaming tiled execution with this tile geometry.
    Tiled(TileConfig),
}

/// The input of one [`SegEngine::run`] call.
enum RequestInput<'a> {
    Single(&'a DynamicImage),
    Batch(&'a [DynamicImage]),
    View(ImageView<'a>),
}

/// One segmentation request: what to segment and (optionally) how.
///
/// Construct with [`image`](Self::image), [`batch`](Self::batch) or
/// [`view`](Self::view), then optionally pin the execution mode; by default
/// the engine plans it ([`ExecutionMode::Auto`]).
pub struct SegmentRequest<'a> {
    input: RequestInput<'a>,
    mode: ExecutionMode,
}

impl<'a> SegmentRequest<'a> {
    /// A request over one image.
    pub fn image(image: &'a DynamicImage) -> Self {
        Self {
            input: RequestInput::Single(image),
            mode: ExecutionMode::Auto,
        }
    }

    /// A request over a batch of images (executed in parallel, codebooks
    /// shared per distinct shape through the engine cache).
    pub fn batch(images: &'a [DynamicImage]) -> Self {
        Self {
            input: RequestInput::Batch(images),
            mode: ExecutionMode::Auto,
        }
    }

    /// A request over an image view (e.g. a crop of a larger scan).
    pub fn view(view: ImageView<'a>) -> Self {
        Self {
            input: RequestInput::View(view),
            mode: ExecutionMode::Auto,
        }
    }

    /// Pins the execution mode instead of letting the engine plan it.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for [`mode`](Self::mode)`(ExecutionMode::WholeImage)`.
    pub fn whole_image(self) -> Self {
        self.mode(ExecutionMode::WholeImage)
    }

    /// Shorthand for [`mode`](Self::mode)`(ExecutionMode::Tiled(tiles))`.
    pub fn tiled(self, tiles: TileConfig) -> Self {
        self.mode(ExecutionMode::Tiled(tiles))
    }

    /// Number of images in the request.
    pub fn len(&self) -> usize {
        match &self.input {
            RequestInput::Single(_) | RequestInput::View(_) => 1,
            RequestInput::Batch(images) => images.len(),
        }
    }

    /// Whether the request holds no images (an empty batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The requested execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// `(width, height, channels)` of image `index`.
    fn shape(&self, index: usize) -> (usize, usize, usize) {
        match &self.input {
            RequestInput::Single(image) => (image.width(), image.height(), image.channels()),
            RequestInput::Batch(images) => {
                let image = &images[index];
                (image.width(), image.height(), image.channels())
            }
            RequestInput::View(view) => (view.width(), view.height(), view.channels()),
        }
    }
}

/// The mode the planner chose for one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedMode {
    /// Encode and cluster the whole image as one region.
    WholeImage,
    /// Stream the image through halo-padded tiles of this geometry.
    Tiled(TileConfig),
}

/// One image's planning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDecision {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Colour channel count.
    pub channels: usize,
    /// Bytes the whole-image hypervector matrix would allocate — what the
    /// decision is made against.
    pub whole_matrix_bytes: usize,
    /// The chosen execution mode.
    pub mode: PlannedMode,
}

/// The engine's plan for a request: one decision per image, in request
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Per-image decisions.
    pub decisions: Vec<PlanDecision>,
}

impl SegmentPlan {
    /// Number of images planned for whole-image execution.
    pub fn whole_image_count(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.mode, PlannedMode::WholeImage))
            .count()
    }

    /// Number of images planned for streaming tiled execution.
    pub fn tiled_count(&self) -> usize {
        self.decisions.len() - self.whole_image_count()
    }
}

/// How one image was actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutedMode {
    /// One whole-image encode + cluster round.
    WholeImage,
    /// Streaming tiles, stitched.
    Tiled {
        /// Tile columns processed.
        tiles_x: usize,
        /// Tile rows processed.
        tiles_y: usize,
        /// Distinct stitched label groups in the output.
        stitched_labels: usize,
    },
}

/// One image's segmentation result inside a [`SegmentReport`].
#[derive(Debug, Clone)]
pub struct SegmentOutput {
    /// Final per-pixel labels.
    pub label_map: LabelMap,
    /// Per-iteration label maps (whole-image mode with
    /// [`SegHdcConfig::record_snapshots`] only).
    pub snapshots: Vec<LabelMap>,
    /// Clustering iterations executed (per tile, in tiled mode).
    pub iterations_run: usize,
    /// Pixels per label: cluster sizes in cluster order for whole-image
    /// mode, stitched-group sizes in ascending label order for tiled mode.
    pub cluster_sizes: Vec<usize>,
    /// How this image was executed.
    pub mode: ExecutedMode,
    /// Wall-clock encoding time (includes the codebook build on a cache
    /// miss).
    pub encode_time: Duration,
    /// Wall-clock clustering time.
    pub cluster_time: Duration,
    /// Wall-clock stitching time (zero in whole-image mode).
    pub stitch_time: Duration,
}

impl SegmentOutput {
    /// Total wall-clock time (encode + cluster + stitch).
    pub fn total_time(&self) -> Duration {
        self.encode_time + self.cluster_time + self.stitch_time
    }
}

/// Engine-level counters reported with every run.
///
/// Cache counters and the arena peak are **engine-lifetime** values (the
/// cache and arenas outlive individual runs — that is the point); compare
/// two reports to attribute deltas to one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Codebook-cache lookups served from a resident encoder.
    pub cache_hits: u64,
    /// Codebook-cache lookups that built the encoder.
    pub cache_misses: u64,
    /// Codebook-cache entries evicted to stay within capacity.
    pub cache_evictions: u64,
    /// Codebook bytes currently resident in the cache.
    pub cache_bytes: usize,
    /// Encoders currently resident in the cache.
    pub cache_entries: usize,
    /// High-water mark, in bytes, of any arena matrix allocation over the
    /// engine's lifetime.
    pub peak_matrix_bytes: usize,
    /// Name of the execution backend.
    pub backend: &'static str,
    /// The word-kernel instruction set the backend actually executed with
    /// (`"scalar"`, `"avx2"`, `"neon"`, `"avx512"`, `"avx512-vpopcnt"`) — see
    /// [`ExecBackend::kernel_isa`].
    pub kernel_isa: &'static str,
}

/// Result of one [`SegEngine::run`]: per-image outputs, the plan that was
/// executed, and engine telemetry.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// One output per request image, in request order.
    pub outputs: Vec<SegmentOutput>,
    /// The plan the engine executed.
    pub plan: SegmentPlan,
    /// Engine-lifetime counters snapshotted after the run.
    pub telemetry: EngineTelemetry,
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
}

impl SegmentReport {
    /// The single output of a one-image request.
    ///
    /// # Panics
    ///
    /// Panics if the request held more or fewer than one image.
    pub fn single(&self) -> &SegmentOutput {
        assert_eq!(
            self.outputs.len(),
            1,
            "report holds {} outputs",
            self.outputs.len()
        );
        &self.outputs[0]
    }
}

/// Builder for [`SegEngine`].
pub struct SegEngineBuilder {
    config: SegHdcConfig,
    options: EngineOptions,
    backend: Option<Box<dyn ExecBackend>>,
    cache: Option<Arc<CodebookCache>>,
}

impl SegEngineBuilder {
    /// Replaces the whole option set.
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the codebook-cache byte capacity (ignored when a shared cache
    /// is installed with [`cache`](Self::cache)).
    pub fn codebook_cache_bytes(mut self, bytes: usize) -> Self {
        self.options.codebook_cache_bytes = bytes;
        self
    }

    /// Sets the auto-planning matrix byte budget.
    pub fn matrix_budget_bytes(mut self, bytes: usize) -> Self {
        self.options.matrix_budget_bytes = bytes;
        self
    }

    /// Sets the tile geometry used when the planner chooses tiled mode.
    pub fn auto_tile(mut self, tiles: TileConfig) -> Self {
        self.options.auto_tile = tiles;
        self
    }

    /// Installs an execution backend.
    ///
    /// The default is [`SimdCpuBackend::auto`], which picks the best word
    /// kernels for the running CPU (SIMD when supported, scalar otherwise).
    /// Install [`SimdCpuBackend::scalar`] (or the reference
    /// [`crate::CpuBackend`]) to force the scalar kernels; labels are
    /// byte-identical either way.
    pub fn backend(mut self, backend: Box<dyn ExecBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Installs a shared codebook cache, so several engines (e.g. one per
    /// swept configuration) amortise codebooks across each other.
    pub fn cache(mut self, cache: Arc<CodebookCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn build(self) -> Result<SegEngine> {
        self.config.validate()?;
        let cache = self.cache.unwrap_or_else(|| {
            Arc::new(CodebookCache::with_capacity(
                self.options.codebook_cache_bytes,
            ))
        });
        Ok(SegEngine {
            config: self.config,
            options: self.options,
            backend: self
                .backend
                .unwrap_or_else(|| Box::new(SimdCpuBackend::auto())),
            cache,
            arenas: Mutex::new(Vec::new()),
            // One retained arena per worker is the most any run can reuse.
            max_pooled_arenas: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            peak_matrix_bytes: AtomicUsize::new(0),
        })
    }
}

/// The long-lived segmentation engine (see the [module docs](self)).
///
/// All methods take `&self`; an engine behind an `Arc` serves concurrent
/// requests from many threads, sharing its codebook cache and arena pool.
#[derive(Debug)]
pub struct SegEngine {
    config: SegHdcConfig,
    options: EngineOptions,
    backend: Box<dyn ExecBackend>,
    cache: Arc<CodebookCache>,
    /// Reusable scratch arenas, one checked out per in-flight image.
    arenas: Mutex<Vec<TileArena>>,
    /// Pool retention cap: arenas returned beyond this count are dropped.
    max_pooled_arenas: usize,
    /// Engine-lifetime high-water mark across every arena.
    peak_matrix_bytes: AtomicUsize,
}

impl SegEngine {
    /// An engine with default [`EngineOptions`] and the auto-selected
    /// [`SimdCpuBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: SegHdcConfig) -> Result<Self> {
        Self::builder(config).build()
    }

    /// Starts a builder for an engine running `config`.
    pub fn builder(config: SegHdcConfig) -> SegEngineBuilder {
        SegEngineBuilder {
            config,
            options: EngineOptions::default(),
            backend: None,
            cache: None,
        }
    }

    /// The algorithmic configuration this engine runs.
    pub fn config(&self) -> &SegHdcConfig {
        &self.config
    }

    /// The engine tuning options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The execution backend's name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The word-kernel instruction set the backend executes with (see
    /// [`ExecBackend::kernel_isa`]).
    pub fn kernel_isa(&self) -> &'static str {
        self.backend.kernel_isa()
    }

    /// Snapshot of the codebook-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared codebook cache (hand it to another engine's builder via
    /// [`SegEngineBuilder::cache`] to share codebooks across engines).
    pub fn cache(&self) -> Arc<CodebookCache> {
        Arc::clone(&self.cache)
    }

    /// Plans a request without executing it: one [`PlanDecision`] per
    /// image.
    ///
    /// In [`ExecutionMode::Auto`] an image goes tiled exactly when its
    /// whole-image hypervector matrix (`pixels × ⌈d/64⌉ × 8` bytes) would
    /// exceed [`EngineOptions::matrix_budget_bytes`].
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed requests; the `Result` reserves
    /// room for geometry validation.
    pub fn plan(&self, request: &SegmentRequest<'_>) -> Result<SegmentPlan> {
        let row_bytes = self.config.dimension.div_ceil(64) * 8;
        let decisions = (0..request.len())
            .map(|index| {
                let (width, height, channels) = request.shape(index);
                let whole_matrix_bytes = width * height * row_bytes;
                let mode = match request.mode {
                    ExecutionMode::WholeImage => PlannedMode::WholeImage,
                    ExecutionMode::Tiled(tiles) => PlannedMode::Tiled(tiles),
                    ExecutionMode::Auto => {
                        if whole_matrix_bytes > self.options.matrix_budget_bytes {
                            PlannedMode::Tiled(self.options.auto_tile)
                        } else {
                            PlannedMode::WholeImage
                        }
                    }
                };
                PlanDecision {
                    width,
                    height,
                    channels,
                    whole_matrix_bytes,
                    mode,
                }
            })
            .collect();
        Ok(SegmentPlan { decisions })
    }

    /// Plans and executes a request.
    ///
    /// Codebooks are resolved once per distinct image shape through the
    /// persistent cache; batch images execute in parallel, each on a pooled
    /// scratch arena, all through the engine's [`ExecBackend`].
    ///
    /// # Errors
    ///
    /// Returns the first error produced by any image. An empty batch
    /// returns an empty report.
    pub fn run(&self, request: &SegmentRequest<'_>) -> Result<SegmentReport> {
        self.run_observed(request, &RunObserver::new())
    }

    /// [`run`](Self::run) with an observer: the progress callback fires
    /// once per completed tile row of each tiled execution, and the
    /// observer's [`crate::CancelToken`] is checked between tiles.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::Cancelled`] if the observer's token fires
    /// mid-run (shared engine state — cache, arena pool — stays intact);
    /// otherwise the first error produced by any image.
    pub fn run_observed(
        &self,
        request: &SegmentRequest<'_>,
        observer: &RunObserver<'_>,
    ) -> Result<SegmentReport> {
        let start = Instant::now();
        let plan = self.plan(request)?;
        let encoders = self.resolve_encoders(&plan)?;

        let outputs: Vec<SegmentOutput> = match &request.input {
            RequestInput::Single(image) => {
                let view = ImageView::full(image);
                vec![self.run_one(&view, &plan.decisions[0], &encoders, 0, observer)?]
            }
            RequestInput::View(view) => {
                vec![self.run_one(view, &plan.decisions[0], &encoders, 0, observer)?]
            }
            RequestInput::Batch(images) => {
                let decisions = &plan.decisions;
                let encoders = &encoders;
                (0..images.len())
                    .into_par_iter()
                    .map(|index| {
                        let view = ImageView::full(&images[index]);
                        self.run_one(&view, &decisions[index], encoders, index, observer)
                    })
                    .collect::<Result<Vec<_>>>()?
            }
        };

        Ok(SegmentReport {
            outputs,
            plan,
            telemetry: self.telemetry(),
            total_time: start.elapsed(),
        })
    }

    /// Streaming tiled execution into a **caller-owned** arena — the
    /// escape hatch for services that manage their own scratch memory (and
    /// the implementation of the deprecated
    /// [`crate::SegHdc::segment_streaming_in`]). The codebooks still come
    /// from the engine cache and every tile executes through the engine
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile geometry is invalid for the view shape
    /// or if encoding/clustering fails.
    pub fn run_tiled_in(
        &self,
        view: &ImageView<'_>,
        tiles: &TileConfig,
        arena: &mut TileArena,
    ) -> Result<StreamingSegmentation> {
        let encoder = self.encoder_for(view.width(), view.height(), view.channels())?;
        let result = tiled::segment_streaming_with(
            &self.config,
            &encoder,
            view,
            tiles,
            arena,
            self.backend.as_ref(),
            RunObserver::new().for_image(0),
        );
        self.peak_matrix_bytes
            .fetch_max(arena.peak_matrix_bytes(), Ordering::Relaxed);
        result
    }

    /// Current engine-lifetime telemetry.
    pub fn telemetry(&self) -> EngineTelemetry {
        let stats = self.cache.stats();
        EngineTelemetry {
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_evictions: stats.evictions,
            cache_bytes: stats.bytes,
            cache_entries: stats.entries,
            peak_matrix_bytes: self.peak_matrix_bytes.load(Ordering::Relaxed),
            backend: self.backend.name(),
            kernel_isa: self.backend.kernel_isa(),
        }
    }

    /// Resolves (and warms) one encoder per distinct shape in the plan.
    fn resolve_encoders(
        &self,
        plan: &SegmentPlan,
    ) -> Result<HashMap<(usize, usize, usize), Arc<PixelEncoder>>> {
        let mut encoders = HashMap::new();
        for decision in &plan.decisions {
            let shape = (decision.width, decision.height, decision.channels);
            if let std::collections::hash_map::Entry::Vacant(entry) = encoders.entry(shape) {
                entry.insert(self.encoder_for(shape.0, shape.1, shape.2)?);
            }
        }
        Ok(encoders)
    }

    /// Cache lookup (or build) of the encoder for one image shape.
    fn encoder_for(
        &self,
        width: usize,
        height: usize,
        channels: usize,
    ) -> Result<Arc<PixelEncoder>> {
        let key = CodebookKey::for_shape(&self.config, width, height, channels);
        let config = &self.config;
        self.cache
            .get_or_build(key, || build_encoder(config, width, height, channels))
    }

    /// Executes one image according to its plan decision.
    fn run_one(
        &self,
        view: &ImageView<'_>,
        decision: &PlanDecision,
        encoders: &HashMap<(usize, usize, usize), Arc<PixelEncoder>>,
        image_index: usize,
        observer: &RunObserver<'_>,
    ) -> Result<SegmentOutput> {
        if observer.is_cancelled() {
            return Err(SegHdcError::Cancelled);
        }
        let shape = (decision.width, decision.height, decision.channels);
        let encoder = encoders
            .get(&shape)
            .ok_or_else(|| SegHdcError::InvalidConfig {
                message: format!("no encoder resolved for shape {shape:?}"),
            })?;
        match decision.mode {
            PlannedMode::WholeImage => self.run_whole(view, encoder),
            PlannedMode::Tiled(tiles) => {
                self.run_tiled(view, &tiles, encoder, image_index, observer)
            }
        }
    }

    /// Whole-image execution: the full view is one backend region.
    fn run_whole(&self, view: &ImageView<'_>, encoder: &PixelEncoder) -> Result<SegmentOutput> {
        self.with_arena(|arena| {
            let encode_start = Instant::now();
            let rows = view.pixel_count();
            arena.prepare(rows, self.config.dimension)?;
            let full = TileRect {
                x: 0,
                y: 0,
                width: view.width(),
                height: view.height(),
            };
            self.backend
                .encode_region(encoder, view, &full, &mut arena.matrix)?;
            for y in 0..view.height() {
                for x in 0..view.width() {
                    arena.intensities.push(view.intensity_at(x, y)?);
                }
            }
            let encode_time = encode_start.elapsed();

            let cluster_start = Instant::now();
            let kmeans = HvKmeans::new(
                self.config.clusters,
                self.config.iterations,
                self.config.distance_metric,
                self.config.record_snapshots,
            )?;
            let outcome =
                self.backend
                    .cluster_matrix(&kmeans, &arena.matrix, &arena.intensities)?;
            let cluster_time = cluster_start.elapsed();

            let width = view.width();
            let height = view.height();
            let to_map = |labels: &[u32]| -> Result<LabelMap> {
                Ok(LabelMap::from_raw(width, height, labels.to_vec())?)
            };
            let label_map = to_map(&outcome.labels)?;
            let snapshots = outcome
                .snapshots
                .iter()
                .map(|labels| to_map(labels))
                .collect::<Result<Vec<_>>>()?;

            Ok(SegmentOutput {
                label_map,
                snapshots,
                iterations_run: outcome.iterations_run,
                cluster_sizes: outcome.cluster_sizes,
                mode: ExecutedMode::WholeImage,
                encode_time,
                cluster_time,
                stitch_time: Duration::ZERO,
            })
        })
    }

    /// Streaming tiled execution on a pooled arena.
    fn run_tiled(
        &self,
        view: &ImageView<'_>,
        tiles: &TileConfig,
        encoder: &PixelEncoder,
        image_index: usize,
        observer: &RunObserver<'_>,
    ) -> Result<SegmentOutput> {
        self.with_arena(|arena| {
            let streamed = tiled::segment_streaming_with(
                &self.config,
                encoder,
                view,
                tiles,
                arena,
                self.backend.as_ref(),
                observer.for_image(image_index),
            )?;

            // Stitched-group sizes in ascending label order, so the report
            // shape matches whole-image outputs.
            let mut sizes: std::collections::BTreeMap<u32, usize> =
                std::collections::BTreeMap::new();
            for &label in streamed.label_map.as_raw() {
                *sizes.entry(label).or_insert(0) += 1;
            }

            Ok(SegmentOutput {
                label_map: streamed.label_map,
                snapshots: Vec::new(),
                iterations_run: self.config.iterations,
                cluster_sizes: sizes.into_values().collect(),
                mode: ExecutedMode::Tiled {
                    tiles_x: streamed.tiles_x,
                    tiles_y: streamed.tiles_y,
                    stitched_labels: streamed.stitched_labels,
                },
                encode_time: streamed.encode_time,
                cluster_time: streamed.cluster_time,
                stitch_time: streamed.stitch_time,
            })
        })
    }

    /// Checks an arena out of the pool, runs `f`, records the peak and
    /// returns the arena to the pool (also on error).
    ///
    /// Retention is bounded so the pool cannot pin memory for the engine's
    /// lifetime: at most one arena per hardware thread is kept, and an
    /// arena whose matrix grew beyond
    /// [`EngineOptions::matrix_budget_bytes`] (a forced over-budget
    /// whole-image run) is dropped instead of pooled — the steady state
    /// retains only budget-sized scratch.
    ///
    /// The pool lock recovers from poisoning (see [`crate::sync`]): a
    /// worker thread that panics mid-request must not take
    /// arena checkout down for every subsequent request. A panic inside
    /// `f` simply drops the checked-out arena — the pool's invariants are
    /// never in flight while the lock is held.
    fn with_arena<T>(&self, f: impl FnOnce(&mut TileArena) -> Result<T>) -> Result<T> {
        let mut arena = lock_unpoisoned(&self.arenas).pop().unwrap_or_default();
        let result = f(&mut arena);
        self.peak_matrix_bytes
            .fetch_max(arena.peak_matrix_bytes(), Ordering::Relaxed);
        if arena.matrix.capacity_bytes() <= self.options.matrix_budget_bytes {
            let mut pool = lock_unpoisoned(&self.arenas);
            if pool.len() < self.max_pooled_arenas {
                pool.push(arena);
            }
        }
        result
    }
}

/// Builds the pixel encoder (position + colour codebooks) for `config` at
/// one image shape — the single codebook-construction path every engine
/// lookup funnels through.
pub(crate) fn build_encoder(
    config: &SegHdcConfig,
    width: usize,
    height: usize,
    channels: usize,
) -> Result<PixelEncoder> {
    let root = hdc::HdcRng::seed_from(config.seed);
    let mut position_rng = root.derive(1);
    let mut color_rng = root.derive(2);
    let position = crate::PositionEncoder::new(
        config.position_encoding,
        config.dimension,
        height,
        width,
        config.alpha,
        config.beta,
        &mut position_rng,
    )?;
    let color = crate::ColorEncoder::new(
        config.color_encoding,
        config.dimension,
        channels,
        config.gamma,
        &mut color_rng,
    )?;
    PixelEncoder::new(position, color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::GrayImage;

    fn square_image(size: usize) -> DynamicImage {
        let mut img = GrayImage::filled(size, size, 20).unwrap();
        for y in size / 4..3 * size / 4 {
            for x in size / 4..3 * size / 4 {
                img.set(x, y, 220).unwrap();
            }
        }
        DynamicImage::Gray(img)
    }

    fn fast_config() -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(512)
            .iterations(3)
            .beta(4)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_the_configuration() {
        let bad = SegHdcConfig {
            clusters: 1,
            ..SegHdcConfig::default()
        };
        assert!(SegEngine::new(bad).is_err());
        let engine = SegEngine::new(fast_config()).unwrap();
        assert_eq!(engine.backend_name(), "simd-cpu");
        assert!(hdc::kernels::KNOWN_ISAS.contains(&engine.kernel_isa()));
        assert_eq!(engine.config().dimension, 512);
        // The reference backend stays installable.
        let reference = SegEngine::builder(fast_config())
            .backend(Box::new(crate::CpuBackend))
            .build()
            .unwrap();
        assert_eq!(reference.backend_name(), "cpu");
        assert_eq!(reference.kernel_isa(), "scalar");
    }

    #[test]
    fn scalar_and_simd_backends_produce_byte_identical_labels() {
        let image = square_image(32);
        let scalar_engine = SegEngine::builder(fast_config())
            .backend(Box::new(SimdCpuBackend::scalar()))
            .build()
            .unwrap();
        let simd_engine = SegEngine::new(fast_config()).unwrap();
        for request in [
            SegmentRequest::image(&image).whole_image(),
            SegmentRequest::image(&image).tiled(TileConfig::square(16, 4).unwrap()),
        ] {
            let scalar = scalar_engine.run(&request).unwrap();
            let simd = simd_engine.run(&request).unwrap();
            assert_eq!(
                scalar.single().label_map.as_raw(),
                simd.single().label_map.as_raw()
            );
        }
    }

    #[test]
    fn auto_plan_picks_whole_image_under_the_budget_and_tiles_over_it() {
        let image = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let plan = engine.plan(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(plan.decisions.len(), 1);
        assert_eq!(plan.decisions[0].mode, PlannedMode::WholeImage);
        assert_eq!(
            plan.decisions[0].whole_matrix_bytes,
            32 * 32 * 512usize.div_ceil(64) * 8
        );

        let tiny_budget = SegEngine::builder(fast_config())
            .matrix_budget_bytes(1024)
            .auto_tile(TileConfig::square(16, 2).unwrap())
            .build()
            .unwrap();
        let plan = tiny_budget.plan(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(
            plan.decisions[0].mode,
            PlannedMode::Tiled(TileConfig::square(16, 2).unwrap())
        );
        assert_eq!(plan.whole_image_count(), 0);
        assert_eq!(plan.tiled_count(), 1);
    }

    #[test]
    fn forced_modes_override_the_planner() {
        let image = square_image(32);
        let engine = SegEngine::builder(fast_config())
            .matrix_budget_bytes(0)
            .build()
            .unwrap();
        let forced = engine
            .plan(&SegmentRequest::image(&image).whole_image())
            .unwrap();
        assert_eq!(forced.decisions[0].mode, PlannedMode::WholeImage);
        let tiles = TileConfig::square(16, 2).unwrap();
        let forced = engine
            .plan(&SegmentRequest::image(&image).tiled(tiles))
            .unwrap();
        assert_eq!(forced.decisions[0].mode, PlannedMode::Tiled(tiles));
    }

    #[test]
    fn whole_and_tiled_runs_agree_on_the_partition() {
        let image = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let whole = engine
            .run(&SegmentRequest::image(&image).whole_image())
            .unwrap();
        let tiles = TileConfig::square(16, 4).unwrap();
        let tiled = engine
            .run(&SegmentRequest::image(&image).tiled(tiles))
            .unwrap();
        assert!(matches!(whole.single().mode, ExecutedMode::WholeImage));
        assert!(matches!(
            tiled.single().mode,
            ExecutedMode::Tiled {
                tiles_x: 2,
                tiles_y: 2,
                ..
            }
        ));
        assert!(tiled
            .single()
            .label_map
            .is_permutation_of(&whole.single().label_map));
        assert_eq!(tiled.single().cluster_sizes.iter().sum::<usize>(), 32 * 32);
    }

    #[test]
    fn batch_outputs_match_single_runs_byte_for_byte() {
        let a = square_image(24);
        let b = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let batch = engine
            .run(&SegmentRequest::batch(std::slice::from_ref(&a)).whole_image())
            .unwrap();
        let single = engine
            .run(&SegmentRequest::image(&a).whole_image())
            .unwrap();
        assert_eq!(
            batch.outputs[0].label_map.as_raw(),
            single.single().label_map.as_raw()
        );
        let both = [a, b];
        let batch = engine
            .run(&SegmentRequest::batch(&both).whole_image())
            .unwrap();
        assert_eq!(batch.outputs.len(), 2);
        for (image, output) in both.iter().zip(&batch.outputs) {
            let single = engine
                .run(&SegmentRequest::image(image).whole_image())
                .unwrap();
            assert_eq!(
                output.label_map.as_raw(),
                single.single().label_map.as_raw()
            );
        }
    }

    #[test]
    fn empty_batches_produce_empty_reports() {
        let engine = SegEngine::new(fast_config()).unwrap();
        // Every execution mode: a degenerate empty batch must plan and run
        // to an empty report, never panic — a server cannot crash on it.
        for request in [
            SegmentRequest::batch(&[]),
            SegmentRequest::batch(&[]).whole_image(),
            SegmentRequest::batch(&[]).tiled(TileConfig::square(16, 2).unwrap()),
        ] {
            let plan = engine.plan(&request).unwrap();
            assert!(plan.decisions.is_empty());
            assert_eq!((plan.whole_image_count(), plan.tiled_count()), (0, 0));
            let report = engine.run(&request).unwrap();
            assert!(report.outputs.is_empty());
            assert!(report.plan.decisions.is_empty());
        }
        assert!(SegmentRequest::batch(&[]).is_empty());
        // No encoder was ever resolved for the phantom shape.
        assert_eq!(engine.cache_stats().misses, 0);
    }

    #[test]
    fn degenerate_tiny_images_error_instead_of_panicking() {
        // Fewer pixels than clusters: a 1×1 frame against 2 clusters must
        // come back as a typed error, not a panic or a hang.
        let image = DynamicImage::Gray(GrayImage::filled(1, 1, 128).unwrap());
        let engine = SegEngine::new(fast_config()).unwrap();
        let result = engine.run(&SegmentRequest::image(&image));
        assert!(result.is_err(), "1x1 image with 2 clusters must error");
        // The engine stays fully serviceable afterwards.
        let ok = engine
            .run(&SegmentRequest::image(&square_image(16)))
            .unwrap();
        assert_eq!(ok.outputs[0].label_map.pixel_count(), 16 * 16);
    }

    #[test]
    fn poisoned_arena_pool_recovers() {
        let image = square_image(16);
        let engine = SegEngine::new(fast_config()).unwrap();
        engine.run(&SegmentRequest::image(&image)).unwrap();
        // Poison the pool mutex the way a crashed worker would: panic
        // while holding the guard.
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = engine.arenas.lock().unwrap();
                    panic!("worker died holding the arena pool lock");
                })
                .join()
        });
        assert!(
            engine.arenas.lock().is_err(),
            "pool mutex must actually be poisoned"
        );
        // Checkout still works and the pool keeps recycling arenas.
        let first = engine.run(&SegmentRequest::image(&image)).unwrap();
        let second = engine.run(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(
            first.outputs[0].label_map.as_raw(),
            second.outputs[0].label_map.as_raw()
        );
        assert!(!lock_unpoisoned(&engine.arenas).is_empty());
    }

    /// A backend that dies mid-request, standing in for any panic inside a
    /// worker thread.
    #[derive(Debug)]
    struct PanickingBackend;

    impl crate::ExecBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }

        fn encode_region(
            &self,
            _encoder: &PixelEncoder,
            _view: &ImageView<'_>,
            _region: &imaging::TileRect,
            _scratch: &mut hdc::HvMatrix,
        ) -> Result<()> {
            panic!("backend blew up mid-request");
        }

        fn cluster_matrix(
            &self,
            _kmeans: &HvKmeans,
            _pixels: &hdc::HvMatrix,
            _intensities: &[u8],
        ) -> Result<crate::ClusterOutcome> {
            panic!("backend blew up mid-request");
        }
    }

    #[test]
    fn panicking_worker_does_not_wedge_shared_state() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let image = square_image(16);
        let broken = SegEngine::builder(fast_config())
            .backend(Box::new(PanickingBackend))
            .build()
            .unwrap();
        let healthy = SegEngine::builder(fast_config())
            .cache(broken.cache())
            .build()
            .unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = broken.run(&SegmentRequest::image(&image));
        }));
        assert!(result.is_err(), "the panicking backend must panic");
        // The shared cache (the codebook build succeeded before the
        // backend died) and the healthy engine both keep serving.
        let report = healthy.run(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(report.telemetry.cache_misses, 1);
        assert_eq!(report.telemetry.cache_hits, 1);
        assert_eq!(report.outputs[0].label_map.pixel_count(), 16 * 16);
    }

    #[test]
    fn observed_tiled_runs_report_each_completed_tile_row() {
        let image = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let tiles = TileConfig::square(16, 4).unwrap();
        let rows = std::sync::Mutex::new(Vec::new());
        let observer = RunObserver::new().on_progress(|p| {
            rows.lock()
                .unwrap()
                .push((p.image_index, p.rows_done, p.rows_total))
        });
        let observed = engine
            .run_observed(&SegmentRequest::image(&image).tiled(tiles), &observer)
            .unwrap();
        assert_eq!(rows.lock().unwrap().as_slice(), &[(0, 1, 2), (0, 2, 2)]);
        // Observation does not perturb the output.
        let plain = engine
            .run(&SegmentRequest::image(&image).tiled(tiles))
            .unwrap();
        assert_eq!(
            observed.single().label_map.as_raw(),
            plain.single().label_map.as_raw()
        );
    }

    #[test]
    fn cancelled_runs_return_a_typed_error_and_leave_the_engine_serviceable() {
        use crate::observe::CancelToken;
        let image = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let tiles = TileConfig::square(16, 4).unwrap();

        // Cancel from inside the progress callback: the first completed
        // tile row fires the token; the next between-tile poll unwinds.
        let token = CancelToken::new();
        let fire = token.clone();
        let observer = RunObserver::new()
            .on_progress(move |_| fire.cancel())
            .cancel_token(token);
        let err = engine
            .run_observed(&SegmentRequest::image(&image).tiled(tiles), &observer)
            .unwrap_err();
        assert!(matches!(err, SegHdcError::Cancelled), "got {err:?}");

        // A pre-fired token cancels before any tile is encoded.
        let token = CancelToken::new();
        token.cancel();
        let observer = RunObserver::new().cancel_token(token);
        let err = engine
            .run_observed(&SegmentRequest::image(&image).tiled(tiles), &observer)
            .unwrap_err();
        assert!(matches!(err, SegHdcError::Cancelled), "got {err:?}");

        // Nothing is poisoned: the same engine serves the same request.
        let report = engine
            .run(&SegmentRequest::image(&image).tiled(tiles))
            .unwrap();
        assert_eq!(report.single().label_map.pixel_count(), 32 * 32);
    }

    #[test]
    fn telemetry_reports_cache_and_arena_activity() {
        let image = square_image(24);
        let engine = SegEngine::new(fast_config()).unwrap();
        let cold = engine.run(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(cold.telemetry.cache_misses, 1);
        assert_eq!(cold.telemetry.cache_hits, 0);
        assert_eq!(cold.telemetry.cache_entries, 1);
        assert!(cold.telemetry.cache_bytes > 0);
        assert!(cold.telemetry.peak_matrix_bytes >= 24 * 24 * 8);
        assert_eq!(cold.telemetry.backend, "simd-cpu");
        assert!(hdc::kernels::KNOWN_ISAS.contains(&cold.telemetry.kernel_isa));
        let warm = engine.run(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(warm.telemetry.cache_misses, 1);
        assert_eq!(warm.telemetry.cache_hits, 1);
        assert_eq!(
            cold.outputs[0].label_map.as_raw(),
            warm.outputs[0].label_map.as_raw()
        );
    }

    #[test]
    fn views_are_segmented_whole_or_tiled() {
        let image = square_image(32);
        let engine = SegEngine::new(fast_config()).unwrap();
        let view = ImageView::crop(&image, 4, 4, 24, 20).unwrap();
        let whole = engine
            .run(&SegmentRequest::view(view).whole_image())
            .unwrap();
        assert_eq!(whole.single().label_map.width(), 24);
        assert_eq!(whole.single().label_map.height(), 20);
        let tiles = TileConfig::square(12, 2).unwrap();
        let view = ImageView::crop(&image, 4, 4, 24, 20).unwrap();
        let tiled = engine
            .run(&SegmentRequest::view(view).tiled(tiles))
            .unwrap();
        assert_eq!(tiled.single().label_map.width(), 24);
        assert!(matches!(tiled.single().mode, ExecutedMode::Tiled { .. }));
    }

    #[test]
    fn shared_cache_spans_engines() {
        let image = square_image(24);
        let first = SegEngine::new(fast_config()).unwrap();
        first.run(&SegmentRequest::image(&image)).unwrap();
        // Same config, second engine sharing the cache: no rebuild.
        let second = SegEngine::builder(fast_config())
            .cache(first.cache())
            .build()
            .unwrap();
        let report = second.run(&SegmentRequest::image(&image)).unwrap();
        assert_eq!(report.telemetry.cache_misses, 1);
        assert_eq!(report.telemetry.cache_hits, 1);
    }
}
