use crate::{Result, SegHdcError};

/// Position-encoding variant (§III-1 of the paper, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PositionEncoding {
    /// Row and column flips share the same bit range (Fig. 3a). Distances
    /// between positions on the same diagonal collapse to zero — shown in
    /// the paper as the *wrong* way to encode positions.
    Uniform,
    /// Row flips use the first half of the vector, column flips the second
    /// half (Fig. 3b); distances follow the Manhattan distance exactly.
    Manhattan,
    /// Manhattan encoding with the flip unit scaled by `α` (Fig. 3c, Eq. 5),
    /// allowing finer-grained distances.
    DecayManhattan,
    /// Decay Manhattan encoding where `β` consecutive rows/columns share a
    /// block and distances are computed between blocks (Fig. 3d, Eq. 6).
    /// This is the encoding used by SegHDC in the paper's evaluation.
    BlockDecayManhattan,
    /// Independent random hypervector per row and per column — the **RPos**
    /// ablation of Table I.
    Random,
}

/// Colour-encoding variant (§III-2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ColorEncoding {
    /// Level encoding whose Hamming distances follow the Manhattan distance
    /// of the 8-bit intensity values, one concatenated chunk per channel.
    Manhattan,
    /// Independent random hypervector per intensity value — the **RColor**
    /// ablation of Table I.
    Random,
}

/// Distance metric used by the clusterer (§III-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DistanceMetric {
    /// Cosine distance (Eq. 7) — the paper's choice, because summed integer
    /// centroids do not need re-normalisation.
    Cosine,
    /// Normalised Hamming distance against the majority-thresholded
    /// centroid; provided for the ablation benchmarks.
    Hamming,
}

/// Full configuration of a [`crate::SegHdc`] pipeline.
///
/// The defaults correspond to the paper's Table I setup for the DSB2018
/// dataset: `d = 10 000`, `α = 0.2`, `β = 26`, `γ = 1`, two clusters and ten
/// K-Means iterations.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), seghdc::SegHdcError> {
/// use seghdc::SegHdcConfig;
/// let config = SegHdcConfig::builder()
///     .dimension(800)
///     .alpha(1.0)
///     .iterations(3)
///     .build()?;
/// assert_eq!(config.dimension, 800);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegHdcConfig {
    /// Hypervector dimensionality `d`.
    pub dimension: usize,
    /// Flip-unit scale `α` of the decay Manhattan position encoding (Eq. 5).
    pub alpha: f64,
    /// Block size `β` of the block-decay position encoding (Eq. 6).
    pub beta: usize,
    /// Colour-weighting factor `γ` applied to colour flips (§III-3).
    pub gamma: usize,
    /// Number of K-Means clusters.
    pub clusters: usize,
    /// Number of K-Means iterations.
    pub iterations: usize,
    /// Position-encoding variant.
    pub position_encoding: PositionEncoding,
    /// Colour-encoding variant.
    pub color_encoding: ColorEncoding,
    /// Clustering distance metric.
    pub distance_metric: DistanceMetric,
    /// Seed for every random codebook in the pipeline.
    pub seed: u64,
    /// Whether to record the label map after every clustering iteration
    /// (needed for the Fig. 8 reproduction; costs one label map per
    /// iteration).
    pub record_snapshots: bool,
}

impl SegHdcConfig {
    /// Returns a builder initialised with the paper's default parameters.
    pub fn builder() -> SegHdcConfigBuilder {
        SegHdcConfigBuilder::new()
    }

    /// Configuration used in the paper for the DSB2018 dataset
    /// (Table I row: `α = 0.2`, `β = 26`, `γ = 1`, 2 clusters).
    pub fn dsb2018() -> Self {
        SegHdcConfigBuilder::new()
            .beta(26)
            .clusters(2)
            .build()
            .expect("preset parameters are valid")
    }

    /// Configuration used in the paper for the BBBC005 dataset
    /// (`α = 0.2`, `β = 21`, `γ = 1`, 2 clusters).
    pub fn bbbc005() -> Self {
        SegHdcConfigBuilder::new()
            .beta(21)
            .clusters(2)
            .build()
            .expect("preset parameters are valid")
    }

    /// Configuration used in the paper for the MoNuSeg dataset
    /// (`α = 0.2`, `β = 26`, `γ = 1`, 3 clusters).
    pub fn monuseg() -> Self {
        SegHdcConfigBuilder::new()
            .beta(26)
            .clusters(3)
            .build()
            .expect("preset parameters are valid")
    }

    /// Configuration used in the paper's Table II latency measurement on the
    /// DSB2018 sample image (`d = 800`, 3 iterations, `α = 1`).
    pub fn edge_dsb2018() -> Self {
        SegHdcConfigBuilder::new()
            .dimension(800)
            .alpha(1.0)
            .beta(26)
            .iterations(3)
            .clusters(2)
            .build()
            .expect("preset parameters are valid")
    }

    /// Configuration used in the paper's Table II latency measurement on the
    /// BBBC005 sample image (`d = 2000`, 3 iterations, `α = 0.8`).
    pub fn edge_bbbc005() -> Self {
        SegHdcConfigBuilder::new()
            .dimension(2000)
            .alpha(0.8)
            .beta(21)
            .iterations(3)
            .clusters(2)
            .build()
            .expect("preset parameters are valid")
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.dimension < 64 {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "hypervector dimension must be at least 64, got {}",
                    self.dimension
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha <= 0.0 {
            return Err(SegHdcError::InvalidConfig {
                message: format!("alpha must be in (0, 1], got {}", self.alpha),
            });
        }
        if self.beta == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "beta (block size) must be at least 1".to_string(),
            });
        }
        if self.gamma == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "gamma must be at least 1".to_string(),
            });
        }
        if self.clusters < 2 {
            return Err(SegHdcError::InvalidConfig {
                message: format!("at least 2 clusters are required, got {}", self.clusters),
            });
        }
        if self.iterations == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "at least one clustering iteration is required".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for SegHdcConfig {
    fn default() -> Self {
        SegHdcConfigBuilder::new()
            .build()
            .expect("default parameters are valid")
    }
}

/// Builder for [`SegHdcConfig`].
///
/// Every setter has a sensible default taken from the paper, so only the
/// parameters under study need to be specified.
#[derive(Debug, Clone)]
pub struct SegHdcConfigBuilder {
    config: SegHdcConfig,
}

impl SegHdcConfigBuilder {
    /// Creates a builder with the paper's default parameters
    /// (`d = 10 000`, `α = 0.2`, `β = 26`, `γ = 1`, 2 clusters, 10
    /// iterations, block-decay position encoding, cosine distance).
    pub fn new() -> Self {
        Self {
            config: SegHdcConfig {
                dimension: 10_000,
                alpha: 0.2,
                beta: 26,
                gamma: 1,
                clusters: 2,
                iterations: 10,
                position_encoding: PositionEncoding::BlockDecayManhattan,
                color_encoding: ColorEncoding::Manhattan,
                distance_metric: DistanceMetric::Cosine,
                seed: 0,
                record_snapshots: false,
            },
        }
    }

    /// Sets the hypervector dimensionality `d`.
    pub fn dimension(mut self, dimension: usize) -> Self {
        self.config.dimension = dimension;
        self
    }

    /// Sets the flip-unit scale `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the block size `β`.
    pub fn beta(mut self, beta: usize) -> Self {
        self.config.beta = beta;
        self
    }

    /// Sets the colour weighting `γ`.
    pub fn gamma(mut self, gamma: usize) -> Self {
        self.config.gamma = gamma;
        self
    }

    /// Sets the number of clusters.
    pub fn clusters(mut self, clusters: usize) -> Self {
        self.config.clusters = clusters;
        self
    }

    /// Sets the number of clustering iterations.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.config.iterations = iterations;
        self
    }

    /// Sets the position-encoding variant.
    pub fn position_encoding(mut self, encoding: PositionEncoding) -> Self {
        self.config.position_encoding = encoding;
        self
    }

    /// Sets the colour-encoding variant.
    pub fn color_encoding(mut self, encoding: ColorEncoding) -> Self {
        self.config.color_encoding = encoding;
        self
    }

    /// Sets the clustering distance metric.
    pub fn distance_metric(mut self, metric: DistanceMetric) -> Self {
        self.config.distance_metric = metric;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables or disables per-iteration label snapshots.
    pub fn record_snapshots(mut self, record: bool) -> Self {
        self.config.record_snapshots = record;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if any parameter is outside its
    /// valid domain.
    pub fn build(self) -> Result<SegHdcConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for SegHdcConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = SegHdcConfig::default();
        assert_eq!(config.dimension, 10_000);
        assert!((config.alpha - 0.2).abs() < 1e-12);
        assert_eq!(config.gamma, 1);
        assert_eq!(config.iterations, 10);
        assert_eq!(
            config.position_encoding,
            PositionEncoding::BlockDecayManhattan
        );
        assert_eq!(config.distance_metric, DistanceMetric::Cosine);
    }

    #[test]
    fn dataset_presets_follow_table_one() {
        assert_eq!(SegHdcConfig::bbbc005().beta, 21);
        assert_eq!(SegHdcConfig::bbbc005().clusters, 2);
        assert_eq!(SegHdcConfig::dsb2018().beta, 26);
        assert_eq!(SegHdcConfig::monuseg().clusters, 3);
    }

    #[test]
    fn edge_presets_follow_table_two() {
        let dsb = SegHdcConfig::edge_dsb2018();
        assert_eq!(dsb.dimension, 800);
        assert_eq!(dsb.iterations, 3);
        assert!((dsb.alpha - 1.0).abs() < 1e-12);
        let bbbc = SegHdcConfig::edge_bbbc005();
        assert_eq!(bbbc.dimension, 2000);
        assert!((bbbc.alpha - 0.8).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides_individual_fields() {
        let config = SegHdcConfig::builder()
            .dimension(512)
            .alpha(0.5)
            .beta(2)
            .gamma(3)
            .clusters(4)
            .iterations(7)
            .position_encoding(PositionEncoding::Random)
            .color_encoding(ColorEncoding::Random)
            .distance_metric(DistanceMetric::Hamming)
            .seed(1234)
            .record_snapshots(true)
            .build()
            .unwrap();
        assert_eq!(config.dimension, 512);
        assert_eq!(config.beta, 2);
        assert_eq!(config.gamma, 3);
        assert_eq!(config.clusters, 4);
        assert_eq!(config.iterations, 7);
        assert_eq!(config.position_encoding, PositionEncoding::Random);
        assert_eq!(config.color_encoding, ColorEncoding::Random);
        assert_eq!(config.distance_metric, DistanceMetric::Hamming);
        assert_eq!(config.seed, 1234);
        assert!(config.record_snapshots);
    }

    #[test]
    fn validation_rejects_out_of_domain_values() {
        assert!(SegHdcConfig::builder().dimension(10).build().is_err());
        assert!(SegHdcConfig::builder().alpha(0.0).build().is_err());
        assert!(SegHdcConfig::builder().alpha(1.5).build().is_err());
        assert!(SegHdcConfig::builder().beta(0).build().is_err());
        assert!(SegHdcConfig::builder().gamma(0).build().is_err());
        assert!(SegHdcConfig::builder().clusters(1).build().is_err());
        assert!(SegHdcConfig::builder().iterations(0).build().is_err());
    }
}
