//! Parameter-sweep helpers used by the Fig. 7 reproductions.
//!
//! Fig. 7(a) of the paper sweeps the number of clustering iterations
//! (1–10) and Fig. 7(b) sweeps the hypervector dimension (200–1000),
//! reporting the IoU score and the latency for each setting. These helpers
//! run those sweeps over any image with ground truth and return one record
//! per setting.

use crate::{CodebookCache, Result, SegEngine, SegHdcConfig, SegmentRequest};
use imaging::{metrics, DynamicImage, LabelMap};
use std::sync::Arc;
use std::time::Duration;

/// One record of a parameter sweep: the swept value, the IoU achieved and
/// the wall-clock latency measured on the host.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (number of iterations or dimension).
    pub value: usize,
    /// Intersection-over-Union of the segmentation against the ground truth
    /// after cluster-to-class matching.
    pub iou: f64,
    /// Host wall-clock time for the full pipeline at this setting.
    pub latency: Duration,
}

/// Runs the Fig. 7(a) sweep: IoU and latency as a function of the number of
/// clustering iterations.
///
/// One [`CodebookCache`] is shared across the per-setting engines: the
/// iteration count does not enter the codebook key, so every point after
/// the first reuses the cached codebooks and the sweep measures clustering
/// cost, not repeated codebook construction.
///
/// # Errors
///
/// Propagates configuration and pipeline errors.
pub fn iteration_sweep(
    base: &SegHdcConfig,
    iterations: impl IntoIterator<Item = usize>,
    image: &DynamicImage,
    truth: &LabelMap,
) -> Result<Vec<SweepPoint>> {
    let cache = Arc::new(CodebookCache::with_capacity(64 << 20));
    let mut points = Vec::new();
    for value in iterations {
        let config = SegHdcConfig {
            iterations: value,
            ..base.clone()
        };
        let engine = SegEngine::builder(config)
            .cache(Arc::clone(&cache))
            .build()?;
        let report = engine.run(&SegmentRequest::image(image).whole_image())?;
        let output = &report.outputs[0];
        let iou = metrics::matched_binary_iou(&output.label_map, truth)?;
        points.push(SweepPoint {
            value,
            iou,
            latency: output.total_time(),
        });
    }
    Ok(points)
}

/// Runs the Fig. 7(b) sweep: IoU and latency as a function of the
/// hypervector dimension.
///
/// # Errors
///
/// Propagates configuration and pipeline errors.
pub fn dimension_sweep(
    base: &SegHdcConfig,
    dimensions: impl IntoIterator<Item = usize>,
    image: &DynamicImage,
    truth: &LabelMap,
) -> Result<Vec<SweepPoint>> {
    let mut points = Vec::new();
    for value in dimensions {
        let config = SegHdcConfig {
            dimension: value,
            ..base.clone()
        };
        let engine = SegEngine::new(config)?;
        let report = engine.run(&SegmentRequest::image(image).whole_image())?;
        let output = &report.outputs[0];
        let iou = metrics::matched_binary_iou(&output.label_map, truth)?;
        points.push(SweepPoint {
            value,
            iou,
            latency: output.total_time(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::GrayImage;

    fn square_image(size: usize) -> (DynamicImage, LabelMap) {
        let mut img = GrayImage::filled(size, size, 30).unwrap();
        let mut truth = LabelMap::new(size, size).unwrap();
        for y in size / 4..3 * size / 4 {
            for x in size / 4..3 * size / 4 {
                img.set(x, y, 210).unwrap();
                truth.set(x, y, 1).unwrap();
            }
        }
        (DynamicImage::Gray(img), truth)
    }

    fn base() -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(512)
            .beta(2)
            .iterations(3)
            .build()
            .unwrap()
    }

    #[test]
    fn iteration_sweep_produces_one_point_per_setting() {
        let (image, truth) = square_image(16);
        let points = iteration_sweep(&base(), [1, 2, 3], &image, &truth).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].value, 1);
        assert_eq!(points[2].value, 3);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.iou));
        }
        // More iterations should not hurt accuracy on this trivial image.
        assert!(points[2].iou >= points[0].iou - 0.05);
    }

    #[test]
    fn dimension_sweep_produces_one_point_per_setting() {
        let (image, truth) = square_image(16);
        let points = dimension_sweep(&base(), [256, 512], &image, &truth).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].value, 256);
        assert_eq!(points[1].value, 512);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.iou));
            assert!(p.latency > Duration::ZERO);
        }
    }

    #[test]
    fn invalid_sweep_values_propagate_errors() {
        let (image, truth) = square_image(8);
        assert!(iteration_sweep(&base(), [0], &image, &truth).is_err());
        assert!(dimension_sweep(&base(), [8], &image, &truth).is_err());
    }
}
