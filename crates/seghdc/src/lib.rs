//! SegHDC: on-device unsupervised image segmentation with hyperdimensional
//! computing (DAC 2023).
//!
//! This crate implements the paper's framework end to end:
//!
//! * [`PositionEncoder`] — maps pixel coordinates to hypervectors whose
//!   Hamming distances follow the (block, decayed) **Manhattan distance** of
//!   the coordinates (§III-1 of the paper, Fig. 3). The uniform, Manhattan,
//!   decay and block-decay variants are all available, plus the random
//!   ablation (**RPos**).
//! * [`ColorEncoder`] — maps 8-bit colour values to hypervectors whose
//!   distances follow the Manhattan distance of intensities, with one
//!   concatenated chunk per channel (§III-2, Fig. 4), plus the random
//!   ablation (**RColor**).
//! * [`PixelEncoder`] — binds position and colour hypervectors with XOR and
//!   applies the `γ` colour-weighting knob (§III-3, Fig. 5). The batch
//!   entry point [`PixelEncoder::encode_matrix`] writes every pixel row
//!   directly into one [`hdc::HvMatrix`] with zero per-pixel allocations.
//! * [`HvKmeans`] — the revised K-Means clusterer over hypervectors using
//!   cosine distance, centroids initialised from the pixels with the largest
//!   colour difference and updated by integer bundling (§III-4, Eq. 7).
//!   [`HvKmeans::cluster_matrix`] clusters an [`hdc::HvMatrix`] in place,
//!   parallelising the assignment step across pixel rows.
//! * [`SegEngine`] — the long-lived execution engine and the crate's
//!   primary entry point: one [`SegmentRequest`] → [`SegEngine::plan`] →
//!   [`SegEngine::run`] flow replaces the five legacy `SegHdc` calls. The
//!   engine owns an [`ExecBackend`] (the per-tile "encode region + cluster
//!   matrix" unit — [`SimdCpuBackend`] by default, which dispatches every
//!   word-level bit kernel to runtime-detected SIMD via
//!   [`hdc::kernels`] and reports the ISA on every report; the
//!   scalar-pinned [`CpuBackend`] is the bit-exact reference), a persistent
//!   byte-bounded [`CodebookCache`] shared across calls and threads, and a
//!   pool of reusable [`TileArena`] scratch buffers; it plans whole-image
//!   versus streaming tiled execution per image against a memory budget and
//!   reports cache/arena telemetry on every [`SegmentReport`].
//! * [`SegHdc`] — the legacy per-call pipeline; its segmentation methods
//!   remain as thin deprecated wrappers over the engine.
//! * [`tiled`] — streaming tiled segmentation for images larger than
//!   memory: one halo-padded tile at a time inside a bounded [`TileArena`],
//!   stitched into one globally consistent map.
//!
//! # Quickstart
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use imaging::{DynamicImage, GrayImage};
//! use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
//!
//! // A small synthetic image: dark background, bright square.
//! let mut img = GrayImage::filled(32, 32, 20)?;
//! for y in 8..24 {
//!     for x in 8..24 {
//!         img.set(x, y, 220)?;
//!     }
//! }
//!
//! let config = SegHdcConfig::builder()
//!     .dimension(2000)
//!     .clusters(2)
//!     .iterations(3)
//!     .build()?;
//! let engine = SegEngine::new(config)?;
//! let report = engine.run(&SegmentRequest::image(&DynamicImage::Gray(img)))?;
//! assert_eq!(report.outputs[0].label_map.distinct_labels(), 2);
//! // A second run of the same shape reuses the cached codebooks:
//! assert_eq!(report.telemetry.cache_misses, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
mod cluster;
mod color;
mod config;
pub mod engine;
mod error;
pub mod observe;
mod pipeline;
mod pixel;
mod position;
pub mod snapshot;
pub mod sweep;
mod sync;
pub mod tiled;
pub mod toy;

pub use backend::{CpuBackend, ExecBackend, SimdCpuBackend};
pub use cache::{CacheStats, CodebookCache, CodebookKey};
pub use cluster::{ClusterOutcome, HvKmeans};
pub use color::ColorEncoder;
pub use config::{
    ColorEncoding, DistanceMetric, PositionEncoding, SegHdcConfig, SegHdcConfigBuilder,
};
pub use engine::{
    EngineOptions, EngineTelemetry, ExecutedMode, ExecutionMode, PlanDecision, PlannedMode,
    SegEngine, SegEngineBuilder, SegmentOutput, SegmentPlan, SegmentReport, SegmentRequest,
};
pub use error::SegHdcError;
pub use observe::{CancelToken, RunObserver, RunProgress};
pub use pipeline::{SegHdc, Segmentation};
pub use pixel::PixelEncoder;
pub use position::PositionEncoder;
pub use snapshot::{CentroidSetSnapshot, Snapshot, SnapshotError};
pub use tiled::{StreamingSegmentation, TileArena, TileConfig};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SegHdcError>;
