//! Poison-recovering lock acquisition for the engine's shared state.
//!
//! The codebook cache, the arena pool and the per-key build locks are all
//! shared by every request a long-running service handles. `Mutex::lock`
//! returning `Err(PoisonError)` after *one* panicking request would turn a
//! single bad frame into a permanently wedged server — every later
//! `.expect("poisoned")` caller panics too. None of these mutexes guard
//! data that can be left in a broken state by an unwind: every critical
//! section either performs a single aggregate mutation (push/pop on the
//! arena pool, map insert/remove plus its byte-accounting in one scope) or
//! guards no data at all (the per-key build locks are `Mutex<()>`). So the
//! right response to poisoning is to take the lock anyway and keep
//! serving.

use std::sync::{Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why recovery (rather than propagation) is sound
/// for every mutex in this crate.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_guard_from_a_poisoned_mutex() {
        let mutex = Mutex::new(7usize);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = mutex.lock().unwrap();
                    panic!("poison the mutex");
                })
                .join()
        });
        assert!(mutex.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&mutex), 7);
        *lock_unpoisoned(&mutex) = 8;
        assert_eq!(*lock_unpoisoned(&mutex), 8);
    }
}
