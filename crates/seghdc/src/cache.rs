//! Persistent codebook cache: an LRU of built [`PixelEncoder`]s shared
//! across calls and threads.
//!
//! Building the position and colour codebooks is the per-request fixed cost
//! of every segmentation path — for a 1024×1024 request at `d = 10 000`
//! it allocates a few megabytes of hypervectors and dominates small-image
//! latency. The codebooks depend only on the configuration (seed, dimension,
//! α, β, γ, encoding variants) and the image shape, never on pixel data, so
//! a long-running service can reuse them across requests. [`CodebookCache`]
//! is that reuse: a byte-capacity-bounded, least-recently-used map from
//! [`CodebookKey`] to [`Arc<PixelEncoder>`], safe to share across threads
//! (every [`crate::SegEngine`] holds one behind an `Arc`, and
//! [`crate::SegEngineBuilder::cache`] lets several engines share a single
//! cache).

use crate::snapshot::{Snapshot, SnapshotError};
use crate::sync::lock_unpoisoned;
use crate::{ColorEncoding, PixelEncoder, PositionEncoding, Result, SegHdcConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of one built codebook set: everything
/// [`crate::SegHdc::build_encoder`] derives the codebooks from, and nothing
/// else.
///
/// Two configurations that agree on these fields produce bit-identical
/// encoders, so a cache hit is exact — no tolerance, no revalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodebookKey {
    /// RNG seed every codebook is derived from.
    pub seed: u64,
    /// Hypervector dimensionality `d`.
    pub dimension: usize,
    /// Image width the position codebook is built for.
    pub width: usize,
    /// Image height the position codebook is built for.
    pub height: usize,
    /// Colour channel count the colour codebook is built for.
    pub channels: usize,
    /// Bit pattern of the decay factor `α` (bit-compared: `0.2` and the
    /// nearest representable neighbour are different codebooks).
    pub alpha_bits: u64,
    /// Block size `β`.
    pub beta: usize,
    /// Colour weighting `γ`.
    pub gamma: usize,
    /// Position-encoding variant.
    pub position_encoding: PositionEncoding,
    /// Colour-encoding variant.
    pub color_encoding: ColorEncoding,
}

impl CodebookKey {
    /// The cache key for `config`'s codebooks built at a
    /// `width × height × channels` image shape.
    pub fn for_shape(config: &SegHdcConfig, width: usize, height: usize, channels: usize) -> Self {
        Self {
            seed: config.seed,
            dimension: config.dimension,
            width,
            height,
            channels,
            alpha_bits: config.alpha.to_bits(),
            beta: config.beta,
            gamma: config.gamma,
            position_encoding: config.position_encoding,
            color_encoding: config.color_encoding,
        }
    }
}

/// A point-in-time snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident encoder.
    pub hits: u64,
    /// Lookups that had to build the encoder.
    pub misses: u64,
    /// Entries dropped to stay within the byte capacity.
    pub evictions: u64,
    /// Encoders currently resident.
    pub entries: usize,
    /// Codebook bytes currently resident.
    pub bytes: usize,
}

struct CacheEntry {
    encoder: Arc<PixelEncoder>,
    bytes: usize,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<CodebookKey, CacheEntry>,
    /// Per-key build locks: concurrent same-key misses serialize on these
    /// (outside the main mutex) so a slow build never blocks hits or
    /// builds for other keys.
    building: HashMap<CodebookKey, Arc<Mutex<()>>>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheInner {
    /// Fast path: bump recency and return the resident encoder, if any.
    fn lookup(&mut self, key: &CodebookKey) -> Option<Arc<PixelEncoder>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.last_used = tick;
            let encoder = Arc::clone(&entry.encoder);
            self.hits += 1;
            return Some(encoder);
        }
        None
    }
}

/// Byte-capacity-bounded LRU cache of built [`PixelEncoder`]s.
///
/// * **Keying** — exact equality on [`CodebookKey`]: any change to the
///   seed, shape, dimension or encoding parameters is a different entry.
/// * **Eviction** — when resident codebook bytes (measured with
///   [`PixelEncoder::codebook_bytes`]) exceed the capacity, the
///   least-recently-used entries are dropped, oldest first, until the cache
///   fits. The entry being inserted or returned is never evicted by its own
///   insertion, so a single oversized codebook still gets built and handed
///   out (with everything else evicted) rather than failing.
/// * **Sharing** — the map sits behind one internal mutex and `&self`
///   methods make the cache freely shareable across threads, but codebook
///   **builds run outside that mutex** under a per-key build lock:
///   concurrent requests for the same key construct the encoder once (the
///   waiters pick up the resident `Arc`), while lookups and builds for
///   other keys proceed unblocked.
pub struct CodebookCache {
    capacity_bytes: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for CodebookCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CodebookCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &stats)
            .finish()
    }
}

impl CodebookCache {
    /// Creates an empty cache bounded at `capacity_bytes` of resident
    /// codebooks.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                building: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Returns the encoder for `key`, building it with `build` on a miss.
    ///
    /// The build runs **outside** the cache-wide lock, serialized only
    /// against same-key builders: concurrent callers asking for the same
    /// key construct the codebooks once (the rest pick up the resident
    /// encoder when the builder finishes), while hits and builds for other
    /// keys proceed unblocked.
    ///
    /// # Errors
    ///
    /// Propagates the error from `build`; nothing is cached on failure
    /// (the next caller for the key retries the build).
    ///
    /// # Panic safety
    ///
    /// A `build` closure that **panics** leaves the cache fully
    /// serviceable: the panic propagates to the caller, but the key's
    /// build registration is removed on the way out (a drop guard) and
    /// both the per-key build lock and the cache-wide lock recover from
    /// poisoning, so the next caller for the same key simply retries the
    /// build. Waiters already queued on the panicking builder's key lock
    /// retry too (at worst a post-panic burst builds the encoder more than
    /// once; the byte accounting stays exact either way).
    pub fn get_or_build(
        &self,
        key: CodebookKey,
        build: impl FnOnce() -> Result<PixelEncoder>,
    ) -> Result<Arc<PixelEncoder>> {
        // Fast path, and registration of the intent to build on a miss.
        let key_lock = {
            let mut inner = lock_unpoisoned(&self.inner);
            if let Some(encoder) = inner.lookup(&key) {
                return Ok(encoder);
            }
            Arc::clone(inner.building.entry(key).or_default())
        };

        // The `Mutex<()>` guards no data, so recovering from a previous
        // builder's panic is trivially sound.
        let _build_guard = key_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check: the builder we waited on may have inserted the entry.
        {
            let mut inner = lock_unpoisoned(&self.inner);
            if let Some(encoder) = inner.lookup(&key) {
                return Ok(encoder);
            }
            inner.misses += 1;
        }

        // Deregister the build intent however this call exits — success,
        // error, or a panic unwinding out of `build` — so a failed builder
        // can never wedge its key for every future request.
        let _unregister = UnregisterBuild {
            cache: self,
            key,
            lock: &key_lock,
        };

        // The expensive part, with no cache-wide lock held.
        let built = build();

        let mut inner = lock_unpoisoned(&self.inner);
        let encoder = Arc::new(built?);
        let bytes = encoder.codebook_bytes();
        let tick = inner.tick;
        inner.bytes += bytes;
        if let Some(previous) = inner.entries.insert(
            key,
            CacheEntry {
                encoder: Arc::clone(&encoder),
                bytes,
                last_used: tick,
            },
        ) {
            // Lost a (rare) race with another builder for the same key:
            // keep the byte accounting exact.
            inner.bytes -= previous.bytes;
        }
        Self::evict_to_capacity(&mut inner, self.capacity_bytes, &key);
        Ok(encoder)
    }

    /// Drops least-recently-used entries (never `protect`) until the
    /// resident bytes fit the capacity.
    fn evict_to_capacity(inner: &mut CacheInner, capacity: usize, protect: &CodebookKey) {
        while inner.bytes > capacity && inner.entries.len() > 1 {
            let Some(victim) = inner
                .entries
                .iter()
                .filter(|(key, _)| *key != protect)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
            else {
                break;
            };
            if let Some(entry) = inner.entries.remove(&victim) {
                inner.bytes -= entry.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// Whether `key` is currently resident (does not touch recency).
    pub fn contains(&self, key: &CodebookKey) -> bool {
        lock_unpoisoned(&self.inner).entries.contains_key(key)
    }

    /// Snapshot of the hit/miss/eviction counters and resident footprint.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_unpoisoned(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            bytes: inner.bytes,
        }
    }

    /// Drops every resident encoder (the counters are kept).
    pub fn clear(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.entries.clear();
        inner.bytes = 0;
    }

    /// Exports every resident codebook into a [`Snapshot`], ordered by a
    /// canonical key sort so the serialized bytes are stable across runs
    /// (the backing map iterates in arbitrary order).
    pub fn export_snapshot(&self) -> Snapshot {
        let mut resident: Vec<(CodebookKey, Arc<PixelEncoder>)> = {
            let inner = lock_unpoisoned(&self.inner);
            inner
                .entries
                .iter()
                .map(|(key, entry)| (*key, Arc::clone(&entry.encoder)))
                .collect()
        };
        resident.sort_by_key(|(key, _)| key_sort_order(key));
        let mut snapshot = Snapshot::new();
        for (key, encoder) in resident {
            snapshot
                .push_codebook(key, encoder)
                .expect("resident entries were built for their own key");
        }
        snapshot
    }

    /// Installs a snapshot's codebooks as resident entries, returning how
    /// many were installed.
    ///
    /// Loaded entries count as neither hits nor misses — the stats keep
    /// describing request traffic, and a warm-started server's first
    /// same-shape request reports zero cache misses. Entries already
    /// resident for a key are replaced (byte accounting stays exact), and
    /// the usual LRU eviction applies if the snapshot overflows the
    /// capacity: codebooks early in the snapshot are evicted first.
    pub fn install_snapshot(&self, snapshot: &Snapshot) -> usize {
        let mut inner = lock_unpoisoned(&self.inner);
        let mut installed = 0;
        for (key, encoder) in snapshot.codebooks() {
            inner.tick += 1;
            let tick = inner.tick;
            let bytes = encoder.codebook_bytes();
            inner.bytes += bytes;
            if let Some(previous) = inner.entries.insert(
                *key,
                CacheEntry {
                    encoder: Arc::clone(encoder),
                    bytes,
                    last_used: tick,
                },
            ) {
                inner.bytes -= previous.bytes;
            }
            Self::evict_to_capacity(&mut inner, self.capacity_bytes, key);
            installed += 1;
        }
        installed
    }

    /// Serializes every resident codebook to `path` in the
    /// [`snapshot`](crate::snapshot) format, returning how many codebooks
    /// were written.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if writing the file fails.
    pub fn save_snapshot(
        &self,
        path: &std::path::Path,
    ) -> std::result::Result<usize, SnapshotError> {
        let snapshot = self.export_snapshot();
        let count = snapshot.codebooks().len();
        snapshot.save(path)?;
        Ok(count)
    }

    /// Restores codebooks from a snapshot file written by
    /// [`save_snapshot`](Self::save_snapshot), returning how many were
    /// installed (see [`install_snapshot`](Self::install_snapshot) for the
    /// stats and eviction semantics).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O failure (including a missing file),
    /// corruption, or an oversized file.
    pub fn load_snapshot(
        &self,
        path: &std::path::Path,
    ) -> std::result::Result<usize, SnapshotError> {
        let snapshot = Snapshot::load(path)?;
        Ok(self.install_snapshot(&snapshot))
    }
}

/// A canonical total order over [`CodebookKey`]s for byte-stable exports.
fn key_sort_order(
    key: &CodebookKey,
) -> (u64, usize, usize, usize, usize, u64, usize, usize, u8, u8) {
    (
        key.seed,
        key.dimension,
        key.width,
        key.height,
        key.channels,
        key.alpha_bits,
        key.beta,
        key.gamma,
        key.position_encoding as u8,
        key.color_encoding as u8,
    )
}

/// Removes a builder's `building` registration when it goes out of scope —
/// including by panic, which is the whole point: a panicking `build`
/// closure must not leave a stale entry (and its poisoned lock) wedging
/// the key.
///
/// The removal is identity-checked: only the exact lock this builder
/// registered is removed, so a later builder that re-registered the key
/// after a panic is left undisturbed.
struct UnregisterBuild<'a> {
    cache: &'a CodebookCache,
    key: CodebookKey,
    lock: &'a Arc<Mutex<()>>,
}

impl Drop for UnregisterBuild<'_> {
    fn drop(&mut self) {
        let mut inner = lock_unpoisoned(&self.cache.inner);
        if inner
            .building
            .get(&self.key)
            .is_some_and(|registered| Arc::ptr_eq(registered, self.lock))
        {
            inner.building.remove(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegHdc;

    fn config(seed: u64) -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(256)
            .beta(2)
            .iterations(1)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn build_for(config: &SegHdcConfig, width: usize, height: usize) -> PixelEncoder {
        SegHdc::new(config.clone())
            .unwrap()
            .build_encoder(width, height, 1)
            .unwrap()
    }

    #[test]
    fn keys_differ_by_seed_shape_and_encoding() {
        let base = config(0);
        let key = CodebookKey::for_shape(&base, 16, 16, 1);
        assert_eq!(key, CodebookKey::for_shape(&base, 16, 16, 1));
        assert_ne!(key, CodebookKey::for_shape(&config(1), 16, 16, 1));
        assert_ne!(key, CodebookKey::for_shape(&base, 17, 16, 1));
        assert_ne!(key, CodebookKey::for_shape(&base, 16, 17, 1));
        assert_ne!(key, CodebookKey::for_shape(&base, 16, 16, 3));
        let mut other = base.clone();
        other.position_encoding = PositionEncoding::Random;
        assert_ne!(key, CodebookKey::for_shape(&other, 16, 16, 1));
        let mut other = base.clone();
        other.color_encoding = ColorEncoding::Random;
        assert_ne!(key, CodebookKey::for_shape(&other, 16, 16, 1));
        let mut other = base.clone();
        other.dimension = 512;
        assert_ne!(key, CodebookKey::for_shape(&other, 16, 16, 1));
        let mut other = base.clone();
        other.alpha = 0.21;
        assert_ne!(key, CodebookKey::for_shape(&other, 16, 16, 1));
        // Iterations/clusters/snapshots do NOT affect the codebooks and must
        // not fragment the cache.
        let mut other = base.clone();
        other.iterations = 9;
        other.clusters = 3;
        other.record_snapshots = true;
        assert_eq!(key, CodebookKey::for_shape(&other, 16, 16, 1));
    }

    #[test]
    fn hit_returns_the_same_encoder_without_rebuilding() {
        let cfg = config(3);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 12, 12, 1);
        let first = cache
            .get_or_build(key, || Ok(build_for(&cfg, 12, 12)))
            .unwrap();
        let second = cache
            .get_or_build(key, || panic!("must not rebuild on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, first.codebook_bytes());
    }

    #[test]
    fn byte_capacity_evicts_least_recently_used_first() {
        let cfg = config(5);
        let probe = build_for(&cfg, 8, 8);
        let one_entry = probe.codebook_bytes();
        // Room for two encoders of this shape class, not three.
        let cache = CodebookCache::with_capacity(one_entry * 2 + one_entry / 2);
        let key_a = CodebookKey::for_shape(&cfg, 8, 8, 1);
        let key_b = CodebookKey::for_shape(&cfg, 8, 9, 1);
        let key_c = CodebookKey::for_shape(&cfg, 8, 10, 1);
        cache
            .get_or_build(key_a, || Ok(build_for(&cfg, 8, 8)))
            .unwrap();
        cache
            .get_or_build(key_b, || Ok(build_for(&cfg, 8, 9)))
            .unwrap();
        // Touch A so B becomes the least recently used.
        cache
            .get_or_build(key_a, || panic!("A is resident"))
            .unwrap();
        cache
            .get_or_build(key_c, || Ok(build_for(&cfg, 8, 10)))
            .unwrap();
        assert!(cache.contains(&key_a), "recently-used entry must survive");
        assert!(!cache.contains(&key_b), "LRU entry must be evicted");
        assert!(cache.contains(&key_c));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= cache.capacity_bytes());
    }

    #[test]
    fn oversized_entries_are_still_served() {
        let cfg = config(7);
        let cache = CodebookCache::with_capacity(1); // nothing fits
        let key_a = CodebookKey::for_shape(&cfg, 8, 8, 1);
        let key_b = CodebookKey::for_shape(&cfg, 9, 9, 1);
        let a = cache
            .get_or_build(key_a, || Ok(build_for(&cfg, 8, 8)))
            .unwrap();
        assert!(a.codebook_bytes() > 1);
        assert!(cache.contains(&key_a), "sole entry is kept even oversized");
        cache
            .get_or_build(key_b, || Ok(build_for(&cfg, 9, 9)))
            .unwrap();
        // The newcomer displaces the old oversized resident.
        assert!(!cache.contains(&key_a));
        assert!(cache.contains(&key_b));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cfg = config(9);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 8, 8, 1);
        let err = cache.get_or_build(key, || {
            Err(crate::SegHdcError::InvalidConfig {
                message: "boom".to_string(),
            })
        });
        assert!(err.is_err());
        assert!(!cache.contains(&key));
        let ok = cache.get_or_build(key, || Ok(build_for(&cfg, 8, 8)));
        assert!(ok.is_ok());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_same_key_lookups_build_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cfg = config(11);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 10, 10, 1);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache
                        .get_or_build(key, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            Ok(build_for(&cfg, 10, 10))
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn panicked_build_does_not_wedge_the_key() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let cfg = config(15);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 8, 8, 1);
        // Two panicking builds back to back: the second proves the first
        // left no stale `building` registration (it would deadlock or
        // panic on a poisoned per-key lock otherwise).
        for _ in 0..2 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _ = cache.get_or_build(key, || panic!("builder died"));
            }));
            assert!(result.is_err());
            assert!(!cache.contains(&key));
        }
        // The next caller retries cleanly and the cache serves hits again.
        let encoder = cache
            .get_or_build(key, || Ok(build_for(&cfg, 8, 8)))
            .unwrap();
        let again = cache
            .get_or_build(key, || panic!("must be resident"))
            .unwrap();
        assert!(Arc::ptr_eq(&encoder, &again));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.bytes, encoder.codebook_bytes());
    }

    #[test]
    fn waiters_on_a_panicked_builder_retry_cleanly() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let cfg = config(17);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 10, 10, 1);
        let rendezvous = Barrier::new(2);
        let successful_builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            // Thread A registers the build, lets B queue up behind the
            // per-key lock, then panics mid-build.
            let panicker = scope.spawn(|| {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _ = cache.get_or_build(key, || {
                        rendezvous.wait();
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("builder died mid-build");
                    });
                }));
                assert!(result.is_err());
            });
            // Thread B arrives while A is building and must end up with a
            // successfully built encoder, not a poisoned-lock panic.
            let waiter = scope.spawn(|| {
                rendezvous.wait();
                cache
                    .get_or_build(key, || {
                        successful_builds.fetch_add(1, Ordering::SeqCst);
                        Ok(build_for(&cfg, 10, 10))
                    })
                    .unwrap()
            });
            panicker.join().unwrap();
            let encoder = waiter.join().unwrap();
            assert_eq!(encoder.codebook_bytes(), cache.stats().bytes);
        });
        assert!(successful_builds.load(Ordering::SeqCst) >= 1);
        assert!(cache.contains(&key));
    }

    #[test]
    fn snapshot_save_load_warm_starts_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("seghdc-cache-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.sgsn");

        let cfg = config(23);
        let warm = CodebookCache::with_capacity(usize::MAX);
        let key_a = CodebookKey::for_shape(&cfg, 8, 8, 1);
        let key_b = CodebookKey::for_shape(&cfg, 9, 7, 1);
        let built_a = warm
            .get_or_build(key_a, || Ok(build_for(&cfg, 8, 8)))
            .unwrap();
        warm.get_or_build(key_b, || Ok(build_for(&cfg, 9, 7)))
            .unwrap();
        assert_eq!(warm.save_snapshot(&path).unwrap(), 2);

        let cold = CodebookCache::with_capacity(usize::MAX);
        assert_eq!(cold.load_snapshot(&path).unwrap(), 2);
        let stats = cold.stats();
        // Loading counts as neither hit nor miss.
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, warm.stats().bytes);
        // The restored entry serves hits without rebuilding, bit-identical
        // to the original build.
        let restored = cold
            .get_or_build(key_a, || panic!("must be served from the snapshot"))
            .unwrap();
        assert_eq!(restored.codebook_bytes(), built_a.codebook_bytes());
        for i in 0..8 {
            assert_eq!(
                restored.position().row_hv(i).unwrap(),
                built_a.position().row_hv(i).unwrap()
            );
        }
        assert_eq!(cold.stats().hits, 1);

        // Deterministic export: both caches serialize to identical bytes.
        assert_eq!(
            warm.export_snapshot().to_bytes(),
            cold.export_snapshot().to_bytes()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_install_respects_the_byte_capacity() {
        let cfg = config(29);
        let donor = CodebookCache::with_capacity(usize::MAX);
        let keys: Vec<CodebookKey> = (0..3)
            .map(|n| CodebookKey::for_shape(&cfg, 8, 8 + n, 1))
            .collect();
        for (n, key) in keys.iter().enumerate() {
            donor
                .get_or_build(*key, || Ok(build_for(&cfg, 8, 8 + n)))
                .unwrap();
        }
        let one_entry = build_for(&cfg, 8, 8).codebook_bytes();
        let bounded = CodebookCache::with_capacity(one_entry + one_entry / 2);
        let installed = bounded.install_snapshot(&donor.export_snapshot());
        assert_eq!(installed, 3);
        let stats = bounded.stats();
        assert_eq!(stats.entries, 1, "capacity holds one entry");
        assert!(stats.bytes <= bounded.capacity_bytes());
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cfg = config(13);
        let cache = CodebookCache::with_capacity(usize::MAX);
        let key = CodebookKey::for_shape(&cfg, 8, 8, 1);
        cache
            .get_or_build(key, || Ok(build_for(&cfg, 8, 8)))
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.misses, 1);
        assert!(!cache.contains(&key));
    }
}
