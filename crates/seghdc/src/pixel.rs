use crate::{ColorEncoder, PositionEncoder, Result, SegHdcError};
use hdc::kernels::{self, Kernels};
use hdc::{BinaryHypervector, HvMatrix};
use imaging::{DynamicImage, ImageView, TileRect};

/// Produces pixel hypervectors by binding position and colour hypervectors
/// with XOR (§III-3 of the paper, Fig. 5).
///
/// The encoder owns a [`PositionEncoder`] and a [`ColorEncoder`] built for a
/// specific image shape; [`encode_image`](Self::encode_image) then maps every
/// pixel of a matching image to one hypervector (in parallel across pixels).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hdc::HdcRng;
/// use imaging::{DynamicImage, GrayImage};
/// use seghdc::{ColorEncoder, ColorEncoding, PixelEncoder, PositionEncoder, PositionEncoding};
///
/// let mut rng = HdcRng::seed_from(1);
/// let position = PositionEncoder::new(PositionEncoding::Manhattan, 2048, 8, 8, 1.0, 1, &mut rng)?;
/// let color = ColorEncoder::new(ColorEncoding::Manhattan, 2048, 1, 1, &mut rng)?;
/// let pixel = PixelEncoder::new(position, color)?;
///
/// let image = DynamicImage::Gray(GrayImage::filled(8, 8, 128)?);
/// let hvs = pixel.encode_image(&image)?;
/// assert_eq!(hvs.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PixelEncoder {
    position: PositionEncoder,
    color: ColorEncoder,
}

impl PixelEncoder {
    /// Combines a position encoder and a colour encoder.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the two encoders use
    /// different hypervector dimensions.
    pub fn new(position: PositionEncoder, color: ColorEncoder) -> Result<Self> {
        if position.dimension() != color.dimension() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "position encoder dimension {} differs from colour encoder dimension {}",
                    position.dimension(),
                    color.dimension()
                ),
            });
        }
        Ok(Self { position, color })
    }

    /// The shared hypervector dimensionality.
    pub fn dimension(&self) -> usize {
        self.position.dimension()
    }

    /// The position encoder half of this pixel encoder.
    pub fn position(&self) -> &PositionEncoder {
        &self.position
    }

    /// The colour encoder half of this pixel encoder.
    pub fn color(&self) -> &ColorEncoder {
        &self.color
    }

    /// Heap bytes held by the position and colour codebooks together — what
    /// one cached encoder costs the engine's byte-capacity-bounded
    /// [`crate::CodebookCache`].
    pub fn codebook_bytes(&self) -> usize {
        self.position.codebook_bytes() + self.color.codebook_bytes()
    }

    /// Encodes the pixel at `(x, y)` of `image` as
    /// `position(y, x) XOR colour(image[x, y])`.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate lies outside the encoder's grid or
    /// the image, or if the image channel count does not match the colour
    /// encoder.
    pub fn encode_pixel(
        &self,
        image: &DynamicImage,
        x: usize,
        y: usize,
    ) -> Result<BinaryHypervector> {
        let position_hv = self.position.encode(y, x)?;
        let channels = image.channels_at(x, y)?;
        let color_hv = self.color.encode(&channels[..self.color.channels()])?;
        Ok(position_hv.xor(&color_hv)?)
    }

    /// Encodes every pixel of `image` into one [`HvMatrix`] row per pixel,
    /// in row-major order (row index `y * width + x`).
    ///
    /// This is the hot-path encoder: codebook hypervectors (position row,
    /// position column and one placed colour code per channel) are XOR-bound
    /// word-by-word directly into the matrix rows, in parallel across rows,
    /// with **zero per-pixel heap allocations** — the matrix is the only
    /// buffer ever allocated.
    ///
    /// The rows agree bit-for-bit with [`encode_pixel`](Self::encode_pixel).
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the image shape or channel
    /// count does not match the encoders.
    pub fn encode_matrix(&self, image: &DynamicImage) -> Result<HvMatrix> {
        self.check_shape(image)?;
        let view = ImageView::full(image);
        let full = TileRect {
            x: 0,
            y: 0,
            width: image.width(),
            height: image.height(),
        };
        let mut matrix = HvMatrix::zeros(image.pixel_count(), self.dimension())?;
        self.encode_region_into(&view, &full, &mut matrix)?;
        Ok(matrix)
    }

    /// Encodes the `region` rectangle of `view` into `matrix`, one row per
    /// region pixel in region-local row-major order (row index
    /// `ly * region.width + lx`).
    ///
    /// The view must have the exact shape the encoders were built for —
    /// positions are taken from the **view-global** coordinate
    /// `(region.y + ly, region.x + lx)`, so a tile encoded through this
    /// method gets bit-identical rows to the same pixels in a whole-view
    /// [`encode_matrix`](Self::encode_matrix) call. This is the streaming
    /// tiled segmenter's encoding primitive: the caller hands in a reused
    /// arena matrix (already shaped to `region.area()` rows) and no other
    /// allocation happens.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the view shape or channel
    /// count does not match the encoders, if `region` does not fit in the
    /// view, or if `matrix` is not shaped `region.area() × dimension()`.
    pub fn encode_region_into(
        &self,
        view: &ImageView<'_>,
        region: &TileRect,
        matrix: &mut HvMatrix,
    ) -> Result<()> {
        self.encode_region_into_with(view, region, matrix, kernels::auto())
    }

    /// [`encode_region_into`](Self::encode_region_into) through an explicit
    /// [`Kernels`] selection — the variant an execution backend threads its
    /// kernels into. Every XOR bind of the batch encode dispatches through
    /// `kernels`; since XOR is exact whichever implementation runs it, the
    /// rows are bit-identical for every selection.
    ///
    /// # Errors
    ///
    /// Same as [`encode_region_into`](Self::encode_region_into).
    pub fn encode_region_into_with(
        &self,
        view: &ImageView<'_>,
        region: &TileRect,
        matrix: &mut HvMatrix,
        kernels: &dyn Kernels,
    ) -> Result<()> {
        if view.height() != self.position.rows() || view.width() != self.position.cols() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "view is {}x{} but the position encoder was built for {}x{}",
                    view.width(),
                    view.height(),
                    self.position.cols(),
                    self.position.rows()
                ),
            });
        }
        if view.channels() != self.color.channels() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "view has {} channels but the colour encoder was built for {}",
                    view.channels(),
                    self.color.channels()
                ),
            });
        }
        if region.area() == 0 || region.right() > view.width() || region.bottom() > view.height() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "region {region:?} does not fit in the {}x{} view",
                    view.width(),
                    view.height()
                ),
            });
        }
        if matrix.rows() != region.area() || matrix.dim() != self.dimension() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "matrix is {}x{} but the region needs {}x{}",
                    matrix.rows(),
                    matrix.dim(),
                    region.area(),
                    self.dimension()
                ),
            });
        }
        let channels = self.color.channels();
        matrix.fill_rows(|index, row| {
            let x = region.x + index % region.width;
            let y = region.y + index / region.width;
            // The shape checks above make every lookup below in-range.
            let position_row = self
                .position
                .row_hv(y)
                .expect("row index is within the validated grid");
            let position_col = self
                .position
                .col_hv(x)
                .expect("column index is within the validated grid");
            let px = view
                .channels_at(x, y)
                .expect("pixel coordinate is within the validated view");
            row.copy_from(position_row)
                .expect("encoder dimensions are validated at construction");
            row.xor_assign_with(position_col, kernels)
                .expect("encoder dimensions are validated at construction");
            for (channel, &value) in px.iter().take(channels).enumerate() {
                row.xor_assign_with(self.color.placed_code(channel, value), kernels)
                    .expect("encoder dimensions are validated at construction");
            }
        });
        Ok(())
    }

    /// Encodes every pixel of `image` in row-major order, as owned
    /// hypervectors.
    ///
    /// Convenience wrapper over [`encode_matrix`](Self::encode_matrix);
    /// prefer the matrix form anywhere throughput matters, since this copies
    /// every row into its own allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the image shape or channel
    /// count does not match the encoders.
    pub fn encode_image(&self, image: &DynamicImage) -> Result<Vec<BinaryHypervector>> {
        Ok(self.encode_matrix(image)?.to_vectors())
    }

    fn check_shape(&self, image: &DynamicImage) -> Result<()> {
        let width = image.width();
        let height = image.height();
        if height != self.position.rows() || width != self.position.cols() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "image is {width}x{height} but the position encoder was built for {}x{}",
                    self.position.cols(),
                    self.position.rows()
                ),
            });
        }
        if image.channels() != self.color.channels() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "image has {} channels but the colour encoder was built for {}",
                    image.channels(),
                    self.color.channels()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColorEncoding, PositionEncoding};
    use hdc::HdcRng;
    use imaging::GrayImage;

    fn encoder(dim: usize, width: usize, height: usize) -> PixelEncoder {
        let mut rng = HdcRng::seed_from(9);
        let position = PositionEncoder::new(
            PositionEncoding::Manhattan,
            dim,
            height,
            width,
            1.0,
            1,
            &mut rng,
        )
        .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, dim, 1, 1, &mut rng).unwrap();
        PixelEncoder::new(position, color).unwrap()
    }

    fn gradient_image(width: usize, height: usize) -> DynamicImage {
        let mut img = GrayImage::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, ((x * 255) / (width - 1).max(1)) as u8)
                    .unwrap();
            }
        }
        DynamicImage::Gray(img)
    }

    #[test]
    fn mismatched_dimensions_are_rejected() {
        let mut rng = HdcRng::seed_from(1);
        let position =
            PositionEncoder::new(PositionEncoding::Manhattan, 1024, 4, 4, 1.0, 1, &mut rng)
                .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, 2048, 1, 1, &mut rng).unwrap();
        assert!(PixelEncoder::new(position, color).is_err());
    }

    #[test]
    fn encode_image_produces_one_hv_per_pixel_in_row_major_order() {
        let enc = encoder(2048, 6, 4);
        let image = gradient_image(6, 4);
        let hvs = enc.encode_image(&image).unwrap();
        assert_eq!(hvs.len(), 24);
        // Spot-check against the scalar path.
        let direct = enc.encode_pixel(&image, 5, 3).unwrap();
        assert_eq!(hvs[3 * 6 + 5], direct);
        assert_eq!(enc.dimension(), 2048);
    }

    #[test]
    fn shape_and_channel_mismatches_are_rejected() {
        let enc = encoder(2048, 6, 4);
        let wrong_shape = gradient_image(4, 6);
        assert!(enc.encode_image(&wrong_shape).is_err());
        assert!(enc.encode_matrix(&wrong_shape).is_err());
        let rgb = DynamicImage::Rgb(gradient_image(6, 4).to_rgb());
        assert!(enc.encode_image(&rgb).is_err());
        assert!(enc.encode_matrix(&rgb).is_err());
    }

    #[test]
    fn matrix_rows_agree_bitwise_with_the_scalar_path() {
        let enc = encoder(1000, 7, 5); // dim deliberately not a multiple of 64
        let image = gradient_image(7, 5);
        let matrix = enc.encode_matrix(&image).unwrap();
        assert_eq!(matrix.rows(), 35);
        assert_eq!(matrix.dim(), 1000);
        for y in 0..5 {
            for x in 0..7 {
                let scalar = enc.encode_pixel(&image, x, y).unwrap();
                assert_eq!(
                    matrix.row(y * 7 + x).to_hypervector(),
                    scalar,
                    "pixel ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn region_rows_agree_bitwise_with_the_whole_image_matrix() {
        let enc = encoder(1000, 9, 6);
        let image = gradient_image(9, 6);
        let whole = enc.encode_matrix(&image).unwrap();
        let view = ImageView::full(&image);
        let region = TileRect {
            x: 2,
            y: 1,
            width: 5,
            height: 4,
        };
        let mut matrix = HvMatrix::zeros(region.area(), 1000).unwrap();
        enc.encode_region_into(&view, &region, &mut matrix).unwrap();
        for ly in 0..region.height {
            for lx in 0..region.width {
                let global = (region.y + ly) * 9 + (region.x + lx);
                assert_eq!(
                    matrix.row(ly * region.width + lx).to_hypervector(),
                    whole.row(global).to_hypervector(),
                    "pixel ({lx},{ly})"
                );
            }
        }
    }

    #[test]
    fn encode_region_validates_its_inputs() {
        let enc = encoder(512, 6, 4);
        let image = gradient_image(6, 4);
        let view = ImageView::full(&image);
        let region = TileRect {
            x: 0,
            y: 0,
            width: 6,
            height: 4,
        };
        // Matrix shape must match the region.
        let mut wrong_rows = HvMatrix::zeros(5, 512).unwrap();
        assert!(enc
            .encode_region_into(&view, &region, &mut wrong_rows)
            .is_err());
        let mut wrong_dim = HvMatrix::zeros(24, 256).unwrap();
        assert!(enc
            .encode_region_into(&view, &region, &mut wrong_dim)
            .is_err());
        // Region must fit in the view.
        let mut ok = HvMatrix::zeros(24, 512).unwrap();
        let outside = TileRect {
            x: 3,
            y: 0,
            width: 4,
            height: 4,
        };
        assert!(enc.encode_region_into(&view, &outside, &mut ok).is_err());
        // View must match the encoder grid.
        let small = gradient_image(4, 4);
        let small_view = ImageView::full(&small);
        assert!(enc
            .encode_region_into(&small_view, &region, &mut ok)
            .is_err());
        assert!(enc.encode_region_into(&view, &region, &mut ok).is_ok());
    }

    #[test]
    fn rgb_matrix_rows_agree_bitwise_with_the_scalar_path() {
        let mut rng = HdcRng::seed_from(31);
        let position =
            PositionEncoder::new(PositionEncoding::Manhattan, 1500, 4, 4, 1.0, 1, &mut rng)
                .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, 1500, 3, 1, &mut rng).unwrap();
        let enc = PixelEncoder::new(position, color).unwrap();
        let rgb = DynamicImage::Rgb(gradient_image(4, 4).to_rgb());
        let matrix = enc.encode_matrix(&rgb).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                let scalar = enc.encode_pixel(&rgb, x, y).unwrap();
                assert_eq!(matrix.row(y * 4 + x).to_hypervector(), scalar);
            }
        }
    }

    #[test]
    fn binding_preserves_color_distances_at_the_same_position() {
        // Fig. 5(b): if only the colour hypervector changes, the pixel
        // hypervector changes by exactly the same number of bits.
        let enc = encoder(4096, 8, 8);
        let mut img_a = GrayImage::filled(8, 8, 100).unwrap();
        let mut img_b = GrayImage::filled(8, 8, 100).unwrap();
        img_a.set(3, 3, 100).unwrap();
        img_b.set(3, 3, 110).unwrap();
        let hv_a = enc.encode_pixel(&DynamicImage::Gray(img_a), 3, 3).unwrap();
        let hv_b = enc.encode_pixel(&DynamicImage::Gray(img_b), 3, 3).unwrap();
        let expected = enc.color().intensity_distance(100, 110).unwrap();
        assert_eq!(hv_a.hamming(&hv_b).unwrap(), expected);
    }

    #[test]
    fn binding_preserves_position_distances_for_the_same_color() {
        // Fig. 5: same colour, different position -> distance equals the
        // position distance.
        let enc = encoder(4096, 8, 8);
        let image = DynamicImage::Gray(GrayImage::filled(8, 8, 77).unwrap());
        let a = enc.encode_pixel(&image, 1, 1).unwrap();
        let b = enc.encode_pixel(&image, 1, 5).unwrap();
        let expected = enc
            .position()
            .encode(1, 1)
            .unwrap()
            .hamming(&enc.position().encode(5, 1).unwrap())
            .unwrap();
        assert_eq!(a.hamming(&b).unwrap(), expected);
    }

    #[test]
    fn nearby_same_color_pixels_are_closer_than_distant_different_ones() {
        // The property motivating the whole design (Fig. 1): pixels with the
        // same colour in a small neighbourhood cluster tightly.
        let enc = encoder(8192, 8, 8);
        let image = gradient_image(8, 8);
        let hvs = enc.encode_image(&image).unwrap();
        let same_color_near = hvs[0].hamming(&hvs[8]).unwrap(); // (0,0) vs (0,1): same column
        let diff_color_far = hvs[0].hamming(&hvs[7]).unwrap(); // (0,0) vs (7,0): other end
        assert!(same_color_near < diff_color_far);
    }
}
