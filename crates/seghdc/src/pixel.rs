use crate::{ColorEncoder, PositionEncoder, Result, SegHdcError};
use hdc::{BinaryHypervector, HvMatrix};
use imaging::DynamicImage;

/// Produces pixel hypervectors by binding position and colour hypervectors
/// with XOR (§III-3 of the paper, Fig. 5).
///
/// The encoder owns a [`PositionEncoder`] and a [`ColorEncoder`] built for a
/// specific image shape; [`encode_image`](Self::encode_image) then maps every
/// pixel of a matching image to one hypervector (in parallel across pixels).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hdc::HdcRng;
/// use imaging::{DynamicImage, GrayImage};
/// use seghdc::{ColorEncoder, ColorEncoding, PixelEncoder, PositionEncoder, PositionEncoding};
///
/// let mut rng = HdcRng::seed_from(1);
/// let position = PositionEncoder::new(PositionEncoding::Manhattan, 2048, 8, 8, 1.0, 1, &mut rng)?;
/// let color = ColorEncoder::new(ColorEncoding::Manhattan, 2048, 1, 1, &mut rng)?;
/// let pixel = PixelEncoder::new(position, color)?;
///
/// let image = DynamicImage::Gray(GrayImage::filled(8, 8, 128)?);
/// let hvs = pixel.encode_image(&image)?;
/// assert_eq!(hvs.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PixelEncoder {
    position: PositionEncoder,
    color: ColorEncoder,
}

impl PixelEncoder {
    /// Combines a position encoder and a colour encoder.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the two encoders use
    /// different hypervector dimensions.
    pub fn new(position: PositionEncoder, color: ColorEncoder) -> Result<Self> {
        if position.dimension() != color.dimension() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "position encoder dimension {} differs from colour encoder dimension {}",
                    position.dimension(),
                    color.dimension()
                ),
            });
        }
        Ok(Self { position, color })
    }

    /// The shared hypervector dimensionality.
    pub fn dimension(&self) -> usize {
        self.position.dimension()
    }

    /// The position encoder half of this pixel encoder.
    pub fn position(&self) -> &PositionEncoder {
        &self.position
    }

    /// The colour encoder half of this pixel encoder.
    pub fn color(&self) -> &ColorEncoder {
        &self.color
    }

    /// Encodes the pixel at `(x, y)` of `image` as
    /// `position(y, x) XOR colour(image[x, y])`.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate lies outside the encoder's grid or
    /// the image, or if the image channel count does not match the colour
    /// encoder.
    pub fn encode_pixel(
        &self,
        image: &DynamicImage,
        x: usize,
        y: usize,
    ) -> Result<BinaryHypervector> {
        let position_hv = self.position.encode(y, x)?;
        let channels = image.channels_at(x, y)?;
        let color_hv = self.color.encode(&channels[..self.color.channels()])?;
        Ok(position_hv.xor(&color_hv)?)
    }

    /// Encodes every pixel of `image` into one [`HvMatrix`] row per pixel,
    /// in row-major order (row index `y * width + x`).
    ///
    /// This is the hot-path encoder: codebook hypervectors (position row,
    /// position column and one placed colour code per channel) are XOR-bound
    /// word-by-word directly into the matrix rows, in parallel across rows,
    /// with **zero per-pixel heap allocations** — the matrix is the only
    /// buffer ever allocated.
    ///
    /// The rows agree bit-for-bit with [`encode_pixel`](Self::encode_pixel).
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the image shape or channel
    /// count does not match the encoders.
    pub fn encode_matrix(&self, image: &DynamicImage) -> Result<HvMatrix> {
        let width = image.width();
        let height = image.height();
        self.check_shape(image)?;
        let channels = self.color.channels();
        let mut matrix = HvMatrix::zeros(width * height, self.dimension())?;
        matrix.fill_rows(|index, row| {
            let x = index % width;
            let y = index / width;
            // The shape checks above make every lookup below in-range.
            let position_row = self
                .position
                .row_hv(y)
                .expect("row index is within the validated grid");
            let position_col = self
                .position
                .col_hv(x)
                .expect("column index is within the validated grid");
            let px = image
                .channels_at(x, y)
                .expect("pixel coordinate is within the validated image");
            row.copy_from(position_row)
                .expect("encoder dimensions are validated at construction");
            row.xor_assign(position_col)
                .expect("encoder dimensions are validated at construction");
            for (channel, &value) in px.iter().take(channels).enumerate() {
                row.xor_assign(self.color.placed_code(channel, value))
                    .expect("encoder dimensions are validated at construction");
            }
        });
        Ok(matrix)
    }

    /// Encodes every pixel of `image` in row-major order, as owned
    /// hypervectors.
    ///
    /// Convenience wrapper over [`encode_matrix`](Self::encode_matrix);
    /// prefer the matrix form anywhere throughput matters, since this copies
    /// every row into its own allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the image shape or channel
    /// count does not match the encoders.
    pub fn encode_image(&self, image: &DynamicImage) -> Result<Vec<BinaryHypervector>> {
        Ok(self.encode_matrix(image)?.to_vectors())
    }

    fn check_shape(&self, image: &DynamicImage) -> Result<()> {
        let width = image.width();
        let height = image.height();
        if height != self.position.rows() || width != self.position.cols() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "image is {width}x{height} but the position encoder was built for {}x{}",
                    self.position.cols(),
                    self.position.rows()
                ),
            });
        }
        if image.channels() != self.color.channels() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "image has {} channels but the colour encoder was built for {}",
                    image.channels(),
                    self.color.channels()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColorEncoding, PositionEncoding};
    use hdc::HdcRng;
    use imaging::GrayImage;

    fn encoder(dim: usize, width: usize, height: usize) -> PixelEncoder {
        let mut rng = HdcRng::seed_from(9);
        let position = PositionEncoder::new(
            PositionEncoding::Manhattan,
            dim,
            height,
            width,
            1.0,
            1,
            &mut rng,
        )
        .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, dim, 1, 1, &mut rng).unwrap();
        PixelEncoder::new(position, color).unwrap()
    }

    fn gradient_image(width: usize, height: usize) -> DynamicImage {
        let mut img = GrayImage::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, ((x * 255) / (width - 1).max(1)) as u8)
                    .unwrap();
            }
        }
        DynamicImage::Gray(img)
    }

    #[test]
    fn mismatched_dimensions_are_rejected() {
        let mut rng = HdcRng::seed_from(1);
        let position =
            PositionEncoder::new(PositionEncoding::Manhattan, 1024, 4, 4, 1.0, 1, &mut rng)
                .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, 2048, 1, 1, &mut rng).unwrap();
        assert!(PixelEncoder::new(position, color).is_err());
    }

    #[test]
    fn encode_image_produces_one_hv_per_pixel_in_row_major_order() {
        let enc = encoder(2048, 6, 4);
        let image = gradient_image(6, 4);
        let hvs = enc.encode_image(&image).unwrap();
        assert_eq!(hvs.len(), 24);
        // Spot-check against the scalar path.
        let direct = enc.encode_pixel(&image, 5, 3).unwrap();
        assert_eq!(hvs[3 * 6 + 5], direct);
        assert_eq!(enc.dimension(), 2048);
    }

    #[test]
    fn shape_and_channel_mismatches_are_rejected() {
        let enc = encoder(2048, 6, 4);
        let wrong_shape = gradient_image(4, 6);
        assert!(enc.encode_image(&wrong_shape).is_err());
        assert!(enc.encode_matrix(&wrong_shape).is_err());
        let rgb = DynamicImage::Rgb(gradient_image(6, 4).to_rgb());
        assert!(enc.encode_image(&rgb).is_err());
        assert!(enc.encode_matrix(&rgb).is_err());
    }

    #[test]
    fn matrix_rows_agree_bitwise_with_the_scalar_path() {
        let enc = encoder(1000, 7, 5); // dim deliberately not a multiple of 64
        let image = gradient_image(7, 5);
        let matrix = enc.encode_matrix(&image).unwrap();
        assert_eq!(matrix.rows(), 35);
        assert_eq!(matrix.dim(), 1000);
        for y in 0..5 {
            for x in 0..7 {
                let scalar = enc.encode_pixel(&image, x, y).unwrap();
                assert_eq!(
                    matrix.row(y * 7 + x).to_hypervector(),
                    scalar,
                    "pixel ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn rgb_matrix_rows_agree_bitwise_with_the_scalar_path() {
        let mut rng = HdcRng::seed_from(31);
        let position =
            PositionEncoder::new(PositionEncoding::Manhattan, 1500, 4, 4, 1.0, 1, &mut rng)
                .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, 1500, 3, 1, &mut rng).unwrap();
        let enc = PixelEncoder::new(position, color).unwrap();
        let rgb = DynamicImage::Rgb(gradient_image(4, 4).to_rgb());
        let matrix = enc.encode_matrix(&rgb).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                let scalar = enc.encode_pixel(&rgb, x, y).unwrap();
                assert_eq!(matrix.row(y * 4 + x).to_hypervector(), scalar);
            }
        }
    }

    #[test]
    fn binding_preserves_color_distances_at_the_same_position() {
        // Fig. 5(b): if only the colour hypervector changes, the pixel
        // hypervector changes by exactly the same number of bits.
        let enc = encoder(4096, 8, 8);
        let mut img_a = GrayImage::filled(8, 8, 100).unwrap();
        let mut img_b = GrayImage::filled(8, 8, 100).unwrap();
        img_a.set(3, 3, 100).unwrap();
        img_b.set(3, 3, 110).unwrap();
        let hv_a = enc.encode_pixel(&DynamicImage::Gray(img_a), 3, 3).unwrap();
        let hv_b = enc.encode_pixel(&DynamicImage::Gray(img_b), 3, 3).unwrap();
        let expected = enc.color().intensity_distance(100, 110).unwrap();
        assert_eq!(hv_a.hamming(&hv_b).unwrap(), expected);
    }

    #[test]
    fn binding_preserves_position_distances_for_the_same_color() {
        // Fig. 5: same colour, different position -> distance equals the
        // position distance.
        let enc = encoder(4096, 8, 8);
        let image = DynamicImage::Gray(GrayImage::filled(8, 8, 77).unwrap());
        let a = enc.encode_pixel(&image, 1, 1).unwrap();
        let b = enc.encode_pixel(&image, 1, 5).unwrap();
        let expected = enc
            .position()
            .encode(1, 1)
            .unwrap()
            .hamming(&enc.position().encode(5, 1).unwrap())
            .unwrap();
        assert_eq!(a.hamming(&b).unwrap(), expected);
    }

    #[test]
    fn nearby_same_color_pixels_are_closer_than_distant_different_ones() {
        // The property motivating the whole design (Fig. 1): pixels with the
        // same colour in a small neighbourhood cluster tightly.
        let enc = encoder(8192, 8, 8);
        let image = gradient_image(8, 8);
        let hvs = enc.encode_image(&image).unwrap();
        let same_color_near = hvs[0].hamming(&hvs[8]).unwrap(); // (0,0) vs (0,1): same column
        let diff_color_far = hvs[0].hamming(&hvs[7]).unwrap(); // (0,0) vs (7,0): other end
        assert!(same_color_near < diff_color_far);
    }
}
