use crate::{PositionEncoding, Result, SegHdcError};
use hdc::{BinaryHypervector, HdcRng, ItemMemory, LevelMemory};

/// Encodes pixel coordinates into hypervectors following the paper's
/// Manhattan-distance construction (§III-1).
///
/// A position hypervector is the XOR of a *row* hypervector and a *column*
/// hypervector. Depending on the [`PositionEncoding`] variant the row/column
/// codebooks are built so that
/// `hamming(p(i, j), p(i + m, j + n))` is proportional to the (block,
/// decayed) Manhattan distance `m + n` — or, for the `Uniform` and `Random`
/// variants, deliberately *not*, reproducing the ablations of Fig. 3 and
/// Table I.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), seghdc::SegHdcError> {
/// use hdc::HdcRng;
/// use seghdc::{PositionEncoder, PositionEncoding};
///
/// let mut rng = HdcRng::seed_from(7);
/// let encoder = PositionEncoder::new(
///     PositionEncoding::Manhattan,
///     4096,
///     16,
///     16,
///     1.0,
///     1,
///     &mut rng,
/// )?;
/// let origin = encoder.encode(0, 0)?;
/// let near = encoder.encode(0, 1)?;
/// let far = encoder.encode(0, 8)?;
/// assert!(origin.hamming(&near)? < origin.hamming(&far)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PositionEncoder {
    dimension: usize,
    encoding: PositionEncoding,
    rows: Vec<BinaryHypervector>,
    cols: Vec<BinaryHypervector>,
    row_flip_unit: usize,
    col_flip_unit: usize,
}

impl PositionEncoder {
    /// Builds the row/column codebooks for a `rows x cols` pixel grid.
    ///
    /// `alpha` is the decay factor of Eq. 5 and `beta` the block size of
    /// Eq. 6; they are ignored by the variants that do not use them.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the grid is empty, or an
    /// [`SegHdcError::Hdc`] error if the codebook construction fails.
    pub fn new(
        encoding: PositionEncoding,
        dimension: usize,
        rows: usize,
        cols: usize,
        alpha: f64,
        beta: usize,
        rng: &mut HdcRng,
    ) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "position grid must have at least one row and one column".to_string(),
            });
        }
        if beta == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "beta (block size) must be at least 1".to_string(),
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SegHdcError::InvalidConfig {
                message: format!("alpha must be in (0, 1], got {alpha}"),
            });
        }

        let half = dimension / 2;
        let (row_hvs, col_hvs, row_unit, col_unit) = match encoding {
            PositionEncoding::Random => {
                let row_memory = ItemMemory::new(rows, dimension, rng)?;
                let col_memory = ItemMemory::new(cols, dimension, rng)?;
                (
                    row_memory.items().to_vec(),
                    col_memory.items().to_vec(),
                    0,
                    0,
                )
            }
            PositionEncoding::Uniform => {
                // Both row and column flips progress over the *same* bit
                // range starting at 0, which is exactly what makes diagonal
                // distances collapse in Fig. 3(a).
                let row_unit = if rows > 1 { dimension / rows } else { 0 };
                let col_unit = if cols > 1 { dimension / cols } else { 0 };
                let row_levels =
                    LevelMemory::with_span(rows, dimension, row_unit, 0, dimension, rng)?;
                let col_levels =
                    LevelMemory::with_span(cols, dimension, col_unit, 0, dimension, rng)?;
                (
                    row_levels.levels().to_vec(),
                    col_levels.levels().to_vec(),
                    row_unit,
                    col_unit,
                )
            }
            PositionEncoding::Manhattan
            | PositionEncoding::DecayManhattan
            | PositionEncoding::BlockDecayManhattan => {
                let effective_alpha = match encoding {
                    PositionEncoding::Manhattan => 1.0,
                    _ => alpha,
                };
                let block = match encoding {
                    PositionEncoding::BlockDecayManhattan => beta,
                    _ => 1,
                };
                let row_unit = flip_unit(effective_alpha, dimension, rows);
                let col_unit = flip_unit(effective_alpha, dimension, cols);
                let row_level_count = rows.div_ceil(block);
                let col_level_count = cols.div_ceil(block);
                let row_levels =
                    LevelMemory::with_span(row_level_count, dimension, row_unit, 0, half, rng)?;
                let col_levels = LevelMemory::with_span(
                    col_level_count,
                    dimension,
                    col_unit,
                    half,
                    dimension - half,
                    rng,
                )?;
                let row_hvs = (0..rows)
                    .map(|i| row_levels.level(i / block).clone())
                    .collect();
                let col_hvs = (0..cols)
                    .map(|j| col_levels.level(j / block).clone())
                    .collect();
                (row_hvs, col_hvs, row_unit, col_unit)
            }
        };

        Ok(Self {
            dimension,
            encoding,
            rows: row_hvs,
            cols: col_hvs,
            row_flip_unit: row_unit,
            col_flip_unit: col_unit,
        })
    }

    /// Reassembles an encoder from previously built codebooks — the
    /// snapshot-restore path. Callers (the [`crate::snapshot`] reader) are
    /// trusted to pass codebooks that [`Self::new`] produced for the same
    /// parameters; only the structural invariants the encode paths rely on
    /// are re-checked.
    pub(crate) fn from_parts(
        encoding: PositionEncoding,
        dimension: usize,
        rows: Vec<BinaryHypervector>,
        cols: Vec<BinaryHypervector>,
        row_flip_unit: usize,
        col_flip_unit: usize,
    ) -> Result<Self> {
        if rows.is_empty() || cols.is_empty() {
            return Err(SegHdcError::InvalidConfig {
                message: "position grid must have at least one row and one column".to_string(),
            });
        }
        if let Some(bad) = rows
            .iter()
            .chain(cols.iter())
            .find(|hv| hv.dim() != dimension)
        {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "position codebook hypervector has dimension {}, expected {dimension}",
                    bad.dim()
                ),
            });
        }
        Ok(Self {
            dimension,
            encoding,
            rows,
            cols,
            row_flip_unit,
            col_flip_unit,
        })
    }

    /// The row codebook, in row order (for persistence).
    pub(crate) fn row_hvs(&self) -> &[BinaryHypervector] {
        &self.rows
    }

    /// The column codebook, in column order (for persistence).
    pub(crate) fn col_hvs(&self) -> &[BinaryHypervector] {
        &self.cols
    }

    /// The hypervector dimensionality.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The encoding variant this encoder was built with.
    pub fn encoding(&self) -> PositionEncoding {
        self.encoding
    }

    /// Number of encodable rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of encodable columns.
    pub fn cols(&self) -> usize {
        self.cols.len()
    }

    /// Heap bytes held by the row and column codebooks — the cost of
    /// keeping this encoder resident in the engine's codebook cache.
    pub fn codebook_bytes(&self) -> usize {
        self.rows
            .iter()
            .chain(self.cols.iter())
            .map(hdc::BinaryHypervector::heap_bytes)
            .sum()
    }

    /// Number of bits flipped per row step (0 for the `Random` variant).
    pub fn row_flip_unit(&self) -> usize {
        self.row_flip_unit
    }

    /// Number of bits flipped per column step (0 for the `Random` variant).
    pub fn col_flip_unit(&self) -> usize {
        self.col_flip_unit
    }

    /// The codebook hypervector of row `row`.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if `row` is out of range.
    pub fn row_hv(&self, row: usize) -> Result<&BinaryHypervector> {
        self.rows
            .get(row)
            .ok_or_else(|| SegHdcError::InvalidConfig {
                message: format!("row {row} out of range for {} rows", self.rows.len()),
            })
    }

    /// The codebook hypervector of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if `col` is out of range.
    pub fn col_hv(&self, col: usize) -> Result<&BinaryHypervector> {
        self.cols
            .get(col)
            .ok_or_else(|| SegHdcError::InvalidConfig {
                message: format!("column {col} out of range for {} columns", self.cols.len()),
            })
    }

    /// Encodes the position at `(row, col)` as `row_hv XOR col_hv`.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the coordinate is out of
    /// range.
    pub fn encode(&self, row: usize, col: usize) -> Result<BinaryHypervector> {
        Ok(self.row_hv(row)?.xor(self.col_hv(col)?)?)
    }

    /// Hamming distances from `p(0, 0)` to `p(i, j)` for `i, j < size` —
    /// the grids visualised in Fig. 3 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if `size` exceeds the grid.
    pub fn distance_grid(&self, size: usize) -> Result<Vec<Vec<usize>>> {
        if size > self.rows() || size > self.cols() {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "distance grid of size {size} exceeds the {}x{} position grid",
                    self.rows(),
                    self.cols()
                ),
            });
        }
        let origin = self.encode(0, 0)?;
        let mut grid = vec![vec![0usize; size]; size];
        for (i, grid_row) in grid.iter_mut().enumerate() {
            for (j, cell) in grid_row.iter_mut().enumerate() {
                *cell = origin.hamming(&self.encode(i, j)?)?;
            }
        }
        Ok(grid)
    }
}

/// Flip unit of Eq. 5: `⌊α · d / (2 · n)⌋`.
fn flip_unit(alpha: f64, dimension: usize, steps: usize) -> usize {
    if steps <= 1 {
        return 0;
    }
    ((alpha * dimension as f64) / (2.0 * steps as f64)).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> HdcRng {
        HdcRng::seed_from(42)
    }

    fn encoder(encoding: PositionEncoding, alpha: f64, beta: usize) -> PositionEncoder {
        PositionEncoder::new(encoding, 10_000, 16, 16, alpha, beta, &mut rng()).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(
            PositionEncoder::new(PositionEncoding::Manhattan, 1024, 0, 4, 0.5, 1, &mut rng())
                .is_err()
        );
        assert!(
            PositionEncoder::new(PositionEncoding::Manhattan, 1024, 4, 4, 0.0, 1, &mut rng())
                .is_err()
        );
        assert!(
            PositionEncoder::new(PositionEncoding::Manhattan, 1024, 4, 4, 0.5, 0, &mut rng())
                .is_err()
        );
    }

    #[test]
    fn manhattan_encoding_satisfies_equation_four() {
        // d1(p(i,j), p(i+m0, j+n0)) == d1(p(i,j), p(i+m1, j+n1)) iff m0+n0 == m1+n1.
        let enc = encoder(PositionEncoding::Manhattan, 1.0, 1);
        let x_row = enc.row_flip_unit();
        let x_col = enc.col_flip_unit();
        assert!(x_row > 0 && x_col > 0);
        let base = enc.encode(2, 3).unwrap();
        for (m, n) in [(0usize, 3usize), (1, 2), (2, 1), (3, 0)] {
            let other = enc.encode(2 + m, 3 + n).unwrap();
            assert_eq!(
                base.hamming(&other).unwrap(),
                m * x_row + n * x_col,
                "offset ({m},{n})"
            );
        }
    }

    #[test]
    fn manhattan_diagonal_distances_do_not_collapse() {
        let enc = encoder(PositionEncoding::Manhattan, 1.0, 1);
        let d = enc
            .encode(0, 0)
            .unwrap()
            .hamming(&enc.encode(1, 1).unwrap())
            .unwrap();
        assert_eq!(d, enc.row_flip_unit() + enc.col_flip_unit());
        assert!(d > 0);
    }

    #[test]
    fn uniform_encoding_collapses_diagonal_distances() {
        // Fig. 3(a): with shared flip sites and equal flip units the distance
        // between p(0,0) and p(i,i) is |i*x - i*x| = 0.
        let enc = encoder(PositionEncoding::Uniform, 1.0, 1);
        let origin = enc.encode(0, 0).unwrap();
        let diag = enc.encode(3, 3).unwrap();
        assert_eq!(origin.hamming(&diag).unwrap(), 0);
    }

    #[test]
    fn decay_alpha_shrinks_the_flip_unit() {
        let full = encoder(PositionEncoding::DecayManhattan, 1.0, 1);
        let half = encoder(PositionEncoding::DecayManhattan, 0.5, 1);
        assert_eq!(half.row_flip_unit() * 2, full.row_flip_unit());
        // Distances shrink proportionally.
        let d_full = full
            .encode(0, 0)
            .unwrap()
            .hamming(&full.encode(4, 0).unwrap())
            .unwrap();
        let d_half = half
            .encode(0, 0)
            .unwrap()
            .hamming(&half.encode(4, 0).unwrap())
            .unwrap();
        assert_eq!(d_half * 2, d_full);
    }

    #[test]
    fn block_decay_groups_beta_rows_per_block() {
        let enc = encoder(PositionEncoding::BlockDecayManhattan, 0.5, 2);
        // Rows inside the same block share a hypervector.
        assert_eq!(enc.encode(0, 0).unwrap(), enc.encode(1, 0).unwrap());
        assert_eq!(enc.encode(4, 5).unwrap(), enc.encode(5, 4).unwrap());
        // Across blocks the distance is one flip unit per block step.
        let d = enc
            .encode(0, 0)
            .unwrap()
            .hamming(&enc.encode(2, 0).unwrap())
            .unwrap();
        assert_eq!(d, enc.row_flip_unit());
        let far = enc
            .encode(0, 0)
            .unwrap()
            .hamming(&enc.encode(6, 0).unwrap())
            .unwrap();
        assert_eq!(far, 3 * enc.row_flip_unit());
    }

    #[test]
    fn random_positions_are_pseudo_orthogonal() {
        let enc = encoder(PositionEncoding::Random, 0.2, 26);
        let a = enc.encode(0, 0).unwrap();
        let b = enc.encode(0, 1).unwrap();
        let c = enc.encode(15, 15).unwrap();
        for other in [&b, &c] {
            let nh = a.normalized_hamming(other).unwrap();
            assert!((nh - 0.5).abs() < 0.05, "nh {nh}");
        }
    }

    #[test]
    fn row_and_column_hvs_are_pseudo_orthogonal_to_each_other() {
        // Lemma 1 of the paper: vectors that are XOR-ed together are
        // pseudo-orthogonal.
        let enc = encoder(PositionEncoding::BlockDecayManhattan, 0.2, 2);
        let nh = enc
            .row_hv(3)
            .unwrap()
            .normalized_hamming(enc.col_hv(7).unwrap())
            .unwrap();
        assert!((nh - 0.5).abs() < 0.05, "nh {nh}");
    }

    #[test]
    fn distance_grid_matches_pairwise_encoding() {
        let enc = encoder(PositionEncoding::Manhattan, 1.0, 1);
        let grid = enc.distance_grid(5).unwrap();
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0][0], 0);
        assert_eq!(
            grid[2][3],
            2 * enc.row_flip_unit() + 3 * enc.col_flip_unit()
        );
        assert!(enc.distance_grid(99).is_err());
    }

    #[test]
    fn out_of_range_coordinates_error() {
        let enc = encoder(PositionEncoding::Manhattan, 1.0, 1);
        assert!(enc.encode(16, 0).is_err());
        assert!(enc.encode(0, 16).is_err());
        assert!(enc.row_hv(99).is_err());
        assert!(enc.col_hv(99).is_err());
    }

    #[test]
    fn rectangular_grids_use_per_axis_flip_units() {
        let enc =
            PositionEncoder::new(PositionEncoding::Manhattan, 8192, 8, 32, 1.0, 1, &mut rng())
                .unwrap();
        assert_eq!(enc.rows(), 8);
        assert_eq!(enc.cols(), 32);
        assert_eq!(enc.row_flip_unit(), 8192 / (2 * 8));
        assert_eq!(enc.col_flip_unit(), 8192 / (2 * 32));
    }
}
