use crate::{DistanceMetric, Result, SegHdcError};
use hdc::kernels::{self, Kernels};
use hdc::{Accumulator, BinaryHypervector, BitSlicedGroup, HvMatrix};
use rayon::prelude::*;
use std::ops::Range;

/// Rows per parallel assignment work unit: large enough to amortise the
/// per-block scratch, small enough to keep every worker busy on small
/// tiles.
const ASSIGN_BLOCK_ROWS: usize = 256;

/// Cache budget for one run of stacked centroid planes during assignment.
/// When `K × planes × words` exceeds this, the centroid sweep is tiled into
/// runs that stay resident in L2 across a whole row block (partial dot
/// products are exact integer adds, so tiling cannot change any label).
const PLANE_CHUNK_BYTES: usize = 192 * 1024;

/// Cosine assignment for one block of rows: accumulate every centroid dot
/// product through the fused multi-centroid kernel (one cache-blocked run
/// of centroid planes at a time), then pick each row's argmin with one
/// popcount per row — where the per-centroid path popcounted each row once
/// per centroid.
fn assign_block_cosine(
    pixels: &HvMatrix,
    base: usize,
    out: &mut [u32],
    group: &BitSlicedGroup,
    chunk_ranges: &[Range<usize>],
    kernels: &dyn Kernels,
) {
    let clusters = group.len();
    let mut dots = vec![0u64; out.len() * clusters];
    for range in chunk_ranges {
        for (i, row_dots) in dots.chunks_mut(clusters).enumerate() {
            group.dot_row_range_with(
                range.clone(),
                pixels.row(base + i),
                &mut row_dots[range.clone()],
                kernels,
            );
        }
    }
    for (i, (label, row_dots)) in out.iter_mut().zip(dots.chunks(clusters)).enumerate() {
        let ones = kernels.popcount(pixels.row(base + i).as_words()) as usize;
        let row_norm = (ones as f64).sqrt();
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (k, &dot) in row_dots.iter().enumerate() {
            let distance = group.cosine_distance_with_row_norm(k, dot, row_norm);
            if distance < best_distance {
                best_distance = distance;
                best = k;
            }
        }
        *label = best as u32;
    }
}

/// Hamming assignment for one block of rows: all centroid distances for a
/// row come from one fused `hamming_multi` sweep over the stacked majority
/// vectors. Slots whose centroid had no majority vector (empty bundle —
/// unreachable in practice, since empty clusters inherit the previous
/// centroid) are zero-padded in the stack and skipped via `valid`,
/// preserving the reference path's infinite distance for them.
fn assign_block_hamming(
    pixels: &HvMatrix,
    base: usize,
    out: &mut [u32],
    majority_stack: &[u64],
    majority_valid: &[bool],
    dim: usize,
    kernels: &dyn Kernels,
) {
    let clusters = majority_valid.len();
    let mut hams = vec![0u64; clusters];
    for (i, label) in out.iter_mut().enumerate() {
        kernels.hamming_multi(pixels.row(base + i).as_words(), majority_stack, &mut hams);
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (k, &ham) in hams.iter().enumerate() {
            let distance = if majority_valid[k] {
                ham as f64 / dim as f64
            } else {
                f64::INFINITY
            };
            if distance < best_distance {
                best_distance = distance;
                best = k;
            }
        }
        *label = best as u32;
    }
}

/// Outcome of clustering one image's pixel hypervectors.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Cluster index per pixel, in the same order as the input hypervectors.
    pub labels: Vec<u32>,
    /// Number of iterations executed.
    pub iterations_run: usize,
    /// Per-iteration label assignments (only populated when snapshots are
    /// requested; used by the Fig. 8 reproduction).
    pub snapshots: Vec<Vec<u32>>,
    /// Number of pixels assigned to each cluster after the final iteration.
    pub cluster_sizes: Vec<usize>,
}

/// The revised K-Means clusterer of §III-4.
///
/// Differences from textbook K-Means, following the paper:
///
/// * centroids are **integer bundles** (element-wise sums) of the member
///   hypervectors rather than float means;
/// * the distance is **cosine distance** (Eq. 7), which is invariant to the
///   bundle's length so the sums never need normalising (a
///   [`DistanceMetric::Hamming`] mode against the majority-thresholded
///   centroid is provided for the ablation benchmarks);
/// * the initial centroids are the pixels with the **largest colour
///   difference** — the darkest and brightest pixels (and evenly spaced
///   intensity quantiles for more than two clusters) — instead of random
///   picks.
///
/// Two equivalent entry points are provided:
/// [`cluster_matrix`](Self::cluster_matrix) runs over an [`HvMatrix`] of
/// packed pixel rows with zero per-pixel allocations (the pipeline's hot
/// path), while [`cluster`](Self::cluster) accepts individual
/// [`BinaryHypervector`]s as the single-vector reference path. Both produce
/// identical labels for the same inputs.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hdc::{BinaryHypervector, HdcRng};
/// use seghdc::{DistanceMetric, HvKmeans};
///
/// let mut rng = HdcRng::seed_from(2);
/// let a = BinaryHypervector::random(1024, &mut rng);
/// let b = BinaryHypervector::random(1024, &mut rng);
/// // Two tight groups around a and b.
/// let pixels = vec![a.clone(), a.clone(), b.clone(), b.clone()];
/// let intensities = vec![0, 10, 240, 250];
/// let kmeans = HvKmeans::new(2, 5, DistanceMetric::Cosine, false)?;
/// let outcome = kmeans.cluster(&pixels, &intensities)?;
/// assert_eq!(outcome.labels[0], outcome.labels[1]);
/// assert_ne!(outcome.labels[0], outcome.labels[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HvKmeans {
    clusters: usize,
    iterations: usize,
    metric: DistanceMetric,
    record_snapshots: bool,
}

impl HvKmeans {
    /// Creates a clusterer.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if fewer than two clusters or
    /// zero iterations are requested.
    pub fn new(
        clusters: usize,
        iterations: usize,
        metric: DistanceMetric,
        record_snapshots: bool,
    ) -> Result<Self> {
        if clusters < 2 {
            return Err(SegHdcError::InvalidConfig {
                message: format!("at least 2 clusters are required, got {clusters}"),
            });
        }
        if iterations == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "at least one iteration is required".to_string(),
            });
        }
        Ok(Self {
            clusters,
            iterations,
            metric,
            record_snapshots,
        })
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Picks the initial centroid pixels: the darkest pixel, the brightest
    /// pixel, and — for more than two clusters — pixels at evenly spaced
    /// intensity quantiles in between ("the pixels with the largest colour
    /// difference", §III-4).
    fn initial_indices(&self, intensities: &[u8]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..intensities.len()).collect();
        order.sort_by_key(|&i| (intensities[i], i));
        let mut picks = Vec::with_capacity(self.clusters);
        for k in 0..self.clusters {
            let quantile = if self.clusters == 1 {
                0
            } else {
                k * (order.len() - 1) / (self.clusters - 1)
            };
            picks.push(order[quantile]);
        }
        picks.dedup();
        // If intensity ties collapsed some picks, pad with distinct indices.
        let mut next = 0usize;
        while picks.len() < self.clusters && next < intensities.len() {
            if !picks.contains(&next) {
                picks.push(next);
            }
            next += 1;
        }
        picks
    }

    fn validate_inputs(&self, pixel_count: usize, intensity_count: usize) -> Result<()> {
        if pixel_count == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "cannot cluster an empty set of pixels".to_string(),
            });
        }
        if pixel_count != intensity_count {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "{pixel_count} pixel hypervectors but {intensity_count} intensities"
                ),
            });
        }
        if pixel_count < self.clusters {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "cannot form {} clusters from {pixel_count} pixels",
                    self.clusters
                ),
            });
        }
        Ok(())
    }

    /// Clusters pixel hypervectors stored as an [`HvMatrix`] — the batched
    /// hot path used by the pipeline.
    ///
    /// Compared to [`cluster`](Self::cluster) this performs **zero
    /// per-pixel heap allocations**: the assignment step reads matrix rows
    /// in place (in parallel across rows) and the update step bundles rows
    /// into a reused set of accumulators. The labels are bit-identical to
    /// the per-vector reference path for the same inputs.
    ///
    /// `intensities` must hold one scalar intensity per pixel (used only
    /// for centroid initialisation) in the same row order as `pixels`.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the matrix is empty, if
    /// the row and intensity counts disagree, or if there are fewer rows
    /// than clusters.
    pub fn cluster_matrix(&self, pixels: &HvMatrix, intensities: &[u8]) -> Result<ClusterOutcome> {
        self.cluster_matrix_with(pixels, intensities, kernels::auto())
    }

    /// [`cluster_matrix`](Self::cluster_matrix) through an explicit
    /// [`Kernels`] selection — the variant an execution backend threads its
    /// kernels into. Every word-level operation of the iteration (bit-sliced
    /// centroid dot products in the assignment step, vertical-counter carry
    /// adds in the update step, Hamming distances in the ablation metric)
    /// dispatches through `kernels`.
    ///
    /// Kernels are bit-exact with each other (see the
    /// [`hdc::kernels`] contract), so the labels are byte-identical for
    /// every selection.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the matrix is empty, if
    /// the row and intensity counts disagree, or if there are fewer rows
    /// than clusters.
    pub fn cluster_matrix_with(
        &self,
        pixels: &HvMatrix,
        intensities: &[u8],
        kernels: &dyn Kernels,
    ) -> Result<ClusterOutcome> {
        self.validate_inputs(pixels.rows(), intensities.len())?;
        let dim = pixels.dim();
        let pixel_count = pixels.rows();

        // Initial centroids: bundles containing a single seed pixel each.
        let mut centroids: Vec<Accumulator> = Vec::with_capacity(self.clusters);
        for index in self.initial_indices(intensities) {
            let mut accumulator = Accumulator::zeros(dim)?;
            accumulator.add_row_with(pixels.row(index), kernels)?;
            centroids.push(accumulator);
        }
        // Scratch accumulators reused (cleared, not reallocated) by every
        // update step.
        let mut scratch: Vec<Accumulator> = (0..self.clusters)
            .map(|_| Accumulator::zeros(dim))
            .collect::<std::result::Result<_, _>>()?;

        let mut labels = vec![0u32; pixel_count];
        let mut snapshots = Vec::new();
        let mut iterations_run = 0;

        // Per-iteration centroid views, reused (cleared, not reallocated)
        // across iterations: the stacked bit-sliced group for cosine, the
        // stacked majority vectors (with a validity mask) for Hamming.
        let mut group = BitSlicedGroup::new();
        let mut majority_stack: Vec<u64> = Vec::new();
        let mut majority_valid: Vec<bool> = Vec::new();
        let words_per_row = dim.div_ceil(64);

        for _ in 0..self.iterations {
            iterations_run += 1;
            let metric = self.metric;
            // Per-centroid, per-iteration precomputation: the contiguous
            // bit-sliced plane stack plus cached norms for cosine (what the
            // fused multi-centroid dot kernel consumes), or the stacked
            // majority-thresholded vectors for Hamming. Both yield
            // distances bit-identical to the per-vector path.
            let chunk_ranges: Vec<Range<usize>> = match metric {
                DistanceMetric::Cosine => {
                    group.rebuild(&centroids, kernels)?;
                    group.cache_ranges(PLANE_CHUNK_BYTES)
                }
                DistanceMetric::Hamming => {
                    majority_stack.clear();
                    majority_valid.clear();
                    for centroid in &centroids {
                        match centroid.to_majority() {
                            Ok(m) => {
                                majority_stack.extend_from_slice(m.as_words());
                                majority_valid.push(true);
                            }
                            Err(_) => {
                                majority_stack.resize(majority_stack.len() + words_per_row, 0);
                                majority_valid.push(false);
                            }
                        }
                    }
                    Vec::new()
                }
            };
            // Assignment step: parallel over row blocks, written straight
            // into the reused labels buffer; each block sweeps the fused
            // multi-centroid kernels one cache-sized centroid run at a
            // time.
            let group_ref = &group;
            let chunk_ranges_ref = &chunk_ranges;
            let majority_stack_ref = &majority_stack;
            let majority_valid_ref = &majority_valid;
            labels
                .par_chunks_mut(ASSIGN_BLOCK_ROWS)
                .enumerate()
                .for_each(|(block, out)| {
                    let base = block * ASSIGN_BLOCK_ROWS;
                    match metric {
                        DistanceMetric::Cosine => assign_block_cosine(
                            pixels,
                            base,
                            out,
                            group_ref,
                            chunk_ranges_ref,
                            kernels,
                        ),
                        DistanceMetric::Hamming => assign_block_hamming(
                            pixels,
                            base,
                            out,
                            majority_stack_ref,
                            majority_valid_ref,
                            dim,
                            kernels,
                        ),
                    }
                });
            if self.record_snapshots {
                snapshots.push(labels.clone());
            }

            // Update step: bundle each cluster's rows into the reused
            // scratch accumulators.
            for accumulator in &mut scratch {
                accumulator.clear();
            }
            for (index, &label) in labels.iter().enumerate() {
                scratch[label as usize].add_row_with(pixels.row(index), kernels)?;
            }
            // Empty clusters keep their previous centroid so they can win
            // pixels back in a later iteration.
            for (k, accumulator) in scratch.iter_mut().enumerate() {
                if accumulator.items() == 0 {
                    accumulator.clone_from(&centroids[k]);
                }
            }
            std::mem::swap(&mut centroids, &mut scratch);
        }

        let mut cluster_sizes = vec![0usize; self.clusters];
        for &label in &labels {
            cluster_sizes[label as usize] += 1;
        }
        Ok(ClusterOutcome {
            labels,
            iterations_run,
            snapshots,
            cluster_sizes,
        })
    }

    /// Clusters pixel hypervectors given as individual vectors.
    ///
    /// This is the single-vector *reference path*: it allocates per-pixel
    /// (fresh accumulators every iteration) and exists as the convenience
    /// API and as the naive baseline the benchmarks compare the batched
    /// [`cluster_matrix`](Self::cluster_matrix) against. The two paths
    /// produce identical labels for the same inputs.
    ///
    /// `intensities` must hold one scalar intensity per pixel (used only for
    /// centroid initialisation) in the same order as `pixels`.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the input is empty, if
    /// `pixels` and `intensities` disagree in length, or if there are fewer
    /// pixels than clusters.
    pub fn cluster(
        &self,
        pixels: &[BinaryHypervector],
        intensities: &[u8],
    ) -> Result<ClusterOutcome> {
        self.validate_inputs(pixels.len(), intensities.len())?;
        let dim = pixels[0].dim();

        // Initial centroids: bundles containing a single seed pixel each.
        let mut centroids: Vec<Accumulator> = self
            .initial_indices(intensities)
            .into_iter()
            .map(|i| Accumulator::from_binary(&pixels[i]))
            .collect();

        let mut labels = vec![0u32; pixels.len()];
        let mut snapshots = Vec::new();
        let mut iterations_run = 0;

        for _ in 0..self.iterations {
            iterations_run += 1;
            // Assignment step (parallel over pixels).
            let metric = self.metric;
            let majority: Vec<Option<BinaryHypervector>> = match metric {
                DistanceMetric::Hamming => centroids.iter().map(|c| c.to_majority().ok()).collect(),
                // Never indexed on the cosine arm below, so don't build
                // a vector of `None`s just to ignore it.
                DistanceMetric::Cosine => Vec::new(),
            };
            let assignment: Vec<u32> = pixels
                .par_iter()
                .map(|pixel| {
                    let mut best = 0usize;
                    let mut best_distance = f64::INFINITY;
                    for (k, centroid) in centroids.iter().enumerate() {
                        let distance = match metric {
                            DistanceMetric::Cosine => {
                                centroid.cosine_distance(pixel).unwrap_or(f64::INFINITY)
                            }
                            DistanceMetric::Hamming => majority[k]
                                .as_ref()
                                .and_then(|m| m.normalized_hamming(pixel).ok())
                                .unwrap_or(f64::INFINITY),
                        };
                        if distance < best_distance {
                            best_distance = distance;
                            best = k;
                        }
                    }
                    best as u32
                })
                .collect();
            labels = assignment;
            if self.record_snapshots {
                snapshots.push(labels.clone());
            }

            // Update step: rebuild each centroid as the sum of its members.
            let mut new_centroids: Vec<Accumulator> = (0..self.clusters)
                .map(|_| Accumulator::zeros(dim))
                .collect::<std::result::Result<_, _>>()?;
            for (pixel, &label) in pixels.iter().zip(&labels) {
                new_centroids[label as usize].add(pixel)?;
            }
            // Empty clusters keep their previous centroid so they can win
            // pixels back in a later iteration.
            for (k, centroid) in new_centroids.iter_mut().enumerate() {
                if centroid.items() == 0 {
                    *centroid = centroids[k].clone();
                }
            }
            centroids = new_centroids;
        }

        let mut cluster_sizes = vec![0usize; self.clusters];
        for &label in &labels {
            cluster_sizes[label as usize] += 1;
        }
        Ok(ClusterOutcome {
            labels,
            iterations_run,
            snapshots,
            cluster_sizes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::HdcRng;

    fn noisy_copies(
        base: &BinaryHypervector,
        count: usize,
        noise_bits: usize,
        rng: &mut HdcRng,
    ) -> Vec<BinaryHypervector> {
        (0..count)
            .map(|_| {
                let mut hv = base.clone();
                let start = (rng.next_below((base.dim() - noise_bits) as u64)) as usize;
                hv.flip_range(start, noise_bits).unwrap();
                hv
            })
            .collect()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(HvKmeans::new(1, 5, DistanceMetric::Cosine, false).is_err());
        assert!(HvKmeans::new(2, 0, DistanceMetric::Cosine, false).is_err());
        assert!(HvKmeans::new(3, 10, DistanceMetric::Hamming, true).is_ok());
    }

    #[test]
    fn separates_two_well_separated_groups() {
        let mut rng = HdcRng::seed_from(8);
        let centre_a = BinaryHypervector::random(2048, &mut rng);
        let centre_b = BinaryHypervector::random(2048, &mut rng);
        let mut pixels = noisy_copies(&centre_a, 20, 50, &mut rng);
        pixels.extend(noisy_copies(&centre_b, 20, 50, &mut rng));
        // Intensities correlate with the groups (dark group, bright group).
        let intensities: Vec<u8> = (0..20).map(|_| 10).chain((0..20).map(|_| 240)).collect();

        let outcome = HvKmeans::new(2, 5, DistanceMetric::Cosine, false)
            .unwrap()
            .cluster(&pixels, &intensities)
            .unwrap();
        let first = outcome.labels[0];
        assert!(outcome.labels[..20].iter().all(|&l| l == first));
        assert!(outcome.labels[20..].iter().all(|&l| l != first));
        assert_eq!(outcome.cluster_sizes.iter().sum::<usize>(), 40);
        assert_eq!(outcome.iterations_run, 5);
    }

    #[test]
    fn hamming_metric_also_separates_groups() {
        let mut rng = HdcRng::seed_from(9);
        let centre_a = BinaryHypervector::random(2048, &mut rng);
        let centre_b = BinaryHypervector::random(2048, &mut rng);
        let mut pixels = noisy_copies(&centre_a, 10, 40, &mut rng);
        pixels.extend(noisy_copies(&centre_b, 10, 40, &mut rng));
        let intensities: Vec<u8> = (0..10).map(|_| 0).chain((0..10).map(|_| 255)).collect();
        let outcome = HvKmeans::new(2, 4, DistanceMetric::Hamming, false)
            .unwrap()
            .cluster(&pixels, &intensities)
            .unwrap();
        let first = outcome.labels[0];
        assert!(outcome.labels[..10].iter().all(|&l| l == first));
        assert!(outcome.labels[10..].iter().all(|&l| l != first));
    }

    #[test]
    fn snapshots_record_one_assignment_per_iteration() {
        let mut rng = HdcRng::seed_from(10);
        let pixels: Vec<BinaryHypervector> = (0..12)
            .map(|_| BinaryHypervector::random(512, &mut rng))
            .collect();
        let intensities: Vec<u8> = (0..12).map(|i| (i * 20) as u8).collect();
        let outcome = HvKmeans::new(3, 4, DistanceMetric::Cosine, true)
            .unwrap()
            .cluster(&pixels, &intensities)
            .unwrap();
        assert_eq!(outcome.snapshots.len(), 4);
        assert_eq!(outcome.snapshots.last().unwrap(), &outcome.labels);
    }

    #[test]
    fn input_validation_errors() {
        let kmeans = HvKmeans::new(2, 2, DistanceMetric::Cosine, false).unwrap();
        assert!(kmeans.cluster(&[], &[]).is_err());
        let mut rng = HdcRng::seed_from(11);
        let pixels = vec![BinaryHypervector::random(256, &mut rng)];
        assert!(kmeans.cluster(&pixels, &[1, 2]).is_err());
        assert!(kmeans.cluster(&pixels, &[1]).is_err()); // fewer pixels than clusters
        let matrix = HvMatrix::from_vectors(&pixels).unwrap();
        assert!(kmeans.cluster_matrix(&matrix, &[1, 2]).is_err());
        assert!(kmeans.cluster_matrix(&matrix, &[1]).is_err());
        let empty = HvMatrix::zeros(0, 256).unwrap();
        assert!(kmeans.cluster_matrix(&empty, &[]).is_err());
    }

    #[test]
    fn matrix_and_vector_paths_agree_bitwise() {
        let mut rng = HdcRng::seed_from(77);
        let centre_a = BinaryHypervector::random(1000, &mut rng); // not a multiple of 64
        let centre_b = BinaryHypervector::random(1000, &mut rng);
        let mut pixels = noisy_copies(&centre_a, 15, 60, &mut rng);
        pixels.extend(noisy_copies(&centre_b, 15, 60, &mut rng));
        let intensities: Vec<u8> = (0..30).map(|i| (i * 8) as u8).collect();
        let matrix = HvMatrix::from_vectors(&pixels).unwrap();

        for metric in [DistanceMetric::Cosine, DistanceMetric::Hamming] {
            let kmeans = HvKmeans::new(3, 5, metric, true).unwrap();
            let by_vector = kmeans.cluster(&pixels, &intensities).unwrap();
            let by_matrix = kmeans.cluster_matrix(&matrix, &intensities).unwrap();
            assert_eq!(by_vector.labels, by_matrix.labels, "{metric:?}");
            assert_eq!(by_vector.snapshots, by_matrix.snapshots, "{metric:?}");
            assert_eq!(by_vector.cluster_sizes, by_matrix.cluster_sizes);
            assert_eq!(by_vector.iterations_run, by_matrix.iterations_run);
        }
    }

    #[test]
    fn kernel_selections_produce_identical_labels() {
        let mut rng = HdcRng::seed_from(78);
        let centre_a = BinaryHypervector::random(1000, &mut rng);
        let centre_b = BinaryHypervector::random(1000, &mut rng);
        let mut pixels = noisy_copies(&centre_a, 12, 60, &mut rng);
        pixels.extend(noisy_copies(&centre_b, 12, 60, &mut rng));
        let intensities: Vec<u8> = (0..24).map(|i| (i * 10) as u8).collect();
        let matrix = HvMatrix::from_vectors(&pixels).unwrap();
        for metric in [DistanceMetric::Cosine, DistanceMetric::Hamming] {
            let kmeans = HvKmeans::new(3, 5, metric, true).unwrap();
            let scalar = kmeans
                .cluster_matrix_with(&matrix, &intensities, hdc::kernels::scalar())
                .unwrap();
            let auto = kmeans
                .cluster_matrix_with(&matrix, &intensities, hdc::kernels::auto())
                .unwrap();
            assert_eq!(scalar.labels, auto.labels, "{metric:?}");
            assert_eq!(scalar.snapshots, auto.snapshots, "{metric:?}");
            assert_eq!(scalar.cluster_sizes, auto.cluster_sizes, "{metric:?}");
        }
    }

    #[test]
    fn matrix_path_handles_empty_clusters() {
        let mut rng = HdcRng::seed_from(12);
        let hv = BinaryHypervector::random(512, &mut rng);
        let matrix = HvMatrix::from_vectors(&vec![hv; 8]).unwrap();
        let outcome = HvKmeans::new(2, 3, DistanceMetric::Cosine, false)
            .unwrap()
            .cluster_matrix(&matrix, &[128u8; 8])
            .unwrap();
        assert!(outcome.cluster_sizes.contains(&8));
        assert!(outcome.cluster_sizes.contains(&0));
    }

    #[test]
    fn initial_indices_pick_extreme_intensities() {
        let kmeans = HvKmeans::new(2, 1, DistanceMetric::Cosine, false).unwrap();
        let intensities = vec![50u8, 200, 10, 130, 255];
        let picks = kmeans.initial_indices(&intensities);
        assert_eq!(picks.len(), 2);
        assert_eq!(intensities[picks[0]], 10);
        assert_eq!(intensities[picks[1]], 255);

        let three = HvKmeans::new(3, 1, DistanceMetric::Cosine, false).unwrap();
        let picks = three.initial_indices(&intensities);
        assert_eq!(picks.len(), 3);
        assert_eq!(intensities[picks[0]], 10);
        assert_eq!(intensities[picks[2]], 255);
    }

    #[test]
    fn constant_intensity_input_still_yields_distinct_seeds() {
        let kmeans = HvKmeans::new(3, 2, DistanceMetric::Cosine, false).unwrap();
        let intensities = vec![100u8; 10];
        let picks = kmeans.initial_indices(&intensities);
        assert_eq!(picks.len(), 3);
        let unique: std::collections::BTreeSet<usize> = picks.iter().copied().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn all_identical_pixels_collapse_into_one_cluster_without_panicking() {
        let mut rng = HdcRng::seed_from(12);
        let hv = BinaryHypervector::random(512, &mut rng);
        let pixels = vec![hv.clone(); 8];
        let intensities = vec![128u8; 8];
        let outcome = HvKmeans::new(2, 3, DistanceMetric::Cosine, false)
            .unwrap()
            .cluster(&pixels, &intensities)
            .unwrap();
        assert_eq!(outcome.labels.len(), 8);
        // Everything lands in a single cluster; the other stays empty.
        assert!(outcome.cluster_sizes.contains(&8));
        assert!(outcome.cluster_sizes.contains(&0));
    }
}
