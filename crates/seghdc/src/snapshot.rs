//! Versioned, checksummed on-disk persistence for built codebooks and
//! bit-sliced centroid sets.
//!
//! Every codebook is a pure function of its [`CodebookKey`] (seed, config
//! parameters, image shape), so a built encoder is a cacheable artifact
//! that can outlive the process that derived it. This module serializes
//! [`CodebookCache`](crate::CodebookCache) contents — and, for pipelines
//! that want to resume clustering, bit-sliced centroid sets — to a single
//! flat file, and restores them bit-identically: a process that
//! [`load_snapshot`](crate::CodebookCache::load_snapshot)s at startup
//! serves its first request from a warm cache instead of re-deriving the
//! codebooks from seed.
//!
//! # Format (`SGSN`, version 1)
//!
//! The framing discipline mirrors the server's wire codec: magic bytes, a
//! version, little-endian fixed-width integers, every declared count
//! validated against both a hard cap **and the remaining input length
//! before any allocation**, and an FNV-1a-64 checksum trailer over every
//! preceding byte.
//!
//! | Field | Bytes | Meaning |
//! |---|---|---|
//! | magic | 4 | `b"SGSN"` |
//! | version | 2 | format version (currently 1) |
//! | codebooks | 4 | number of codebook sections |
//! | centroid sets | 4 | number of centroid-set sections |
//! | codebook sections | … | [`CodebookKey`] + row/column + colour codebook words |
//! | centroid-set sections | … | [`CodebookKey`] + per-centroid planes, norm, items |
//! | checksum | 8 | FNV-1a-64 of everything above |
//!
//! Inside a codebook section the key's fields come first (seed, dimension,
//! shape, α bits, β, γ, encoding variants), then the position codebook
//! (flip units, `height` row vectors, `width` column vectors, each
//! `⌈d/64⌉` packed words) and the colour codebook (flip unit, one
//! 256-entry chunk codebook per channel; the full-dimension *placed* codes
//! are rebuilt on load — a deterministic bit shift, so they are not
//! stored). A centroid-set section stores, per centroid, the plane words
//! of a [`BitSlicedCounts`] plus its item count and the cached Euclidean
//! norm **as raw `f64` bits**, so restored cosine distances are
//! bit-identical to the run that saved them.
//!
//! Corrupt input — truncation, flipped bytes, oversized declared lengths,
//! unknown versions — yields a typed [`SnapshotError`], never a panic and
//! never an allocation larger than the input itself.

use crate::cache::CodebookKey;
use crate::{ColorEncoder, ColorEncoding, PixelEncoder, PositionEncoder, PositionEncoding};
use hdc::{BinaryHypervector, BitSlicedCounts};
use std::path::Path;
use std::sync::Arc;

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SGSN";

/// The format version this build writes and the only one it reads.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Default cap on the total snapshot size [`Snapshot::load`] will read
/// into memory (checked against file metadata before the read).
pub const DEFAULT_MAX_SNAPSHOT_BYTES: u64 = 1 << 30;

/// Largest accepted hypervector dimension (bits). 2 MiB of packed words
/// per vector — far above any configuration the engine accepts, low
/// enough that a corrupt length field cannot demand an absurd allocation.
const MAX_DIMENSION: u64 = 1 << 24;

/// Largest accepted image axis (rows or columns of position codes).
const MAX_AXIS: u64 = 1 << 20;

/// Largest accepted section count (codebooks or centroid sets).
const MAX_SECTIONS: u64 = 1 << 16;

/// Largest accepted number of centroids in one set.
const MAX_CENTROIDS: u64 = 1 << 16;

/// Largest accepted plane count per centroid (counts are at most
/// `2^64 - 1`, so 64 planes bound any real accumulator).
const MAX_PLANES: u64 = 64;

/// Typed failure of snapshot encoding, decoding, or file I/O.
///
/// Decoding is total: any byte sequence maps to either a [`Snapshot`] or
/// one of these variants — corruption can never panic, and declared
/// lengths are validated against caps and the remaining input before any
/// allocation happens.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not begin with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The header declares a version this build does not understand.
    UnsupportedVersion(u16),
    /// The input ended before `field` could be read.
    Truncated {
        /// Which field the decoder was reading.
        field: &'static str,
    },
    /// A declared length exceeds its cap or the remaining input.
    LengthCap {
        /// Which field declared the length.
        field: &'static str,
        /// The declared value.
        len: u64,
        /// The largest acceptable value.
        cap: u64,
    },
    /// The checksum trailer does not match the preceding bytes.
    ChecksumMismatch,
    /// Decoding finished with unconsumed bytes before the checksum.
    TrailingBytes(usize),
    /// A field decoded but its value is structurally invalid.
    InvalidField {
        /// Which field is invalid.
        field: &'static str,
        /// Why.
        message: String,
    },
    /// The file is larger than the configured load cap.
    FileTooLarge {
        /// The file's size in bytes.
        len: u64,
        /// The configured cap.
        max: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot i/o error: {err}"),
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "bad snapshot magic {found:?}, expected {SNAPSHOT_MAGIC:?}"
                )
            }
            SnapshotError::UnsupportedVersion(version) => {
                write!(f, "unsupported snapshot version {version}")
            }
            SnapshotError::Truncated { field } => {
                write!(f, "snapshot truncated while reading {field}")
            }
            SnapshotError::LengthCap { field, len, cap } => {
                write!(
                    f,
                    "snapshot field {field} declares length {len} over cap {cap}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::TrailingBytes(count) => {
                write!(f, "{count} trailing bytes after the last snapshot section")
            }
            SnapshotError::InvalidField { field, message } => {
                write!(f, "invalid snapshot field {field}: {message}")
            }
            SnapshotError::FileTooLarge { len, max } => {
                write!(
                    f,
                    "snapshot file is {len} bytes, over the {max}-byte load cap"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// One persisted centroid set: the bit-sliced K-Means centroids of a run,
/// tagged with the codebook identity they were clustered under.
#[derive(Debug, Clone)]
pub struct CentroidSetSnapshot {
    /// The codebooks the centroids were built against.
    pub key: CodebookKey,
    /// The centroids, in cluster order.
    pub centroids: Vec<BitSlicedCounts>,
}

/// An in-memory snapshot: codebooks (keyed [`PixelEncoder`]s) plus
/// optional centroid sets, convertible to and from the `SGSN` byte format.
///
/// Build one with [`Snapshot::new`] + [`push_codebook`](Self::push_codebook)
/// (or let [`CodebookCache::export_snapshot`](crate::CodebookCache::export_snapshot)
/// do it), then [`save`](Self::save); restore with [`load`](Self::load) or
/// [`from_bytes`](Self::from_bytes).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    codebooks: Vec<(CodebookKey, Arc<PixelEncoder>)>,
    centroid_sets: Vec<CentroidSetSnapshot>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one built codebook under its key.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::InvalidField`] if the encoder's shape
    /// disagrees with the key (dimension, image shape, or channel count) —
    /// a mismatched pair would poison every future cache hit it serves.
    pub fn push_codebook(
        &mut self,
        key: CodebookKey,
        encoder: Arc<PixelEncoder>,
    ) -> Result<(), SnapshotError> {
        let position = encoder.position();
        let color = encoder.color();
        if encoder.dimension() != key.dimension
            || position.rows() != key.height
            || position.cols() != key.width
            || color.channels() != key.channels
            || position.encoding() != key.position_encoding
            || color.encoding() != key.color_encoding
        {
            return Err(SnapshotError::InvalidField {
                field: "codebook",
                message: format!(
                    "encoder shape {}x{}x{} (d={}) disagrees with key {}x{}x{} (d={})",
                    position.cols(),
                    position.rows(),
                    color.channels(),
                    encoder.dimension(),
                    key.width,
                    key.height,
                    key.channels,
                    key.dimension
                ),
            });
        }
        self.codebooks.push((key, encoder));
        Ok(())
    }

    /// Appends one centroid set.
    pub fn push_centroid_set(&mut self, set: CentroidSetSnapshot) {
        self.centroid_sets.push(set);
    }

    /// The persisted codebooks, in section order.
    pub fn codebooks(&self) -> &[(CodebookKey, Arc<PixelEncoder>)] {
        &self.codebooks
    }

    /// The persisted centroid sets, in section order.
    pub fn centroid_sets(&self) -> &[CentroidSetSnapshot] {
        &self.centroid_sets
    }

    /// Serializes to the `SGSN` byte format, checksum trailer included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u16(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, self.codebooks.len() as u32);
        put_u32(&mut out, self.centroid_sets.len() as u32);
        for (key, encoder) in &self.codebooks {
            write_key(&mut out, key);
            write_position(&mut out, encoder.position());
            write_color(&mut out, encoder.color());
        }
        for set in &self.centroid_sets {
            write_key(&mut out, &set.key);
            put_u32(&mut out, set.centroids.len() as u32);
            for centroid in &set.centroids {
                put_u32(&mut out, centroid.dim() as u32);
                put_u32(&mut out, centroid.plane_count() as u32);
                put_u64(&mut out, centroid.items() as u64);
                put_u64(&mut out, centroid.norm().to_bits());
                for &word in centroid.plane_words() {
                    put_u64(&mut out, word);
                }
            }
        }
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes the `SGSN` byte format.
    ///
    /// # Errors
    ///
    /// Any corruption maps to a typed [`SnapshotError`]; see the variant
    /// docs. Declared lengths are validated against their caps and the
    /// remaining input before any allocation.
    pub fn from_bytes(data: &[u8]) -> Result<Self, SnapshotError> {
        // Header + checksum trailer are the minimum viable file.
        if data.len() < 4 {
            return Err(SnapshotError::Truncated { field: "magic" });
        }
        let found: [u8; 4] = data[..4].try_into().expect("4 bytes checked");
        if found != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found });
        }
        if data.len() < 4 + 2 + 4 + 4 + 8 {
            return Err(SnapshotError::Truncated { field: "header" });
        }
        let (body, trailer) = data.split_at(data.len() - 8);
        let declared_sum = u64::from_le_bytes(trailer.try_into().expect("8 bytes split"));
        if fnv1a64(body) != declared_sum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut reader = SnapReader { data: body, pos: 4 };
        let version = reader.take_u16("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let codebook_count = reader.take_len("codebook count", MAX_SECTIONS)?;
        let centroid_set_count = reader.take_len("centroid set count", MAX_SECTIONS)?;

        let mut snapshot = Snapshot::new();
        for _ in 0..codebook_count {
            let key = read_key(&mut reader)?;
            let position = read_position(&mut reader, &key)?;
            let color = read_color(&mut reader, &key)?;
            let encoder =
                PixelEncoder::new(position, color).map_err(|err| SnapshotError::InvalidField {
                    field: "codebook",
                    message: err.to_string(),
                })?;
            snapshot.codebooks.push((key, Arc::new(encoder)));
        }
        for _ in 0..centroid_set_count {
            let key = read_key(&mut reader)?;
            let count = reader.take_len("centroid count", MAX_CENTROIDS)?;
            let mut centroids = Vec::new();
            for _ in 0..count {
                let dim = reader.take_len("centroid dimension", MAX_DIMENSION)?;
                if dim == 0 {
                    return Err(SnapshotError::InvalidField {
                        field: "centroid dimension",
                        message: "must be non-zero".to_string(),
                    });
                }
                let plane_count = reader.take_len("centroid planes", MAX_PLANES)?;
                let items = reader.take_u64("centroid items")?;
                let norm = f64::from_bits(reader.take_u64("centroid norm")?);
                let words_per_plane = dim.div_ceil(64);
                let words =
                    reader.take_words("centroid plane words", plane_count * words_per_plane)?;
                let centroid =
                    BitSlicedCounts::from_parts(dim as usize, words, norm, items as usize)
                        .map_err(|err| SnapshotError::InvalidField {
                            field: "centroid",
                            message: err.to_string(),
                        })?;
                centroids.push(centroid);
            }
            snapshot
                .centroid_sets
                .push(CentroidSetSnapshot { key, centroids });
        }
        if reader.pos != body.len() {
            return Err(SnapshotError::TrailingBytes(body.len() - reader.pos));
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` (atomically: a temp file in the same
    /// directory renamed over the target, so a crash mid-write never
    /// leaves a half-written snapshot behind). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the write or rename fails.
    pub fn save(&self, path: &Path) -> Result<usize, SnapshotError> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes)?;
        if let Err(err) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(err.into());
        }
        Ok(bytes.len())
    }

    /// Reads and decodes a snapshot from `path`, refusing files larger
    /// than [`DEFAULT_MAX_SNAPSHOT_BYTES`] before reading them.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure (including a missing
    /// file), [`SnapshotError::FileTooLarge`] over the cap, and any decode
    /// variant for corrupt content.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Self::load_with_limit(path, DEFAULT_MAX_SNAPSHOT_BYTES)
    }

    /// [`load`](Self::load) with an explicit size cap.
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load).
    pub fn load_with_limit(path: &Path, max_bytes: u64) -> Result<Self, SnapshotError> {
        let len = std::fs::metadata(path)?.len();
        if len > max_bytes {
            return Err(SnapshotError::FileTooLarge {
                len,
                max: max_bytes,
            });
        }
        let data = std::fs::read(path)?;
        Self::from_bytes(&data)
    }
}

/// FNV-1a 64-bit, the same function the server's wire codec uses.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn encode_position_encoding(encoding: PositionEncoding) -> u8 {
    match encoding {
        PositionEncoding::Uniform => 0,
        PositionEncoding::Manhattan => 1,
        PositionEncoding::DecayManhattan => 2,
        PositionEncoding::BlockDecayManhattan => 3,
        PositionEncoding::Random => 4,
    }
}

fn decode_position_encoding(byte: u8) -> Result<PositionEncoding, SnapshotError> {
    Ok(match byte {
        0 => PositionEncoding::Uniform,
        1 => PositionEncoding::Manhattan,
        2 => PositionEncoding::DecayManhattan,
        3 => PositionEncoding::BlockDecayManhattan,
        4 => PositionEncoding::Random,
        other => {
            return Err(SnapshotError::InvalidField {
                field: "position encoding",
                message: format!("unknown variant byte {other}"),
            })
        }
    })
}

fn encode_color_encoding(encoding: ColorEncoding) -> u8 {
    match encoding {
        ColorEncoding::Manhattan => 0,
        ColorEncoding::Random => 1,
    }
}

fn decode_color_encoding(byte: u8) -> Result<ColorEncoding, SnapshotError> {
    Ok(match byte {
        0 => ColorEncoding::Manhattan,
        1 => ColorEncoding::Random,
        other => {
            return Err(SnapshotError::InvalidField {
                field: "colour encoding",
                message: format!("unknown variant byte {other}"),
            })
        }
    })
}

fn write_key(out: &mut Vec<u8>, key: &CodebookKey) {
    put_u64(out, key.seed);
    put_u64(out, key.dimension as u64);
    put_u32(out, key.width as u32);
    put_u32(out, key.height as u32);
    out.push(key.channels as u8);
    put_u64(out, key.alpha_bits);
    put_u32(out, key.beta as u32);
    put_u32(out, key.gamma as u32);
    out.push(encode_position_encoding(key.position_encoding));
    out.push(encode_color_encoding(key.color_encoding));
}

fn read_key(reader: &mut SnapReader<'_>) -> Result<CodebookKey, SnapshotError> {
    let seed = reader.take_u64("key seed")?;
    let dimension = reader.take_u64("key dimension")?;
    if dimension == 0 || dimension > MAX_DIMENSION {
        return Err(SnapshotError::LengthCap {
            field: "key dimension",
            len: dimension,
            cap: MAX_DIMENSION,
        });
    }
    let width = u64::from(reader.take_u32("key width")?);
    let height = u64::from(reader.take_u32("key height")?);
    for (field, axis) in [("key width", width), ("key height", height)] {
        if axis == 0 || axis > MAX_AXIS {
            return Err(SnapshotError::LengthCap {
                field,
                len: axis,
                cap: MAX_AXIS,
            });
        }
    }
    let channels = reader.take_u8("key channels")?;
    if channels != 1 && channels != 3 {
        return Err(SnapshotError::InvalidField {
            field: "key channels",
            message: format!("must be 1 or 3, got {channels}"),
        });
    }
    let alpha_bits = reader.take_u64("key alpha")?;
    let beta = reader.take_u32("key beta")?;
    let gamma = reader.take_u32("key gamma")?;
    let position_encoding = decode_position_encoding(reader.take_u8("position encoding")?)?;
    let color_encoding = decode_color_encoding(reader.take_u8("colour encoding")?)?;
    Ok(CodebookKey {
        seed,
        dimension: dimension as usize,
        width: width as usize,
        height: height as usize,
        channels: usize::from(channels),
        alpha_bits,
        beta: beta as usize,
        gamma: gamma as usize,
        position_encoding,
        color_encoding,
    })
}

fn write_hv_words(out: &mut Vec<u8>, hv: &BinaryHypervector) {
    for &word in hv.as_words() {
        put_u64(out, word);
    }
}

fn write_position(out: &mut Vec<u8>, position: &PositionEncoder) {
    put_u32(out, position.row_flip_unit() as u32);
    put_u32(out, position.col_flip_unit() as u32);
    for hv in position.row_hvs().iter().chain(position.col_hvs()) {
        write_hv_words(out, hv);
    }
}

fn read_hv(
    reader: &mut SnapReader<'_>,
    field: &'static str,
    dim: usize,
) -> Result<BinaryHypervector, SnapshotError> {
    let words = reader.take_words(field, dim.div_ceil(64) as u64)?;
    BinaryHypervector::from_words(dim, words).map_err(|err| SnapshotError::InvalidField {
        field,
        message: err.to_string(),
    })
}

fn read_position(
    reader: &mut SnapReader<'_>,
    key: &CodebookKey,
) -> Result<PositionEncoder, SnapshotError> {
    let row_flip_unit = reader.take_u32("row flip unit")? as usize;
    let col_flip_unit = reader.take_u32("column flip unit")? as usize;
    let mut rows = Vec::new();
    for _ in 0..key.height {
        rows.push(read_hv(reader, "row hypervector", key.dimension)?);
    }
    let mut cols = Vec::new();
    for _ in 0..key.width {
        cols.push(read_hv(reader, "column hypervector", key.dimension)?);
    }
    PositionEncoder::from_parts(
        key.position_encoding,
        key.dimension,
        rows,
        cols,
        row_flip_unit,
        col_flip_unit,
    )
    .map_err(|err| SnapshotError::InvalidField {
        field: "position codebook",
        message: err.to_string(),
    })
}

fn write_color(out: &mut Vec<u8>, color: &ColorEncoder) {
    put_u32(out, color.flip_unit() as u32);
    for codes in color.channel_codes() {
        put_u32(out, codes[0].dim() as u32);
        for code in codes {
            write_hv_words(out, code);
        }
    }
}

fn read_color(
    reader: &mut SnapReader<'_>,
    key: &CodebookKey,
) -> Result<ColorEncoder, SnapshotError> {
    let flip_unit = reader.take_u32("colour flip unit")? as usize;
    let mut channel_codes = Vec::with_capacity(key.channels);
    for _ in 0..key.channels {
        let chunk = reader.take_len("colour chunk dimension", MAX_DIMENSION)?;
        if chunk == 0 {
            return Err(SnapshotError::InvalidField {
                field: "colour chunk dimension",
                message: "must be non-zero".to_string(),
            });
        }
        let mut codes = Vec::with_capacity(256);
        for _ in 0..256 {
            codes.push(read_hv(reader, "colour code", chunk as usize)?);
        }
        channel_codes.push(codes);
    }
    ColorEncoder::from_parts(key.color_encoding, key.dimension, flip_unit, channel_codes).map_err(
        |err| SnapshotError::InvalidField {
            field: "colour codebook",
            message: err.to_string(),
        },
    )
}

/// Bounds-checked little-endian reader over the snapshot body.
struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl SnapReader<'_> {
    fn take(&mut self, count: usize, field: &'static str) -> Result<&[u8], SnapshotError> {
        if self.data.len() - self.pos < count {
            return Err(SnapshotError::Truncated { field });
        }
        let slice = &self.data[self.pos..self.pos + count];
        self.pos += count;
        Ok(slice)
    }

    fn take_u8(&mut self, field: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, field)?[0])
    }

    fn take_u16(&mut self, field: &'static str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2, field)?.try_into().expect("2 bytes taken"),
        ))
    }

    fn take_u32(&mut self, field: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes taken"),
        ))
    }

    fn take_u64(&mut self, field: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes taken"),
        ))
    }

    /// Reads a declared length and validates it against `cap` — the
    /// pre-allocation guard every variable-size field goes through.
    fn take_len(&mut self, field: &'static str, cap: u64) -> Result<u64, SnapshotError> {
        let len = u64::from(self.take_u32(field)?);
        if len > cap {
            return Err(SnapshotError::LengthCap { field, len, cap });
        }
        Ok(len)
    }

    /// Reads `count` packed u64 words, validating the byte count against
    /// the remaining input **before** allocating — a corrupt count can
    /// never demand more memory than the input occupies.
    fn take_words(&mut self, field: &'static str, count: u64) -> Result<Vec<u64>, SnapshotError> {
        let bytes = count.checked_mul(8).ok_or(SnapshotError::LengthCap {
            field,
            len: count,
            cap: u64::MAX / 8,
        })?;
        if bytes > (self.data.len() - self.pos) as u64 {
            return Err(SnapshotError::Truncated { field });
        }
        let raw = self.take(bytes as usize, field)?;
        Ok(raw
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunks")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SegHdc, SegHdcConfig};
    use hdc::{Accumulator, HdcRng};

    fn config(seed: u64) -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(256)
            .beta(2)
            .iterations(1)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn built_codebook(seed: u64, width: usize, height: usize) -> (CodebookKey, PixelEncoder) {
        let cfg = config(seed);
        let key = CodebookKey::for_shape(&cfg, width, height, 1);
        let encoder = SegHdc::new(cfg)
            .unwrap()
            .build_encoder(width, height, 1)
            .unwrap();
        (key, encoder)
    }

    fn encoders_equal(a: &PixelEncoder, b: &PixelEncoder) -> bool {
        let (pa, pb) = (a.position(), b.position());
        if pa.rows() != pb.rows()
            || pa.cols() != pb.cols()
            || pa.row_flip_unit() != pb.row_flip_unit()
            || pa.col_flip_unit() != pb.col_flip_unit()
        {
            return false;
        }
        for i in 0..pa.rows() {
            if pa.row_hv(i).unwrap() != pb.row_hv(i).unwrap() {
                return false;
            }
        }
        for j in 0..pa.cols() {
            if pa.col_hv(j).unwrap() != pb.col_hv(j).unwrap() {
                return false;
            }
        }
        let (ca, cb) = (a.color(), b.color());
        if ca.flip_unit() != cb.flip_unit() || ca.channels() != cb.channels() {
            return false;
        }
        for channel in 0..ca.channels() {
            for value in 0..=255u8 {
                if ca.placed_code(channel, value) != cb.placed_code(channel, value) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn codebooks_round_trip_bit_identically() {
        let (key, encoder) = built_codebook(7, 12, 9);
        let mut snapshot = Snapshot::new();
        snapshot
            .push_codebook(key, Arc::new(encoder.clone()))
            .unwrap();
        let bytes = snapshot.to_bytes();
        let restored = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.codebooks().len(), 1);
        let (restored_key, restored_encoder) = &restored.codebooks()[0];
        assert_eq!(*restored_key, key);
        assert!(encoders_equal(&encoder, restored_encoder));
        // Same pixel, same hypervector — the property warm-started serving
        // rests on.
        for (x, y, v) in [(0usize, 0usize, 0u8), (11, 8, 255), (5, 3, 128)] {
            let a = encoder
                .position()
                .encode(y, x)
                .unwrap()
                .xor(&encoder.color().encode(&[v]).unwrap())
                .unwrap();
            let b = restored_encoder
                .position()
                .encode(y, x)
                .unwrap()
                .xor(&restored_encoder.color().encode(&[v]).unwrap())
                .unwrap();
            assert_eq!(a, b, "pixel ({x},{y},{v})");
        }
        // A second serialization of the restored snapshot is byte-stable.
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn centroid_sets_round_trip_with_exact_norms() {
        let (key, _) = built_codebook(3, 8, 8);
        let mut rng = HdcRng::seed_from(17);
        let centroids: Vec<BitSlicedCounts> = (0..3)
            .map(|k| {
                let mut acc = Accumulator::zeros(200).unwrap();
                for _ in 0..(3 + k * 5) {
                    acc.add(&BinaryHypervector::random(200, &mut rng)).unwrap();
                }
                acc.to_bit_sliced()
            })
            .collect();
        let mut snapshot = Snapshot::new();
        snapshot.push_centroid_set(CentroidSetSnapshot {
            key,
            centroids: centroids.clone(),
        });
        let restored = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(restored.centroid_sets().len(), 1);
        let set = &restored.centroid_sets()[0];
        assert_eq!(set.key, key);
        assert_eq!(set.centroids.len(), centroids.len());
        for (orig, back) in centroids.iter().zip(&set.centroids) {
            assert_eq!(orig.dim(), back.dim());
            assert_eq!(orig.items(), back.items());
            assert_eq!(orig.plane_words(), back.plane_words());
            // Norm bits, not approximate equality: restored cosine
            // distances must be bit-identical.
            assert_eq!(orig.norm().to_bits(), back.norm().to_bits());
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = Snapshot::new().to_bytes();
        let restored = Snapshot::from_bytes(&bytes).unwrap();
        assert!(restored.codebooks().is_empty());
        assert!(restored.centroid_sets().is_empty());
    }

    #[test]
    fn mismatched_codebook_key_is_refused_at_push() {
        let (_, encoder) = built_codebook(1, 10, 10);
        let (other_key, _) = built_codebook(1, 11, 10);
        let mut snapshot = Snapshot::new();
        assert!(matches!(
            snapshot.push_codebook(other_key, Arc::new(encoder)),
            Err(SnapshotError::InvalidField { .. })
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join(format!("seghdc-snapshot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.sgsn");
        let (key, encoder) = built_codebook(9, 6, 5);
        let mut snapshot = Snapshot::new();
        snapshot
            .push_codebook(key, Arc::new(encoder.clone()))
            .unwrap();
        let written = snapshot.save(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);
        let restored = Snapshot::load(&path).unwrap();
        assert!(encoders_equal(&encoder, &restored.codebooks()[0].1));
        // A cap below the file size refuses before reading.
        assert!(matches!(
            Snapshot::load_with_limit(&path, written as u64 - 1),
            Err(SnapshotError::FileTooLarge { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("seghdc-snapshot-test-does-not-exist.sgsn");
        assert!(matches!(Snapshot::load(&path), Err(SnapshotError::Io(_))));
    }
}
