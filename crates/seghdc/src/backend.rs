//! Pluggable per-tile execution backends for the segmentation engine.
//!
//! The unit of work every [`crate::SegEngine`] path reduces to — whole
//! image, batch, or streaming tiles — is "encode one region into a scratch
//! matrix, then cluster that matrix". [`ExecBackend`] abstracts exactly that
//! unit so it can be dispatched to different hardware: [`CpuBackend`] is the
//! reference implementation pinned to the scalar word kernels,
//! [`SimdCpuBackend`] runs the same unit through an explicit
//! [`hdc::kernels`] selection (runtime-detected AVX2/NEON by default), and a
//! GPU/accelerator backend only needs to reproduce these two calls over a
//! device-resident scratch buffer.

use crate::{ClusterOutcome, HvKmeans, PixelEncoder, Result};
use hdc::kernels::{self, Kernels};
use hdc::HvMatrix;
use imaging::{ImageView, TileRect};

/// A segmentation execution backend: the per-tile "encode region + cluster
/// matrix" unit every engine path runs through.
///
/// # Scratch-buffer lifecycle (the `TileArena` contract)
///
/// Both calls operate over **one [`crate::TileArena`]-sized scratch
/// buffer** owned by the caller (the engine or the streaming tiler), never
/// by the backend:
///
/// 1. Before [`encode_region`](Self::encode_region) the caller shapes the
///    arena's matrix to exactly `region.area()` rows of the encoder's
///    dimension with [`crate::TileArena::prepare`] (which calls
///    [`hdc::HvMatrix::reset`] — the backing allocation is *reused*, not
///    reallocated, whenever its capacity suffices).
/// 2. The backend fills the matrix in place. It must **not** grow, shrink
///    or reallocate the buffer: [`hdc::HvMatrix::capacity_bytes`] is the
///    high-water mark the streaming-memory guarantee is asserted against,
///    and a backend that allocates its own full-size buffers silently
///    breaks it.
/// 3. [`cluster_matrix`](Self::cluster_matrix) reads the same matrix
///    immutably and returns the labels; the caller then resets the arena
///    for the next tile.
///
/// This is deliberately the lifecycle of a device scratch buffer: an
/// accelerator backend maps `prepare`/`reset` to (re)binding one
/// pre-allocated device allocation and `capacity_bytes` to its size.
///
/// # Determinism
///
/// Implementations must be deterministic for fixed inputs and must produce
/// labels equivalent to [`CpuBackend`]'s (byte-identical for the CPU-exact
/// case; a backend with different float reduction order should document its
/// tolerance). The engine's equivalence tests pin `CpuBackend` to the
/// legacy single-call pipeline bit-for-bit.
pub trait ExecBackend: std::fmt::Debug + Send + Sync {
    /// A short human-readable backend name for telemetry and reports.
    fn name(&self) -> &'static str;

    /// The word-kernel instruction set this backend actually executes with
    /// (`"scalar"`, `"avx2"`, `"neon"`, `"avx512"`, `"avx512-vpopcnt"`),
    /// reported on every
    /// [`crate::SegmentReport`] so users can confirm which path served a
    /// request. Backends that do not run the CPU kernel layer (e.g. a
    /// device backend) report their own identifier.
    fn kernel_isa(&self) -> &'static str {
        self.host_kernels().name()
    }

    /// The CPU word kernels used for the host-side glue that surrounds the
    /// per-tile unit — centroid bundling and stitch similarity in streaming
    /// tiled mode — which always runs on the host even for a device
    /// backend.
    ///
    /// CPU backends return the same kernels their encode/cluster unit runs
    /// on, so pinning a backend to scalar pins the *whole* request (and
    /// [`kernel_isa`](Self::kernel_isa) stays truthful). The default is
    /// [`hdc::kernels::auto`].
    fn host_kernels(&self) -> &'static dyn Kernels {
        kernels::auto()
    }

    /// Encodes the `region` rectangle of `view` into `scratch`, one row per
    /// region pixel in region-local row-major order.
    ///
    /// `scratch` is the arena matrix, already shaped to
    /// `region.area() × encoder.dimension()` by the caller (see the
    /// trait-level lifecycle contract). Positions are taken from the
    /// view-global coordinates, so rows must be bit-identical to the same
    /// pixels of a whole-view encode.
    ///
    /// # Errors
    ///
    /// Returns an error if the view, region, or scratch shape does not
    /// match the encoder.
    fn encode_region(
        &self,
        encoder: &PixelEncoder,
        view: &ImageView<'_>,
        region: &TileRect,
        scratch: &mut HvMatrix,
    ) -> Result<()>;

    /// Clusters the scratch matrix filled by
    /// [`encode_region`](Self::encode_region).
    ///
    /// `intensities` holds one scalar intensity per matrix row (used for
    /// centroid initialisation) in the same row order.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is empty, the row and intensity
    /// counts disagree, or there are fewer rows than clusters.
    fn cluster_matrix(
        &self,
        kmeans: &HvKmeans,
        pixels: &HvMatrix,
        intensities: &[u8],
    ) -> Result<ClusterOutcome>;
}

/// The reference CPU backend: runs the per-tile unit through the **scalar**
/// word kernels ([`hdc::kernels::scalar`]), parallelised across rows with
/// the workspace thread pool.
///
/// This backend is deliberately pinned to the scalar kernels so it stays
/// the bit-exact specification faster backends are checked against; for
/// production throughput use [`SimdCpuBackend`] (the default backend of
/// [`crate::SegEngine`]), which produces byte-identical labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl ExecBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn host_kernels(&self) -> &'static dyn Kernels {
        kernels::scalar()
    }

    fn encode_region(
        &self,
        encoder: &PixelEncoder,
        view: &ImageView<'_>,
        region: &TileRect,
        scratch: &mut HvMatrix,
    ) -> Result<()> {
        encoder.encode_region_into_with(view, region, scratch, kernels::scalar())
    }

    fn cluster_matrix(
        &self,
        kmeans: &HvKmeans,
        pixels: &HvMatrix,
        intensities: &[u8],
    ) -> Result<ClusterOutcome> {
        kmeans.cluster_matrix_with(pixels, intensities, kernels::scalar())
    }
}

/// A CPU backend that executes the per-tile unit through an explicit
/// [`Kernels`] selection — SIMD (AVX2/NEON) when the build and the CPU
/// support it.
///
/// This is the default backend of every [`crate::SegEngine`]:
/// [`SimdCpuBackend::auto`] probes the CPU once and picks the best kernels
/// (falling back to scalar on unsupported hardware or `--no-default-features`
/// builds), so engines get the SIMD path without opting in. Labels are
/// **byte-identical** to [`CpuBackend`] for every selection — kernels are
/// exact integer operations and the pipeline's float math consumes only
/// their results (the invariant pinned by the `kernel_equivalence` suite).
/// [`ExecBackend::kernel_isa`] reports which instruction set actually ran.
///
/// To force the scalar kernels on a SIMD-capable machine, install
/// [`SimdCpuBackend::scalar`] via [`crate::SegEngineBuilder::backend`] (or
/// set the `SEGHDC_KERNELS=scalar` environment variable before first use,
/// which downgrades [`hdc::kernels::auto`] globally).
#[derive(Debug, Clone, Copy)]
pub struct SimdCpuBackend {
    kernels: &'static dyn Kernels,
}

impl SimdCpuBackend {
    /// The best kernels for the running CPU (SIMD when supported, scalar
    /// otherwise) — see [`hdc::kernels::auto`].
    pub fn auto() -> Self {
        Self {
            kernels: kernels::auto(),
        }
    }

    /// Forces the scalar kernels regardless of CPU support.
    pub fn scalar() -> Self {
        Self {
            kernels: kernels::scalar(),
        }
    }

    /// Runs an explicit kernel implementation (e.g. a specific ISA from
    /// [`hdc::kernels::simd`]).
    pub fn with_kernels(kernels: &'static dyn Kernels) -> Self {
        Self { kernels }
    }

    /// The kernel implementation this backend executes with.
    pub fn kernels(&self) -> &'static dyn Kernels {
        self.kernels
    }
}

impl Default for SimdCpuBackend {
    fn default() -> Self {
        Self::auto()
    }
}

impl ExecBackend for SimdCpuBackend {
    fn name(&self) -> &'static str {
        "simd-cpu"
    }

    fn host_kernels(&self) -> &'static dyn Kernels {
        self.kernels
    }

    fn encode_region(
        &self,
        encoder: &PixelEncoder,
        view: &ImageView<'_>,
        region: &TileRect,
        scratch: &mut HvMatrix,
    ) -> Result<()> {
        encoder.encode_region_into_with(view, region, scratch, self.kernels)
    }

    fn cluster_matrix(
        &self,
        kmeans: &HvKmeans,
        pixels: &HvMatrix,
        intensities: &[u8],
    ) -> Result<ClusterOutcome> {
        kmeans.cluster_matrix_with(pixels, intensities, self.kernels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColorEncoder, ColorEncoding, DistanceMetric, PositionEncoder, PositionEncoding};
    use hdc::HdcRng;
    use imaging::{DynamicImage, GrayImage};

    fn encoder(dim: usize, width: usize, height: usize) -> PixelEncoder {
        let mut rng = HdcRng::seed_from(41);
        let position = PositionEncoder::new(
            PositionEncoding::Manhattan,
            dim,
            height,
            width,
            1.0,
            1,
            &mut rng,
        )
        .unwrap();
        let color = ColorEncoder::new(ColorEncoding::Manhattan, dim, 1, 1, &mut rng).unwrap();
        PixelEncoder::new(position, color).unwrap()
    }

    fn gradient(width: usize, height: usize) -> DynamicImage {
        let mut img = GrayImage::new(width, height).unwrap();
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, ((x * 255) / (width - 1).max(1)) as u8)
                    .unwrap();
            }
        }
        DynamicImage::Gray(img)
    }

    #[test]
    fn cpu_backend_encode_matches_the_direct_kernel_bitwise() {
        let enc = encoder(1000, 8, 6);
        let image = gradient(8, 6);
        let view = ImageView::full(&image);
        let region = TileRect {
            x: 1,
            y: 2,
            width: 5,
            height: 3,
        };
        let mut direct = HvMatrix::zeros(region.area(), 1000).unwrap();
        enc.encode_region_into(&view, &region, &mut direct).unwrap();
        let mut via_backend = HvMatrix::zeros(region.area(), 1000).unwrap();
        CpuBackend
            .encode_region(&enc, &view, &region, &mut via_backend)
            .unwrap();
        assert_eq!(direct, via_backend);
        assert_eq!(CpuBackend.name(), "cpu");
    }

    #[test]
    fn cpu_backend_cluster_matches_the_direct_kernel() {
        let enc = encoder(512, 6, 6);
        let image = gradient(6, 6);
        let matrix = enc.encode_matrix(&image).unwrap();
        let intensities: Vec<u8> = (0..36).map(|i| (i * 7) as u8).collect();
        let kmeans = HvKmeans::new(2, 3, DistanceMetric::Cosine, false).unwrap();
        let direct = kmeans.cluster_matrix(&matrix, &intensities).unwrap();
        let via_backend = CpuBackend
            .cluster_matrix(&kmeans, &matrix, &intensities)
            .unwrap();
        assert_eq!(direct.labels, via_backend.labels);
        assert_eq!(direct.cluster_sizes, via_backend.cluster_sizes);
    }

    #[test]
    fn backend_trait_objects_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CpuBackend>();
        assert_send_sync::<SimdCpuBackend>();
        assert_send_sync::<Box<dyn ExecBackend>>();
    }

    #[test]
    fn backends_report_their_kernel_isa() {
        assert_eq!(CpuBackend.kernel_isa(), "scalar");
        assert_eq!(SimdCpuBackend::scalar().kernel_isa(), "scalar");
        let auto = SimdCpuBackend::auto();
        assert_eq!(auto.name(), "simd-cpu");
        assert_eq!(auto.kernel_isa(), auto.kernels().name());
        assert!(hdc::kernels::KNOWN_ISAS.contains(&auto.kernel_isa()));
        assert_eq!(SimdCpuBackend::default().kernel_isa(), auto.kernel_isa());
    }

    #[test]
    fn simd_backend_encode_and_cluster_match_the_scalar_reference_bitwise() {
        // dim 1000 exercises a non-lane-multiple word tail (16 words).
        let enc = encoder(1000, 8, 6);
        let image = gradient(8, 6);
        let view = ImageView::full(&image);
        let region = TileRect {
            x: 1,
            y: 0,
            width: 7,
            height: 5,
        };
        let mut scalar = HvMatrix::zeros(region.area(), 1000).unwrap();
        CpuBackend
            .encode_region(&enc, &view, &region, &mut scalar)
            .unwrap();
        let mut simd = HvMatrix::zeros(region.area(), 1000).unwrap();
        SimdCpuBackend::auto()
            .encode_region(&enc, &view, &region, &mut simd)
            .unwrap();
        assert_eq!(scalar, simd);

        let intensities: Vec<u8> = (0..region.area()).map(|i| (i * 7) as u8).collect();
        let kmeans = HvKmeans::new(2, 3, DistanceMetric::Cosine, true).unwrap();
        let by_scalar = CpuBackend
            .cluster_matrix(&kmeans, &scalar, &intensities)
            .unwrap();
        let by_simd = SimdCpuBackend::auto()
            .cluster_matrix(&kmeans, &simd, &intensities)
            .unwrap();
        assert_eq!(by_scalar.labels, by_simd.labels);
        assert_eq!(by_scalar.snapshots, by_simd.snapshots);
        assert_eq!(by_scalar.cluster_sizes, by_simd.cluster_sizes);
    }
}
