use std::error::Error;
use std::fmt;

/// Errors produced by the SegHDC pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum SegHdcError {
    /// A configuration value is outside its valid domain.
    InvalidConfig {
        /// Human readable description.
        message: String,
    },
    /// An underlying hypervector operation failed.
    Hdc(hdc::HdcError),
    /// An underlying imaging operation failed.
    Imaging(imaging::ImagingError),
    /// The run was cancelled cooperatively (an observer's
    /// [`crate::CancelToken`] fired between tiles). Shared engine state is
    /// left intact; the partial output is discarded.
    Cancelled,
}

impl fmt::Display for SegHdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegHdcError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            SegHdcError::Hdc(err) => write!(f, "hypervector error: {err}"),
            SegHdcError::Imaging(err) => write!(f, "imaging error: {err}"),
            SegHdcError::Cancelled => write!(f, "run cancelled before completion"),
        }
    }
}

impl Error for SegHdcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SegHdcError::Hdc(err) => Some(err),
            SegHdcError::Imaging(err) => Some(err),
            SegHdcError::InvalidConfig { .. } | SegHdcError::Cancelled => None,
        }
    }
}

impl From<hdc::HdcError> for SegHdcError {
    fn from(err: hdc::HdcError) -> Self {
        SegHdcError::Hdc(err)
    }
}

impl From<imaging::ImagingError> for SegHdcError {
    fn from(err: imaging::ImagingError) -> Self {
        SegHdcError::Imaging(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = SegHdcError::InvalidConfig {
            message: "dimension too small".to_string(),
        };
        assert!(e.to_string().contains("dimension too small"));
        assert!(e.source().is_none());
        let e = SegHdcError::from(hdc::HdcError::ZeroDimension);
        assert!(e.source().is_some());
        let e = SegHdcError::from(imaging::ImagingError::EmptyImage);
        assert!(e.source().is_some());
        let e = SegHdcError::Cancelled;
        assert!(e.to_string().contains("cancelled"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SegHdcError>();
    }
}
