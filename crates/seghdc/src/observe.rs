//! Run observation: streaming progress callbacks and cooperative
//! cancellation for long engine runs.
//!
//! A [`RunObserver`] rides along with [`crate::SegEngine::run_observed`]:
//! the engine invokes its progress callback once per completed tile row of
//! a streaming tiled execution, and checks its [`CancelToken`] between
//! tiles. A run whose token fires unwinds with the typed
//! [`crate::SegHdcError::Cancelled`] — shared engine state (codebook
//! cache, arena pool) is returned intact, exactly as on any other typed
//! error.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A shared cancellation flag for cooperative early termination of engine
/// runs.
///
/// Clones share one flag. The token fires either explicitly
/// ([`cancel`](Self::cancel)) or when an armed deadline
/// ([`cancel_at`](Self::cancel_at)) passes; the engine polls
/// [`is_cancelled`](Self::is_cancelled) between tiles.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: OnceLock<Instant>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token: every clone observes cancellation from now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Arms the token with a deadline: once `deadline` passes, the token
    /// reports cancelled without anyone calling [`cancel`](Self::cancel).
    ///
    /// A token arms at most once; later arms are ignored (the first
    /// deadline stands).
    pub fn cancel_at(&self, deadline: Instant) {
        let _ = self.inner.deadline.set(deadline);
    }

    /// Whether the token has fired (explicitly or by armed deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline.get() {
            Some(deadline) if Instant::now() >= *deadline => {
                // Latch, so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

/// One progress event of an observed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Index of the image within the request (always 0 for single-image
    /// requests).
    pub image_index: usize,
    /// Tile rows completed so far for this image.
    pub rows_done: usize,
    /// Total tile rows this image's grid holds.
    pub rows_total: usize,
}

/// Observation hooks for one engine run: an optional progress callback
/// (invoked per completed tile row of a tiled execution) and an optional
/// [`CancelToken`] (checked between tiles).
///
/// The default observer is inert — [`crate::SegEngine::run`] uses it, so
/// unobserved runs pay nothing. The progress callback must be `Send +
/// Sync` because batch requests execute images in parallel.
#[derive(Default)]
pub struct RunObserver<'a> {
    progress: Option<Box<dyn Fn(RunProgress) + Send + Sync + 'a>>,
    cancel: Option<CancelToken>,
}

impl std::fmt::Debug for RunObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunObserver")
            .field("progress", &self.progress.is_some())
            .field("cancel", &self.cancel)
            .finish()
    }
}

impl<'a> RunObserver<'a> {
    /// An inert observer: no progress callback, no cancel token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a progress callback, invoked once per completed tile row
    /// of a streaming tiled execution (whole-image runs emit no progress).
    pub fn on_progress(mut self, callback: impl Fn(RunProgress) + Send + Sync + 'a) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Installs a cancel token, checked between tiles.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this observer's token (if any) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Emits one progress event to the callback, if installed.
    pub(crate) fn emit(&self, progress: RunProgress) {
        if let Some(callback) = &self.progress {
            callback(progress);
        }
    }

    /// Focuses this observer on one image of a request.
    pub(crate) fn for_image(&self, image_index: usize) -> ImageObserver<'_, 'a> {
        ImageObserver {
            observer: self,
            image_index,
        }
    }
}

/// A [`RunObserver`] focused on one image of a request: progress events it
/// emits carry the image's index automatically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ImageObserver<'o, 'a> {
    observer: &'o RunObserver<'a>,
    image_index: usize,
}

impl ImageObserver<'_, '_> {
    /// Whether the underlying observer's token has fired.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.observer.is_cancelled()
    }

    /// Emits a tile-row progress event for this image.
    pub(crate) fn emit_rows(&self, rows_done: usize, rows_total: usize) {
        self.observer.emit(RunProgress {
            image_index: self.image_index,
            rows_done,
            rows_total,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn armed_deadline_fires_the_token() {
        let token = CancelToken::new();
        token.cancel_at(Instant::now() + Duration::from_secs(3600));
        assert!(!token.is_cancelled(), "a far deadline must not fire");
        // The first arm stands: re-arming with an already-passed deadline
        // is ignored.
        token.cancel_at(Instant::now() - Duration::from_millis(1));
        assert!(!token.is_cancelled(), "re-arming must be ignored");

        let expired = CancelToken::new();
        expired.cancel_at(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        // Latched: still cancelled on the next poll.
        assert!(expired.is_cancelled());
    }

    #[test]
    fn default_observer_is_inert() {
        let observer = RunObserver::new();
        assert!(!observer.is_cancelled());
        observer.emit(RunProgress {
            image_index: 0,
            rows_done: 1,
            rows_total: 2,
        });
    }

    #[test]
    fn observer_forwards_progress_and_cancellation() {
        use std::sync::atomic::AtomicUsize;
        let events = AtomicUsize::new(0);
        let token = CancelToken::new();
        let observer = RunObserver::new()
            .on_progress(|p| {
                assert_eq!(p.rows_total, 4);
                events.fetch_add(1, Ordering::SeqCst);
            })
            .cancel_token(token.clone());
        observer.emit(RunProgress {
            image_index: 0,
            rows_done: 1,
            rows_total: 4,
        });
        assert_eq!(events.load(Ordering::SeqCst), 1);
        assert!(!observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
    }
}
