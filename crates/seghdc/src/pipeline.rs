use crate::engine::{SegEngine, SegmentOutput, SegmentRequest};
use crate::tiled::{StreamingSegmentation, TileArena, TileConfig};
use crate::{PixelEncoder, Result, SegHdcConfig};
use imaging::{DynamicImage, ImageView, LabelMap};
use rayon::prelude::*;
use std::time::Duration;

/// Result of running the SegHDC pipeline on one image.
#[derive(Debug, Clone)]
pub struct Segmentation {
    /// Final per-pixel cluster assignment.
    pub label_map: LabelMap,
    /// Label maps after each clustering iteration (only populated when
    /// [`SegHdcConfig::record_snapshots`] is set; used for Fig. 8).
    pub snapshots: Vec<LabelMap>,
    /// Number of clustering iterations executed.
    pub iterations_run: usize,
    /// Number of pixels per cluster after the final iteration.
    pub cluster_sizes: Vec<usize>,
    /// Wall-clock time spent building codebooks and encoding pixels.
    pub encode_time: Duration,
    /// Wall-clock time spent clustering.
    pub cluster_time: Duration,
}

impl Segmentation {
    /// Total wall-clock time (encoding plus clustering).
    pub fn total_time(&self) -> Duration {
        self.encode_time + self.cluster_time
    }

    /// Converts one engine output into the legacy result shape.
    fn from_output(output: SegmentOutput) -> Self {
        Self {
            label_map: output.label_map,
            snapshots: output.snapshots,
            iterations_run: output.iterations_run,
            cluster_sizes: output.cluster_sizes,
            encode_time: output.encode_time,
            cluster_time: output.cluster_time,
        }
    }
}

/// The legacy per-call entry point to the SegHDC pipeline (Fig. 2 of the
/// paper): position encoder → colour encoder → pixel HV producer →
/// clusterer.
///
/// Since the engine redesign every `SegHdc` segmentation method is a thin
/// deprecated wrapper that constructs a default [`SegEngine`] and runs one
/// [`SegmentRequest`] through it; outputs are unchanged (byte-identical
/// labels for the same seed), but each call pays the full codebook build
/// because the per-call engine's cache is always cold. Long-lived callers
/// should hold a [`SegEngine`] instead and let its persistent codebook
/// cache amortise that cost:
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use imaging::{DynamicImage, GrayImage};
/// use seghdc::{SegEngine, SegHdcConfig, SegmentRequest};
///
/// let mut img = GrayImage::filled(24, 24, 15)?;
/// for y in 6..18 {
///     for x in 6..18 {
///         img.set(x, y, 230)?;
///     }
/// }
/// let config = SegHdcConfig::builder().dimension(1024).iterations(3).build()?;
/// let engine = SegEngine::new(config)?;
/// let report = engine.run(&SegmentRequest::image(&DynamicImage::Gray(img)))?;
/// assert_eq!(report.outputs[0].label_map.pixel_count(), 24 * 24);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegHdc {
    config: SegHdcConfig,
}

impl SegHdc {
    /// Creates a pipeline from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SegHdcError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: SegHdcConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> &SegHdcConfig {
        &self.config
    }

    /// Builds the pixel encoder (position + colour codebooks) for an image
    /// of the given shape. Exposed so benchmarks can measure the encoding
    /// and clustering stages separately.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if the shape is degenerate.
    pub fn build_encoder(
        &self,
        width: usize,
        height: usize,
        channels: usize,
    ) -> Result<PixelEncoder> {
        crate::engine::build_encoder(&self.config, width, height, channels)
    }

    /// The single-use engine every deprecated wrapper below runs through.
    fn wrapper_engine(&self) -> Result<SegEngine> {
        SegEngine::new(self.config.clone())
    }

    /// Segments an image whole, regardless of its size.
    ///
    /// Thin wrapper over [`SegEngine::run`] with a forced whole-image
    /// [`SegmentRequest`]; labels are byte-identical to the engine path for
    /// the same seed.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration and image shape are
    /// incompatible (e.g. the hypervector dimension is smaller than the
    /// number of colour channels) or if an underlying hypervector operation
    /// fails.
    #[deprecated(
        since = "0.3.0",
        note = "hold a long-lived SegEngine and run(SegmentRequest::image(..)) instead"
    )]
    pub fn segment(&self, image: &DynamicImage) -> Result<Segmentation> {
        let report = self
            .wrapper_engine()?
            .run(&SegmentRequest::image(image).whole_image())?;
        let output = report
            .outputs
            .into_iter()
            .next()
            .expect("one image in, one output out");
        Ok(Segmentation::from_output(output))
    }

    /// Segments a batch of images in parallel, codebooks shared per
    /// distinct image shape.
    ///
    /// Thin wrapper over [`SegEngine::run`] with a forced whole-image batch
    /// [`SegmentRequest`]. The per-shape codebook reuse that used to live
    /// here is now the engine's persistent [`crate::CodebookCache`] — one
    /// construction path for every entry point. Per-image results stay
    /// byte-identical to calling [`segment`](Self::segment) on each image
    /// individually.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by any image; an empty batch
    /// returns an empty vector.
    #[deprecated(
        since = "0.3.0",
        note = "hold a long-lived SegEngine and run(SegmentRequest::batch(..)) instead"
    )]
    pub fn segment_batch(&self, images: &[DynamicImage]) -> Result<Vec<Segmentation>> {
        let report = self
            .wrapper_engine()?
            .run(&SegmentRequest::batch(images).whole_image())?;
        Ok(report
            .outputs
            .into_iter()
            .map(Segmentation::from_output)
            .collect())
    }

    /// Segments a view in streaming tiled mode: one halo-padded tile is
    /// encoded and clustered at a time inside a bounded arena, then the
    /// per-tile labels are stitched into one globally consistent map (see
    /// [`crate::tiled`] for the mechanics).
    ///
    /// Peak transient memory is ≈ one halo-padded tile's hypervector
    /// matrix instead of one whole image's, which is what makes 512×512+
    /// microscopy scans fit on the small devices the paper targets. A run
    /// whose single tile covers the whole view produces byte-identical
    /// labels to [`segment`](Self::segment). Snapshot recording
    /// ([`SegHdcConfig::record_snapshots`]) does not apply in streaming
    /// mode.
    ///
    /// Thin wrapper over [`SegEngine::run_tiled_in`] with a fresh arena.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile geometry is invalid for the view shape
    /// or if encoding/clustering fails.
    #[deprecated(
        since = "0.3.0",
        note = "hold a long-lived SegEngine and run(SegmentRequest::view(..).tiled(..)) instead"
    )]
    pub fn segment_streaming(
        &self,
        view: &ImageView<'_>,
        tiles: &TileConfig,
    ) -> Result<StreamingSegmentation> {
        let mut arena = TileArena::new();
        self.wrapper_engine()?.run_tiled_in(view, tiles, &mut arena)
    }

    /// [`segment_streaming`](Self::segment_streaming) with a caller-owned
    /// [`TileArena`], so a long-running service can reuse the tile buffers
    /// across calls (the arena's peak byte counter keeps accumulating).
    ///
    /// Thin wrapper over [`SegEngine::run_tiled_in`].
    ///
    /// # Errors
    ///
    /// Same as [`segment_streaming`](Self::segment_streaming).
    #[deprecated(
        since = "0.3.0",
        note = "hold a long-lived SegEngine and use SegEngine::run_tiled_in instead"
    )]
    pub fn segment_streaming_in(
        &self,
        view: &ImageView<'_>,
        tiles: &TileConfig,
        arena: &mut TileArena,
    ) -> Result<StreamingSegmentation> {
        self.wrapper_engine()?.run_tiled_in(view, tiles, arena)
    }

    /// Streaming-segments a batch of images, pipelining tiles across the
    /// images in parallel, codebooks shared per shape.
    ///
    /// Thin wrapper over [`SegEngine::run_tiled_in`], one fresh
    /// [`TileArena`] per image exactly as before the engine redesign, so
    /// each result's `peak_matrix_bytes` remains that image's own arena
    /// high-water mark (≈ one halo-padded tile per worker). The codebooks
    /// are still shared per shape through the engine cache.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by any image; an empty batch
    /// returns an empty vector.
    #[deprecated(
        since = "0.3.0",
        note = "hold a long-lived SegEngine and run(SegmentRequest::batch(..).tiled(..)) instead"
    )]
    pub fn segment_streaming_batch(
        &self,
        images: &[DynamicImage],
        tiles: &TileConfig,
    ) -> Result<Vec<StreamingSegmentation>> {
        let engine = self.wrapper_engine()?;
        let engine = &engine;
        images
            .par_iter()
            .map(|image| {
                let mut arena = TileArena::new();
                engine.run_tiled_in(&ImageView::full(image), tiles, &mut arena)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // These tests deliberately exercise the deprecated wrappers: they are
    // the regression suite proving the wrappers still behave exactly like
    // the engine they delegate to.
    #![allow(deprecated)]

    use super::*;
    use crate::{ColorEncoding, PositionEncoding};
    use imaging::{metrics, GrayImage, RgbImage};

    /// A bright square on a dark background plus its ground truth. Both
    /// regions carry intensity variation so that the colour codebooks are
    /// exercised over many distinct values (as in real microscopy images),
    /// which is what makes the RColor ablation collapse.
    fn square_image(size: usize) -> (DynamicImage, LabelMap) {
        let mut img = GrayImage::new(size, size).unwrap();
        let mut truth = LabelMap::new(size, size).unwrap();
        let lo = size / 4;
        let hi = 3 * size / 4;
        for y in 0..size {
            for x in 0..size {
                let jitter = ((x * 7 + y * 3) % 30) as u8;
                let inside = (lo..hi).contains(&x) && (lo..hi).contains(&y);
                if inside {
                    img.set(x, y, 200 + jitter).unwrap();
                    truth.set(x, y, 1).unwrap();
                } else {
                    img.set(x, y, 15 + jitter).unwrap();
                }
            }
        }
        (DynamicImage::Gray(img), truth)
    }

    fn fast_config() -> SegHdcConfig {
        SegHdcConfig::builder()
            .dimension(1024)
            .iterations(3)
            .beta(4)
            .build()
            .unwrap()
    }

    #[test]
    fn segments_a_high_contrast_square_accurately() {
        let (image, truth) = square_image(32);
        let result = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        let iou = metrics::matched_binary_iou(&result.label_map, &truth).unwrap();
        assert!(iou > 0.9, "IoU {iou}");
        assert_eq!(result.iterations_run, 3);
        assert_eq!(result.cluster_sizes.iter().sum::<usize>(), 32 * 32);
        assert!(result.total_time() >= result.encode_time);
    }

    #[test]
    fn rgb_images_are_segmented_too() {
        let (gray, truth) = square_image(24);
        let rgb =
            DynamicImage::Rgb(RgbImage::from_raw(24, 24, gray.to_rgb().as_raw().to_vec()).unwrap());
        let result = SegHdc::new(fast_config()).unwrap().segment(&rgb).unwrap();
        let iou = metrics::matched_binary_iou(&result.label_map, &truth).unwrap();
        assert!(iou > 0.85, "IoU {iou}");
    }

    #[test]
    fn snapshots_are_recorded_when_requested() {
        let (image, _) = square_image(16);
        let config = SegHdcConfig::builder()
            .dimension(512)
            .iterations(4)
            .beta(2)
            .record_snapshots(true)
            .build()
            .unwrap();
        let result = SegHdc::new(config).unwrap().segment(&image).unwrap();
        assert_eq!(result.snapshots.len(), 4);
        assert_eq!(result.snapshots.last().unwrap(), &result.label_map);
        // Without the flag no snapshots are kept.
        let result = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        assert!(result.snapshots.is_empty());
    }

    #[test]
    fn segmentation_is_deterministic_for_a_fixed_seed() {
        let (image, _) = square_image(20);
        let a = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        let b = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        assert_eq!(a.label_map, b.label_map);
    }

    #[test]
    fn random_position_ablation_degrades_quality() {
        // Table I, RPos column: random position hypervectors swamp the colour
        // signal and the segmentation collapses.
        let (image, truth) = square_image(32);
        let good = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        let rpos_config = SegHdcConfig::builder()
            .dimension(1024)
            .iterations(3)
            .beta(4)
            .position_encoding(PositionEncoding::Random)
            .build()
            .unwrap();
        let rpos = SegHdc::new(rpos_config).unwrap().segment(&image).unwrap();
        let good_iou = metrics::matched_binary_iou(&good.label_map, &truth).unwrap();
        let rpos_iou = metrics::matched_binary_iou(&rpos.label_map, &truth).unwrap();
        assert!(
            good_iou > rpos_iou + 0.2,
            "expected a clear gap: SegHDC {good_iou} vs RPos {rpos_iou}"
        );
    }

    #[test]
    fn random_color_ablation_degrades_quality() {
        let (image, truth) = square_image(32);
        let good = SegHdc::new(fast_config()).unwrap().segment(&image).unwrap();
        let rcolor_config = SegHdcConfig::builder()
            .dimension(1024)
            .iterations(3)
            .beta(4)
            .color_encoding(ColorEncoding::Random)
            .build()
            .unwrap();
        let rcolor = SegHdc::new(rcolor_config).unwrap().segment(&image).unwrap();
        let good_iou = metrics::matched_binary_iou(&good.label_map, &truth).unwrap();
        let rcolor_iou = metrics::matched_binary_iou(&rcolor.label_map, &truth).unwrap();
        assert!(
            good_iou > rcolor_iou + 0.2,
            "expected a clear gap: SegHDC {good_iou} vs RColor {rcolor_iou}"
        );
    }

    #[test]
    fn segment_batch_matches_per_image_segment_byte_for_byte() {
        let (a, _) = square_image(20);
        let (b, _) = square_image(20);
        let (c, _) = square_image(28); // second shape: forces a second codebook
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let batch = pipeline
            .segment_batch(&[a.clone(), b.clone(), c.clone()])
            .unwrap();
        assert_eq!(batch.len(), 3);
        for (image, batched) in [a, b, c].iter().zip(&batch) {
            let single = pipeline.segment(image).unwrap();
            assert_eq!(single.label_map.as_raw(), batched.label_map.as_raw());
            assert_eq!(single.cluster_sizes, batched.cluster_sizes);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let pipeline = SegHdc::new(fast_config()).unwrap();
        assert!(pipeline.segment_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_mixes_gray_and_rgb_images() {
        let (gray, _) = square_image(16);
        let rgb = DynamicImage::Rgb(gray.to_gray().to_rgb());
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let batch = pipeline
            .segment_batch(&[gray.clone(), rgb.clone()])
            .unwrap();
        assert_eq!(
            batch[0].label_map.as_raw(),
            pipeline.segment(&gray).unwrap().label_map.as_raw()
        );
        assert_eq!(
            batch[1].label_map.as_raw(),
            pipeline.segment(&rgb).unwrap().label_map.as_raw()
        );
    }

    #[test]
    fn streaming_with_one_tile_is_byte_identical_to_segment() {
        let (image, _) = square_image(24);
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let whole = pipeline.segment(&image).unwrap();
        let tiles = crate::TileConfig::square(64, 2).unwrap(); // tile >= image
        let streamed = pipeline
            .segment_streaming(&imaging::ImageView::full(&image), &tiles)
            .unwrap();
        assert_eq!((streamed.tiles_x, streamed.tiles_y), (1, 1));
        assert_eq!(streamed.label_map.as_raw(), whole.label_map.as_raw());
        assert_eq!(streamed.stitched_labels, 2);
        assert!(streamed.peak_matrix_bytes > 0);
    }

    #[test]
    fn streaming_multi_tile_matches_the_whole_image_partition() {
        let (image, truth) = square_image(32);
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let whole = pipeline.segment(&image).unwrap();
        for tiles in [
            crate::TileConfig::square(16, 4).unwrap(),
            crate::TileConfig::square(16, 0).unwrap(),
            crate::TileConfig::new(12, 20, 3).unwrap(),
        ] {
            let streamed = pipeline
                .segment_streaming(&imaging::ImageView::full(&image), &tiles)
                .unwrap();
            assert!(
                streamed.label_map.is_permutation_of(&whole.label_map),
                "partition mismatch with {tiles:?}"
            );
            let iou = metrics::matched_binary_iou(&streamed.label_map, &truth).unwrap();
            assert!(iou > 0.9, "IoU {iou} with {tiles:?}");
        }
    }

    #[test]
    fn streaming_segments_a_cropped_view() {
        let (image, _) = square_image(32);
        let view = imaging::ImageView::crop(&image, 4, 4, 24, 20).unwrap();
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let tiles = crate::TileConfig::square(12, 2).unwrap();
        let streamed = pipeline.segment_streaming(&view, &tiles).unwrap();
        assert_eq!(streamed.label_map.width(), 24);
        assert_eq!(streamed.label_map.height(), 20);
        // The cropped region still contains both the square and background.
        assert!(streamed.stitched_labels >= 2);
    }

    #[test]
    fn streaming_batch_matches_per_image_streaming() {
        let (a, _) = square_image(20);
        let (b, _) = square_image(28);
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let tiles = crate::TileConfig::square(10, 2).unwrap();
        let batch = pipeline
            .segment_streaming_batch(&[a.clone(), b.clone()], &tiles)
            .unwrap();
        assert_eq!(batch.len(), 2);
        for (image, batched) in [a, b].iter().zip(&batch) {
            let single = pipeline
                .segment_streaming(&imaging::ImageView::full(image), &tiles)
                .unwrap();
            assert_eq!(single.label_map.as_raw(), batched.label_map.as_raw());
            assert_eq!(single.stitched_labels, batched.stitched_labels);
        }
        assert!(pipeline
            .segment_streaming_batch(&[], &tiles)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn streaming_arena_reuse_accumulates_the_peak() {
        let (small, _) = square_image(16);
        let (large, _) = square_image(32);
        let pipeline = SegHdc::new(fast_config()).unwrap();
        let tiles = crate::TileConfig::square(16, 2).unwrap();
        let mut arena = crate::TileArena::new();
        let first = pipeline
            .segment_streaming_in(&imaging::ImageView::full(&large), &tiles, &mut arena)
            .unwrap();
        let second = pipeline
            .segment_streaming_in(&imaging::ImageView::full(&small), &tiles, &mut arena)
            .unwrap();
        // The arena keeps the high-water mark across runs.
        assert_eq!(second.peak_matrix_bytes, first.peak_matrix_bytes);
        assert_eq!(arena.peak_matrix_bytes(), first.peak_matrix_bytes);
    }

    #[test]
    fn invalid_configurations_are_rejected_at_construction() {
        let config = SegHdcConfig {
            clusters: 1,
            ..SegHdcConfig::default()
        };
        assert!(SegHdc::new(config).is_err());
    }

    #[test]
    fn config_accessor_returns_the_configuration() {
        let config = fast_config();
        let pipeline = SegHdc::new(config.clone()).unwrap();
        assert_eq!(pipeline.config(), &config);
    }
}
