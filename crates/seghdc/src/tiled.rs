//! Streaming tiled segmentation: encode and cluster one halo-padded tile at
//! a time inside a bounded, reusable [`TileArena`], then stitch the per-tile
//! cluster labels into one globally consistent
//! [`imaging::LabelMap`].
//!
//! A whole-image [`crate::SegHdc::segment`] run materialises one packed
//! hypervector row per pixel — a 512×512 scan at `d = 4096` needs ~128 MB of
//! transient matrix, which rules out exactly the edge devices the SegHDC
//! paper targets. Streaming mode bounds that transient to roughly **one
//! halo-padded tile** regardless of the image size:
//!
//! 1. [`imaging::TileGrid`] plans interiors (an exact partition of
//!    the image) plus halo-padded processing regions.
//! 2. Each padded region is encoded into the arena's single reused
//!    [`HvMatrix`] (positions are taken from the *global* codebooks, so tile
//!    rows are bit-identical to the whole-image rows) and clustered with the
//!    same revised K-Means as the whole-image path.
//! 3. Interior labels are written to the output map under a provisional
//!    per-tile label id; per-tile cluster centroids are snapshotted as
//!    [`BitSlicedCounts`], and pixels where a tile's halo overlaps an
//!    already-labelled neighbour interior record co-occurrence **votes**.
//! 4. A stitching pass matches the centroids of adjacent tiles by
//!    bit-sliced cosine similarity — with the halo-overlap majority vote as
//!    the tie-breaker when two candidate matches are nearly as similar —
//!    and merges matched labels with a union-find, producing the final
//!    globally consistent label map. When a halo is configured, the votes
//!    also gate each merge: a cluster with no co-occurrence evidence at a
//!    boundary (say, an object wholly interior to one tile) keeps its own
//!    stitched label instead of being absorbed into the least-dissimilar
//!    neighbour group.

use crate::observe::ImageObserver;
use crate::{ExecBackend, HvKmeans, PixelEncoder, Result, SegHdcConfig, SegHdcError};
use hdc::{Accumulator, BitSlicedCounts, HvMatrix};
use imaging::{ImageView, LabelMap, TileGrid};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Two candidate centroid matches whose cosine similarities are closer than
/// this are considered tied, and the halo-overlap majority vote decides.
const STITCH_TIE_EPSILON: f64 = 0.01;

/// Tile geometry parameters for [`crate::SegHdc::segment_streaming`].
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), seghdc::SegHdcError> {
/// use seghdc::TileConfig;
/// let tiles = TileConfig::square(128, 8)?;
/// assert_eq!((tiles.tile_width, tiles.tile_height, tiles.halo), (128, 128, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Interior tile width in pixels.
    pub tile_width: usize,
    /// Interior tile height in pixels.
    pub tile_height: usize,
    /// Halo width in pixels: how far each tile's processing region extends
    /// into its neighbours. Larger halos give boundary pixels more context
    /// and the stitcher more voting evidence, at the cost of re-encoding
    /// the overlap.
    pub halo: usize,
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if a tile dimension is zero
    /// or the halo is not smaller than both tile edges.
    pub fn new(tile_width: usize, tile_height: usize, halo: usize) -> Result<Self> {
        if tile_width == 0 || tile_height == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "tile dimensions must be non-zero".to_string(),
            });
        }
        if halo >= tile_width || halo >= tile_height {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "halo {halo} must be smaller than the tile edges ({tile_width}x{tile_height})"
                ),
            });
        }
        Ok(Self {
            tile_width,
            tile_height,
            halo,
        })
    }

    /// Creates a square tile configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if `edge` is zero or
    /// `halo >= edge`.
    pub fn square(edge: usize, halo: usize) -> Result<Self> {
        Self::new(edge, edge, halo)
    }

    /// Plans the tile grid for a `width × height` view.
    ///
    /// # Errors
    ///
    /// Propagates [`imaging::TileGrid::new`] validation errors (for
    /// example a halo that is no longer smaller than a tile edge after the
    /// tile is clamped to a small image).
    pub fn grid_for(&self, width: usize, height: usize) -> Result<TileGrid> {
        Ok(TileGrid::new(
            width,
            height,
            self.tile_width,
            self.tile_height,
            self.halo,
        )?)
    }
}

/// Reusable bounded working memory for streaming tiled segmentation.
///
/// The arena owns the single [`HvMatrix`] every tile is encoded into (reset
/// — not reallocated — between tiles) and the per-tile intensity buffer. Its
/// byte counter records the high-water mark of the matrix allocation, which
/// is what the streaming memory guarantee is asserted against: segmenting an
/// image of any size must never allocate more matrix bytes than roughly one
/// halo-padded tile.
#[derive(Debug)]
pub struct TileArena {
    pub(crate) matrix: HvMatrix,
    pub(crate) intensities: Vec<u8>,
    pub(crate) bundles: Vec<Accumulator>,
    peak_matrix_bytes: usize,
}

impl TileArena {
    /// Creates an empty arena; buffers are grown on first use and reused
    /// afterwards.
    pub fn new() -> Self {
        Self {
            matrix: HvMatrix::zeros(0, 1).expect("dimension 1 is valid"),
            intensities: Vec::new(),
            bundles: Vec::new(),
            peak_matrix_bytes: 0,
        }
    }

    /// High-water mark, in bytes, of the arena's matrix allocation over its
    /// whole lifetime (across every tile and every segmentation run that
    /// used this arena).
    pub fn peak_matrix_bytes(&self) -> usize {
        self.peak_matrix_bytes
    }

    /// Shapes the arena for a region of `rows` pixels at dimension `dim`,
    /// clears the intensity buffer and records the allocation high-water
    /// mark.
    ///
    /// This is step 1 of the [`ExecBackend`] scratch-buffer lifecycle: the
    /// matrix is reshaped with [`HvMatrix::reset`], which **reuses** the
    /// backing allocation whenever its capacity suffices, so a sequence of
    /// `prepare` → encode → cluster rounds touches one allocation whose
    /// [`HvMatrix::capacity_bytes`] is the number the streaming memory
    /// guarantee is asserted against.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is zero.
    pub fn prepare(&mut self, rows: usize, dim: usize) -> Result<()> {
        self.matrix.reset(rows, dim)?;
        self.peak_matrix_bytes = self.peak_matrix_bytes.max(self.matrix.capacity_bytes());
        self.intensities.clear();
        Ok(())
    }

    /// Shapes the arena's per-cluster bundle accumulators to `clusters`
    /// accumulators of dimension `dim`, zeroed, reusing their allocations
    /// (the centroid-snapshot scratch of the stitching pass).
    pub(crate) fn prepare_bundles(&mut self, clusters: usize, dim: usize) -> Result<()> {
        while self.bundles.len() < clusters {
            self.bundles.push(Accumulator::zeros(dim)?);
        }
        self.bundles.truncate(clusters);
        for bundle in &mut self.bundles {
            bundle.reset(dim)?;
        }
        Ok(())
    }
}

impl Default for TileArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a streaming tiled segmentation run.
#[derive(Debug, Clone)]
pub struct StreamingSegmentation {
    /// Final stitched per-pixel labels, globally consistent across tiles.
    /// Labels are provisional tile-cluster ids compacted per stitched
    /// group; for a single-tile run they equal the raw cluster indices, so
    /// the output is byte-identical to [`crate::SegHdc::segment`].
    pub label_map: LabelMap,
    /// Number of tile columns in the processed grid.
    pub tiles_x: usize,
    /// Number of tile rows in the processed grid.
    pub tiles_y: usize,
    /// Number of distinct stitched label groups in the output map.
    pub stitched_labels: usize,
    /// High-water mark of the arena's matrix allocation during this run —
    /// the streaming memory guarantee, measured (≈ one halo-padded tile,
    /// not one image).
    pub peak_matrix_bytes: usize,
    /// Wall-clock time spent encoding tile regions.
    pub encode_time: Duration,
    /// Wall-clock time spent clustering tiles.
    pub cluster_time: Duration,
    /// Wall-clock time spent matching centroids and relabelling.
    pub stitch_time: Duration,
}

impl StreamingSegmentation {
    /// Total number of tiles processed.
    pub fn tile_count(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// Total wall-clock time (encode + cluster + stitch).
    pub fn total_time(&self) -> Duration {
        self.encode_time + self.cluster_time + self.stitch_time
    }
}

/// Union-find over provisional tile-cluster ids, with path halving.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
        }
    }

    fn find(&mut self, mut id: u32) -> u32 {
        while self.parent[id as usize] != id {
            let grandparent = self.parent[self.parent[id as usize] as usize];
            self.parent[id as usize] = grandparent;
            id = grandparent;
        }
        id
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Root at the smaller id so representatives are stable and the
            // single-tile case keeps its raw cluster indices.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// One tile's clustering summary kept for stitching: a bit-sliced centroid
/// snapshot per (non-empty) local cluster.
type TileCentroids = Vec<Option<BitSlicedCounts>>;

/// Runs the streaming engine. `encoder` must have been built for the view's
/// exact shape; `arena` supplies (and keeps) the bounded working memory;
/// every per-tile encode and cluster executes through `backend`. The
/// `observed` hooks fire once per completed tile row (progress) and are
/// polled between tiles (cancellation).
pub(crate) fn segment_streaming_with(
    config: &SegHdcConfig,
    encoder: &PixelEncoder,
    view: &ImageView<'_>,
    tiles: &TileConfig,
    arena: &mut TileArena,
    backend: &dyn ExecBackend,
    observed: ImageObserver<'_, '_>,
) -> Result<StreamingSegmentation> {
    let grid = tiles.grid_for(view.width(), view.height())?;
    let width = view.width();
    let clusters = config.clusters;
    let kmeans = HvKmeans::new(clusters, config.iterations, config.distance_metric, false)?;
    // Host-side glue (centroid bundling, stitch similarity) runs on the
    // backend's kernel selection too, so a scalar-pinned backend keeps the
    // whole request — and its `kernel_isa` telemetry — scalar.
    let host_kernels = backend.host_kernels();

    let total_ids = grid.tile_count() * clusters;
    // Provisional per-pixel label: `tile_index * clusters + local_cluster`.
    let mut provisional = vec![u32::MAX; view.pixel_count()];
    let mut centroids: Vec<TileCentroids> = Vec::with_capacity(grid.tile_count());
    // Halo-overlap co-occurrence votes between an already-assigned
    // provisional label and a later tile's provisional label.
    let mut votes: HashMap<(u32, u32), usize> = HashMap::new();

    let mut encode_time = Duration::ZERO;
    let mut cluster_time = Duration::ZERO;

    // Size the arena for the largest padded tile up front: one exact
    // allocation instead of amortised doubling while the first tiles grow,
    // so the recorded peak is genuinely "one halo-padded tile's worth".
    arena.prepare(grid.max_padded_pixels(), config.dimension)?;

    for (tile_index, tile) in grid.iter().enumerate() {
        // Cooperative cancellation: polled between tiles, so a fired token
        // costs at most one tile of extra work before the run unwinds. The
        // arena is left in a reusable state — nothing is poisoned.
        if observed.is_cancelled() {
            return Err(SegHdcError::Cancelled);
        }
        let padded = tile.padded;
        let rows = padded.area();

        let encode_start = Instant::now();
        arena.prepare(rows, config.dimension)?;
        backend.encode_region(encoder, view, &padded, &mut arena.matrix)?;
        for ly in 0..padded.height {
            for lx in 0..padded.width {
                arena
                    .intensities
                    .push(view.intensity_at(padded.x + lx, padded.y + ly)?);
            }
        }
        encode_time += encode_start.elapsed();

        let cluster_start = Instant::now();
        let labels = if rows < clusters {
            // A tile too small to form every cluster collapses to a single
            // local cluster; stitching merges it into a neighbour group.
            vec![0u32; rows]
        } else {
            backend
                .cluster_matrix(&kmeans, &arena.matrix, &arena.intensities)?
                .labels
        };

        // Bundle each local cluster's rows into centroids for stitching,
        // reusing the arena's accumulators across tiles.
        arena.prepare_bundles(clusters, config.dimension)?;
        for (row, &label) in labels.iter().enumerate() {
            arena.bundles[label as usize].add_row_with(arena.matrix.row(row), host_kernels)?;
        }
        centroids.push(
            arena
                .bundles
                .iter()
                .map(|b| (b.items() > 0).then(|| b.to_bit_sliced_with(host_kernels)))
                .collect(),
        );
        cluster_time += cluster_start.elapsed();

        // Write interior labels; collect halo votes against pixels that an
        // earlier tile (in row-major order) has already labelled.
        let base = (tile_index * clusters) as u32;
        for ly in 0..padded.height {
            for lx in 0..padded.width {
                let x = padded.x + lx;
                let y = padded.y + ly;
                let id = base + labels[ly * padded.width + lx];
                let pixel = y * width + x;
                if tile.interior.contains(x, y) {
                    provisional[pixel] = id;
                } else if provisional[pixel] != u32::MAX {
                    *votes.entry((provisional[pixel], id)).or_insert(0) += 1;
                }
            }
        }

        // Tiles stream in row-major order, so finishing the last tile of a
        // grid row completes that row: report it.
        if (tile_index + 1) % grid.tiles_x() == 0 {
            observed.emit_rows((tile_index + 1) / grid.tiles_x(), grid.tiles_y());
        }
    }

    // Stitch: for every adjacent tile pair, merge each later-tile cluster
    // with its most similar earlier-tile centroid; near-ties are decided by
    // the halo-overlap majority vote. With a halo, the votes also *gate*
    // the merge: a cluster with zero co-occurrence evidence at a boundary
    // is simply not present there (e.g. an object wholly interior to its
    // own tile), and force-merging it into whatever earlier centroid is
    // least dissimilar would absorb a genuinely distinct class into an
    // unrelated group. Diagonal neighbours share only a `halo²` corner, so
    // they are stitched exclusively on vote evidence. Without a halo there
    // is no overlap evidence at all and orthogonal pairs fall back to pure
    // similarity matching.
    let stitch_start = Instant::now();
    let halo = grid.halo();
    let mut union_find = UnionFind::new(total_ids);
    let mut stitch_pair = |earlier: usize, later: usize, votes_required: bool| {
        for (local, centroid) in centroids[later].iter().enumerate() {
            let Some(centroid) = centroid else { continue };
            let later_id = (later * clusters + local) as u32;
            let pair_votes: Vec<usize> = (0..clusters)
                .map(|candidate| {
                    votes
                        .get(&((earlier * clusters + candidate) as u32, later_id))
                        .copied()
                        .unwrap_or(0)
                })
                .collect();
            if (votes_required || halo > 0) && pair_votes.iter().all(|&v| v == 0) {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            let mut second: Option<(usize, f64)> = None;
            for (candidate, reference) in centroids[earlier].iter().enumerate() {
                let Some(reference) = reference else { continue };
                let similarity = reference
                    .cosine_similarity_sliced_with(centroid, host_kernels)
                    .unwrap_or(f64::NEG_INFINITY);
                match best {
                    Some((_, best_similarity)) if similarity <= best_similarity => {
                        if second.is_none_or(|(_, s)| similarity > s) {
                            second = Some((candidate, similarity));
                        }
                    }
                    _ => {
                        second = best;
                        best = Some((candidate, similarity));
                    }
                }
            }
            let Some((mut chosen, best_similarity)) = best else {
                continue;
            };
            if let Some((runner_up, runner_similarity)) = second {
                if best_similarity - runner_similarity < STITCH_TIE_EPSILON
                    && pair_votes[runner_up] > pair_votes[chosen]
                {
                    chosen = runner_up;
                }
            }
            union_find.union((earlier * clusters + chosen) as u32, later_id);
        }
    };
    for tile_y in 0..grid.tiles_y() {
        for tile_x in 0..grid.tiles_x() {
            let earlier = tile_y * grid.tiles_x() + tile_x;
            if tile_x + 1 < grid.tiles_x() {
                stitch_pair(earlier, earlier + 1, false);
            }
            if tile_y + 1 < grid.tiles_y() {
                stitch_pair(earlier, earlier + grid.tiles_x(), false);
                // Diagonal pairs: corner-overlap evidence only.
                if tile_x + 1 < grid.tiles_x() {
                    stitch_pair(earlier, earlier + grid.tiles_x() + 1, true);
                }
                if tile_x > 0 {
                    stitch_pair(earlier, earlier + grid.tiles_x() - 1, true);
                }
            }
        }
    }

    // Relabel every pixel with its group representative (the smallest
    // provisional id in the group, so a single-tile run keeps raw cluster
    // indices) and count the distinct groups present.
    let mut group_seen = vec![false; total_ids];
    let mut stitched_labels = 0usize;
    let mut labels = Vec::with_capacity(provisional.len());
    for &id in &provisional {
        debug_assert_ne!(id, u32::MAX, "tile interiors must cover every pixel");
        let representative = union_find.find(id);
        if !group_seen[representative as usize] {
            group_seen[representative as usize] = true;
            stitched_labels += 1;
        }
        labels.push(representative);
    }
    let label_map = LabelMap::from_raw(width, view.height(), labels)?;
    let stitch_time = stitch_start.elapsed();

    Ok(StreamingSegmentation {
        label_map,
        tiles_x: grid.tiles_x(),
        tiles_y: grid.tiles_y(),
        stitched_labels,
        peak_matrix_bytes: arena.peak_matrix_bytes(),
        encode_time,
        cluster_time,
        stitch_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_config_validation() {
        assert!(TileConfig::new(0, 4, 0).is_err());
        assert!(TileConfig::new(4, 0, 0).is_err());
        assert!(TileConfig::new(4, 4, 4).is_err());
        assert!(TileConfig::new(8, 4, 3).is_ok());
        let square = TileConfig::square(16, 2).unwrap();
        assert_eq!(square, TileConfig::new(16, 16, 2).unwrap());
        let grid = square.grid_for(40, 20).unwrap();
        assert_eq!((grid.tiles_x(), grid.tiles_y()), (3, 2));
        // Clamping to a small image can invalidate the halo.
        assert!(TileConfig::square(16, 2).unwrap().grid_for(2, 2).is_err());
    }

    #[test]
    fn arena_tracks_its_high_water_mark() {
        let mut arena = TileArena::new();
        assert_eq!(arena.peak_matrix_bytes(), 0);
        arena.prepare(10, 128).unwrap();
        let after_large = arena.peak_matrix_bytes();
        assert!(after_large >= 10 * 2 * 8);
        arena.prepare(2, 64).unwrap();
        assert_eq!(
            arena.peak_matrix_bytes(),
            after_large,
            "shrinking must not shrink the recorded peak"
        );
        assert_eq!(arena.matrix.rows(), 2);
        assert!(arena.intensities.is_empty());
    }

    #[test]
    fn union_find_roots_at_the_smallest_member() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(4), 2);
        uf.union(0, 5);
        assert_eq!(uf.find(4), 0);
        assert_eq!(uf.find(1), 1);
        assert_eq!(uf.find(3), 3);
    }
}
