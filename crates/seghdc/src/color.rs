use crate::{ColorEncoding, Result, SegHdcError};
use hdc::{BinaryHypervector, HdcRng, ItemMemory, LevelMemory};

/// Encodes 8-bit colour values into hypervectors (§III-2 of the paper,
/// Fig. 4).
///
/// For an image with `channels` colour channels the hypervector of dimension
/// `d` is split into `channels` contiguous chunks of `⌊d / channels⌋` bits
/// (the final chunk absorbs the remainder). Each chunk holds a *level
/// codebook* of 256 hypervectors built by progressive flipping with unit
/// `uc = ⌊chunk / 256⌋ · γ`, so that the Hamming distance between the codes
/// of two intensities `a` and `b` is `|a - b| · uc` — the Manhattan distance
/// of the colour values. The per-channel codes are concatenated to form the
/// colour hypervector of a pixel.
///
/// The [`ColorEncoding::Random`] variant replaces the level codebooks with
/// independent random codebooks (the **RColor** ablation of Table I).
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), seghdc::SegHdcError> {
/// use hdc::HdcRng;
/// use seghdc::{ColorEncoder, ColorEncoding};
///
/// let mut rng = HdcRng::seed_from(3);
/// let encoder = ColorEncoder::new(ColorEncoding::Manhattan, 3072, 1, 1, &mut rng)?;
/// let dark = encoder.encode(&[10])?;
/// let mid = encoder.encode(&[100])?;
/// let bright = encoder.encode(&[240])?;
/// assert!(dark.hamming(&mid)? < dark.hamming(&bright)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ColorEncoder {
    dimension: usize,
    channels: usize,
    encoding: ColorEncoding,
    flip_unit: usize,
    /// One codebook (256 hypervectors of chunk length) per channel.
    channel_codes: Vec<Vec<BinaryHypervector>>,
    /// The same codebooks expanded to full-dimension vectors with each
    /// chunk shifted to its channel's bit offset, so a pixel's colour
    /// hypervector is the XOR of one placed code per channel. XOR of
    /// disjoint-support vectors equals concatenation, and keeping the codes
    /// pre-placed lets the batch encoder bind them into an
    /// [`hdc::HvMatrix`] row with zero per-pixel allocation.
    placed_codes: Vec<Vec<BinaryHypervector>>,
}

impl ColorEncoder {
    /// Builds the per-channel colour codebooks.
    ///
    /// `gamma` is the colour-weighting factor of §III-3: each flip is
    /// widened to `γ · uc` bits, increasing the weight of colour differences
    /// relative to position differences in the final pixel hypervector. If
    /// the widened flips exceed the chunk (`255 · uc · γ > chunk`), the
    /// distance between far-apart intensities saturates at the chunk length
    /// while nearby intensities keep the widened, `γ`-scaled distance.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if `channels` is not 1 or 3,
    /// `gamma` is zero, or the dimension is too small to give every channel
    /// a non-empty chunk.
    pub fn new(
        encoding: ColorEncoding,
        dimension: usize,
        channels: usize,
        gamma: usize,
        rng: &mut HdcRng,
    ) -> Result<Self> {
        if channels != 1 && channels != 3 {
            return Err(SegHdcError::InvalidConfig {
                message: format!("colour encoder supports 1 or 3 channels, got {channels}"),
            });
        }
        if gamma == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: "gamma must be at least 1".to_string(),
            });
        }
        if dimension / channels == 0 {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "dimension {dimension} is too small for {channels} colour channels"
                ),
            });
        }

        let base_chunk = dimension / channels;
        let mut channel_codes = Vec::with_capacity(channels);
        let mut flip_unit = 0;
        for channel in 0..channels {
            // The last chunk absorbs the division remainder so the chunks
            // concatenate to exactly `dimension` bits.
            let chunk = if channel + 1 == channels {
                dimension - base_chunk * (channels - 1)
            } else {
                base_chunk
            };
            let codes = match encoding {
                ColorEncoding::Random => {
                    let memory = ItemMemory::new(256, chunk, rng)?;
                    memory.items().to_vec()
                }
                ColorEncoding::Manhattan => {
                    let unit = (chunk / 256).saturating_mul(gamma);
                    flip_unit = unit;
                    if unit == 0 {
                        // The chunk is smaller than 256 bits, so whole-bit
                        // flips per level are impossible. Fall back to a
                        // proportional prefix: the code of value `v` flips the
                        // first `⌊v · chunk · γ / 256⌋` bits of the base
                        // vector, which keeps distances proportional to the
                        // intensity gap (quantised to single bits).
                        let scale = chunk as f64 * gamma as f64 / 256.0;
                        let base = hdc::BinaryHypervector::random(chunk, rng);
                        let mut codes = Vec::with_capacity(256);
                        for value in 0..256usize {
                            let prefix = ((value as f64 * scale) as usize).min(chunk);
                            let mut code = base.clone();
                            code.flip_range(0, prefix)?;
                            codes.push(code);
                        }
                        codes
                    } else if 255 * unit <= chunk {
                        // The whole 0-255 range fits: use a plain level memory.
                        let levels = LevelMemory::new(256, chunk, unit, rng)?;
                        levels.levels().to_vec()
                    } else {
                        // γ widened the flips beyond the chunk; distances for
                        // small intensity gaps grow by γ and saturate once the
                        // flipped prefix reaches the end of the chunk.
                        let mut codes = Vec::with_capacity(256);
                        let mut current = hdc::BinaryHypervector::random(chunk, rng);
                        codes.push(current.clone());
                        for value in 1..256usize {
                            let start = ((value - 1) * unit).min(chunk);
                            let end = (value * unit).min(chunk);
                            if end > start {
                                current.flip_range(start, end - start)?;
                            }
                            codes.push(current.clone());
                        }
                        codes
                    }
                }
            };
            channel_codes.push(codes);
        }

        let mut placed_codes = Vec::with_capacity(channels);
        let mut offset = 0;
        for codes in &channel_codes {
            let placed = codes
                .iter()
                .map(|code| place_chunk(code, offset, dimension))
                .collect::<Result<Vec<_>>>()?;
            offset += codes[0].dim();
            placed_codes.push(placed);
        }

        Ok(Self {
            dimension,
            channels,
            encoding,
            flip_unit,
            channel_codes,
            placed_codes,
        })
    }

    /// Reassembles an encoder from previously built per-channel codebooks —
    /// the snapshot-restore path. The full-dimension placed codes are
    /// rebuilt from the chunk codes (a deterministic bit-shift, no RNG), so
    /// a snapshot only has to carry the chunk codebooks.
    pub(crate) fn from_parts(
        encoding: ColorEncoding,
        dimension: usize,
        flip_unit: usize,
        channel_codes: Vec<Vec<BinaryHypervector>>,
    ) -> Result<Self> {
        let channels = channel_codes.len();
        if channels != 1 && channels != 3 {
            return Err(SegHdcError::InvalidConfig {
                message: format!("colour encoder supports 1 or 3 channels, got {channels}"),
            });
        }
        if channel_codes.iter().any(|codes| codes.len() != 256) {
            return Err(SegHdcError::InvalidConfig {
                message: "each colour channel codebook must hold 256 codes".to_string(),
            });
        }
        let chunk_sum: usize = channel_codes.iter().map(|codes| codes[0].dim()).sum();
        if chunk_sum != dimension {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "colour chunk dimensions sum to {chunk_sum}, expected {dimension}"
                ),
            });
        }
        let mut placed_codes = Vec::with_capacity(channels);
        let mut offset = 0;
        for codes in &channel_codes {
            let chunk = codes[0].dim();
            if codes.iter().any(|code| code.dim() != chunk) {
                return Err(SegHdcError::InvalidConfig {
                    message: "colour codes within a channel must share one chunk dimension"
                        .to_string(),
                });
            }
            let placed = codes
                .iter()
                .map(|code| place_chunk(code, offset, dimension))
                .collect::<Result<Vec<_>>>()?;
            offset += chunk;
            placed_codes.push(placed);
        }
        Ok(Self {
            dimension,
            channels,
            encoding,
            flip_unit,
            channel_codes,
            placed_codes,
        })
    }

    /// The per-channel chunk codebooks (256 codes each), for persistence.
    pub(crate) fn channel_codes(&self) -> &[Vec<BinaryHypervector>] {
        &self.channel_codes
    }

    /// The total hypervector dimensionality (sum of the channel chunks).
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of colour channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The encoding variant.
    pub fn encoding(&self) -> ColorEncoding {
        self.encoding
    }

    /// Heap bytes held by the per-channel and pre-placed codebooks — the
    /// cost of keeping this encoder resident in the engine's codebook cache.
    pub fn codebook_bytes(&self) -> usize {
        self.channel_codes
            .iter()
            .chain(self.placed_codes.iter())
            .flatten()
            .map(hdc::BinaryHypervector::heap_bytes)
            .sum()
    }

    /// Bits flipped per intensity step (0 for the `Random` variant or when
    /// the chunk is smaller than 256 bits).
    pub fn flip_unit(&self) -> usize {
        self.flip_unit
    }

    /// Encodes one pixel's channel values (`values.len()` must equal
    /// [`channels`](Self::channels)) into a hypervector of
    /// [`dimension`](Self::dimension) bits.
    ///
    /// # Errors
    ///
    /// Returns [`SegHdcError::InvalidConfig`] if the number of values does
    /// not match the channel count.
    pub fn encode(&self, values: &[u8]) -> Result<BinaryHypervector> {
        if values.len() != self.channels {
            return Err(SegHdcError::InvalidConfig {
                message: format!(
                    "expected {} channel values, got {}",
                    self.channels,
                    values.len()
                ),
            });
        }
        let mut result = self.placed_codes[0][usize::from(values[0])].clone();
        for (channel, &value) in values.iter().enumerate().skip(1) {
            result.xor_assign(self.placed_code(channel, value))?;
        }
        Ok(result)
    }

    /// The full-dimension code of `value` on `channel`, with the channel's
    /// chunk already shifted to its bit offset.
    ///
    /// XOR-ing one placed code per channel into a zeroed row reproduces
    /// [`encode`](Self::encode) bit-for-bit; this is the accessor the batch
    /// pixel encoder binds from.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= channels()`.
    pub fn placed_code(&self, channel: usize, value: u8) -> &BinaryHypervector {
        &self.placed_codes[channel][usize::from(value)]
    }

    /// Hamming distance between the codes of two single-channel intensities;
    /// exposed for the encoding ablation benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates hypervector dimension errors (which cannot occur for codes
    /// from the same encoder).
    pub fn intensity_distance(&self, a: u8, b: u8) -> Result<usize> {
        let code_a = &self.channel_codes[0][usize::from(a)];
        let code_b = &self.channel_codes[0][usize::from(b)];
        Ok(code_a.hamming(code_b)?)
    }
}

/// Expands a chunk-dimension code into a `dim`-bit vector with the chunk's
/// bits starting at `offset` (everything else zero).
fn place_chunk(code: &BinaryHypervector, offset: usize, dim: usize) -> Result<BinaryHypervector> {
    let mut placed = BinaryHypervector::zeros(dim)?;
    for bit in code.iter_ones() {
        placed.set_bit(offset + bit, true)?;
    }
    Ok(placed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> HdcRng {
        HdcRng::seed_from(5)
    }

    #[test]
    fn placed_codes_xor_to_the_concatenated_encoding() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 3001, 3, 1, &mut rng()).unwrap();
        let values = [17u8, 203, 90];
        // Reference: concatenate the chunk codes, as the paper describes.
        let concatenated = enc.channel_codes[0][usize::from(values[0])]
            .concat(&enc.channel_codes[1][usize::from(values[1])])
            .concat(&enc.channel_codes[2][usize::from(values[2])]);
        assert_eq!(enc.encode(&values).unwrap(), concatenated);
        // And the placed codes have disjoint support, so XOR == concat.
        let mut xored = BinaryHypervector::zeros(3001).unwrap();
        for (channel, &value) in values.iter().enumerate() {
            xored.xor_assign(enc.placed_code(channel, value)).unwrap();
        }
        assert_eq!(xored, concatenated);
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(ColorEncoder::new(ColorEncoding::Manhattan, 3000, 2, 1, &mut rng()).is_err());
        assert!(ColorEncoder::new(ColorEncoding::Manhattan, 3000, 3, 0, &mut rng()).is_err());
        assert!(ColorEncoder::new(ColorEncoding::Manhattan, 2, 3, 1, &mut rng()).is_err());
        assert!(ColorEncoder::new(ColorEncoding::Manhattan, 3000, 1, 1, &mut rng()).is_ok());
    }

    #[test]
    fn single_channel_distances_follow_manhattan_distance() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 5120, 1, 1, &mut rng()).unwrap();
        let uc = enc.flip_unit();
        assert_eq!(uc, 5120 / 256);
        for (a, b) in [(0u8, 255u8), (10, 20), (100, 101), (42, 42)] {
            let d = enc.intensity_distance(a, b).unwrap();
            assert_eq!(d, usize::from(a.abs_diff(b)) * uc, "values {a},{b}");
        }
    }

    #[test]
    fn three_channel_encoding_concatenates_chunks() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 3001, 3, 1, &mut rng()).unwrap();
        let hv = enc.encode(&[255, 128, 0]).unwrap();
        assert_eq!(hv.dim(), 3001);
        // Changing only one channel changes only that chunk's bits.
        let other = enc.encode(&[255, 129, 0]).unwrap();
        let d = hv.hamming(&other).unwrap();
        assert_eq!(d, enc.flip_unit());
    }

    #[test]
    fn per_channel_distances_add_up() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 3 * 2560, 3, 1, &mut rng()).unwrap();
        let uc = enc.flip_unit();
        let a = enc.encode(&[10, 200, 50]).unwrap();
        let b = enc.encode(&[12, 190, 50]).unwrap();
        assert_eq!(a.hamming(&b).unwrap(), (2 + 10) * uc);
    }

    #[test]
    fn gamma_widens_colour_distances_when_the_chunk_has_room() {
        // Use a dimension with plenty of slack so gamma = 2 actually fits.
        let narrow =
            ColorEncoder::new(ColorEncoding::Manhattan, 131_072, 1, 1, &mut rng()).unwrap();
        let wide = ColorEncoder::new(ColorEncoding::Manhattan, 131_072, 1, 2, &mut rng()).unwrap();
        assert_eq!(wide.flip_unit(), 2 * narrow.flip_unit());
        let d_narrow = narrow.intensity_distance(0, 100).unwrap();
        let d_wide = wide.intensity_distance(0, 100).unwrap();
        assert_eq!(d_wide, 2 * d_narrow);
    }

    #[test]
    fn gamma_saturates_when_the_chunk_is_full() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 2560, 1, 100, &mut rng()).unwrap();
        // Nearby intensities keep the widened distance...
        assert_eq!(enc.intensity_distance(0, 1).unwrap(), 100 * (2560 / 256));
        // ...while far-apart intensities saturate at the chunk length.
        assert_eq!(enc.intensity_distance(0, 255).unwrap(), 2560);
        // Distances stay monotone in the intensity gap.
        assert!(enc.intensity_distance(0, 2).unwrap() >= enc.intensity_distance(0, 1).unwrap());
    }

    #[test]
    fn random_encoding_destroys_the_metric_structure() {
        let enc = ColorEncoder::new(ColorEncoding::Random, 4096, 1, 1, &mut rng()).unwrap();
        // Neighbouring intensities are as far apart as distant ones.
        let near = enc.intensity_distance(100, 101).unwrap() as f64 / 4096.0;
        let far = enc.intensity_distance(0, 255).unwrap() as f64 / 4096.0;
        assert!((near - 0.5).abs() < 0.05);
        assert!((far - 0.5).abs() < 0.05);
    }

    #[test]
    fn encode_validates_the_value_count() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 3000, 3, 1, &mut rng()).unwrap();
        assert!(enc.encode(&[1, 2]).is_err());
        assert!(enc.encode(&[1, 2, 3, 4]).is_err());
        assert!(enc.encode(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn identical_values_encode_identically() {
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 3000, 3, 1, &mut rng()).unwrap();
        assert_eq!(
            enc.encode(&[7, 8, 9]).unwrap(),
            enc.encode(&[7, 8, 9]).unwrap()
        );
    }

    #[test]
    fn small_dimension_still_produces_full_length_vectors() {
        // chunk < 256 bits: the flip unit degrades to zero but encoding must
        // still produce vectors of the configured dimension.
        let enc = ColorEncoder::new(ColorEncoding::Manhattan, 192, 3, 1, &mut rng()).unwrap();
        assert_eq!(enc.flip_unit(), 0);
        assert_eq!(enc.encode(&[0, 128, 255]).unwrap().dim(), 192);
    }
}
