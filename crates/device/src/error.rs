use std::error::Error;
use std::fmt;

/// Errors produced by the device cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The workload's peak memory exceeds the device's usable memory — the
    /// condition reported as `×*` (out of memory) in Table II of the paper.
    OutOfMemory {
        /// Peak bytes required by the workload.
        required_bytes: u64,
        /// Usable bytes available on the device.
        available_bytes: u64,
    },
    /// A parameter is outside of its valid domain.
    InvalidParameter {
        /// Human readable description.
        message: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "workload needs {required_bytes} bytes but only {available_bytes} are usable (out of memory)"
            ),
            DeviceError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_both_sizes() {
        let e = DeviceError::OutOfMemory {
            required_bytes: 5_000,
            available_bytes: 4_000,
        };
        let s = e.to_string();
        assert!(s.contains("5000"));
        assert!(s.contains("4000"));
        assert!(s.contains("out of memory"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DeviceError>();
    }
}
