use serde::{Deserialize, Serialize};

/// Operation and memory accounting for one algorithm run on one image.
///
/// Counts are analytical (derived from the algorithm definition), not
/// sampled, so they are exact for the modelled implementation and
/// independent of the machine the model runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human readable workload name (shown by the experiment harnesses).
    pub name: String,
    /// Dense single-precision floating-point operations (multiply and add
    /// counted separately).
    pub flops: f64,
    /// Integer / bit-level operations: 64-bit XOR + popcount words, integer
    /// accumulations and comparisons of the HDC kernels.
    pub int_ops: f64,
    /// Peak resident memory in bytes (buffers that must be live at the same
    /// time).
    pub peak_memory_bytes: u64,
}

impl Workload {
    /// Workload of the **Kim et al. CNN baseline** training on one image.
    ///
    /// The model follows the reference implementation: `conv_blocks` 3×3
    /// convolutions (first from `in_channels`, then `feature_channels` →
    /// `feature_channels`), a 1×1 classifier, batch-norm after every
    /// convolution, and `iterations` rounds of self-training where each
    /// round costs roughly one forward plus two forward-equivalents for the
    /// backward pass.
    ///
    /// Peak memory counts, as in the PyTorch reference running on an ARM
    /// CPU: weights (plus gradient and momentum copies), cached forward
    /// activations, an equally sized gradient buffer during the backward
    /// pass, and the im2col workspace of the widest convolution (forward and
    /// backward copies).
    pub fn cnn_unsupervised(
        width: usize,
        height: usize,
        in_channels: usize,
        feature_channels: usize,
        conv_blocks: usize,
        iterations: usize,
    ) -> Self {
        let pixels = (width * height) as f64;
        let f = feature_channels as f64;
        let c_in = in_channels as f64;

        // Multiply-accumulate counts per forward pass.
        let first_conv = pixels * 9.0 * c_in * f;
        let middle_convs = pixels * 9.0 * f * f * (conv_blocks.saturating_sub(1)) as f64;
        let classifier = pixels * f * f;
        let batch_norms = 6.0 * pixels * f * (conv_blocks + 1) as f64;
        let forward_macs = first_conv + middle_convs + classifier + batch_norms;
        // One MAC = 2 FLOPs; backward ≈ 2x forward.
        let flops = iterations as f64 * forward_macs * 2.0 * 3.0;

        // Peak memory (bytes, f32 everywhere).
        let weights = 4.0
            * (9.0 * c_in * f
                + 9.0 * f * f * (conv_blocks.saturating_sub(1)) as f64
                + f * f
                + 4.0 * f * (conv_blocks + 1) as f64);
        let weight_copies = 3.0 * weights; // parameters + gradients + momentum
        let activations = 4.0 * pixels * (c_in + f * (3 * conv_blocks + 2) as f64);
        let gradient_buffers = activations;
        let im2col = 2.0 * 4.0 * pixels * 9.0 * f.max(c_in);
        let peak_memory_bytes = (weight_copies + activations + gradient_buffers + im2col) as u64;

        Self {
            name: format!(
                "cnn-baseline {width}x{height}x{in_channels} F={feature_channels} iters={iterations}"
            ),
            flops,
            int_ops: 0.0,
            peak_memory_bytes,
        }
    }

    /// Workload of **SegHDC** on one image.
    ///
    /// Encoding XORs two packed hypervectors per pixel (plus the one-off
    /// codebook generation); each clustering iteration computes one dot
    /// product per pixel per cluster against the integer centroids and one
    /// centroid update pass. Peak memory holds all pixel hypervectors
    /// (packed, 1 bit per element), the row/column/colour codebooks and the
    /// integer centroid accumulators.
    pub fn seghdc(
        width: usize,
        height: usize,
        channels: usize,
        dimension: usize,
        clusters: usize,
        iterations: usize,
    ) -> Self {
        let pixels = (width * height) as f64;
        let d = dimension as f64;
        let words = (dimension as f64 / 64.0).ceil();
        let k = clusters as f64;

        let codebook_ops = (height as f64 + width as f64 + 256.0 * channels as f64) * words;
        let encode_ops = pixels * 2.0 * words;
        // Assignment: one sparse dot product (≈ d/2 set bits) per pixel per
        // cluster; update: one accumulation pass over all pixels.
        let per_iteration = pixels * k * (d / 2.0) + pixels * (d / 2.0);
        let int_ops = codebook_ops + encode_ops + iterations as f64 * per_iteration;
        // Norms, square roots and divisions of the cosine distances.
        let flops = iterations as f64 * pixels * k * 4.0;

        let pixel_hvs = pixels * d / 8.0;
        let codebooks = (height as f64 + width as f64 + 256.0 * channels as f64) * d / 8.0;
        let centroids = k * d * 4.0;
        let intensities = pixels;
        let peak_memory_bytes = (pixel_hvs + codebooks + centroids + intensities) as u64;

        Self {
            name: format!(
                "seghdc {width}x{height}x{channels} d={dimension} k={clusters} iters={iterations}"
            ),
            flops,
            int_ops,
            peak_memory_bytes,
        }
    }

    /// Total operation count (integer plus floating point).
    pub fn total_ops(&self) -> f64 {
        self.flops + self.int_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn_workload_scales_with_image_iterations_and_channels() {
        let small = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let large = Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000);
        assert!(large.flops > small.flops);
        assert!(large.peak_memory_bytes > small.peak_memory_bytes);

        let short = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 10);
        assert!((small.flops / short.flops - 100.0).abs() < 1.0);
        // Iteration count does not change peak memory.
        assert_eq!(small.peak_memory_bytes, short.peak_memory_bytes);

        let narrow = Workload::cnn_unsupervised(320, 256, 3, 50, 2, 1000);
        assert!(narrow.flops < small.flops);
        assert!(narrow.peak_memory_bytes < small.peak_memory_bytes);
    }

    #[test]
    fn cnn_flops_match_the_dominant_conv_term() {
        // 256x320x3, F=100, 2 blocks, 1 iteration: the 100->100 3x3 conv
        // dominates at 81920 * 9 * 100 * 100 MACs.
        let w = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1);
        let dominant_macs = 81_920.0 * 9.0 * 100.0 * 100.0;
        assert!(w.flops > dominant_macs * 2.0);
        assert!(w.flops < dominant_macs * 2.0 * 3.0 * 1.5);
    }

    #[test]
    fn paper_scale_cnn_memory_exceeds_four_gigabytes_only_for_the_large_image() {
        let dsb = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let bbbc = Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000);
        assert!(dsb.peak_memory_bytes < 3_200_000_000);
        assert!(bbbc.peak_memory_bytes > 3_200_000_000);
    }

    #[test]
    fn seghdc_workload_scales_with_dimension_and_iterations() {
        let base = Workload::seghdc(320, 256, 3, 800, 2, 3);
        let wide = Workload::seghdc(320, 256, 3, 1600, 2, 3);
        let long = Workload::seghdc(320, 256, 3, 800, 2, 6);
        assert!(wide.int_ops > base.int_ops * 1.8);
        assert!(wide.peak_memory_bytes > base.peak_memory_bytes);
        assert!(long.int_ops > base.int_ops * 1.5);
        assert_eq!(base.peak_memory_bytes, long.peak_memory_bytes);
    }

    #[test]
    fn seghdc_is_orders_of_magnitude_cheaper_than_the_cnn_baseline() {
        // The asymmetry behind Table II's 300x speedup.
        let cnn = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let seghdc = Workload::seghdc(320, 256, 3, 800, 2, 3);
        assert!(cnn.total_ops() / seghdc.total_ops() > 1_000.0);
        assert!(cnn.peak_memory_bytes > 10 * seghdc.peak_memory_bytes);
    }

    #[test]
    fn seghdc_fits_on_an_edge_device_even_for_the_large_image() {
        let seghdc = Workload::seghdc(696, 520, 1, 2000, 2, 3);
        assert!(seghdc.peak_memory_bytes < 500_000_000);
    }

    #[test]
    fn workload_names_describe_the_configuration() {
        let w = Workload::seghdc(64, 48, 1, 800, 2, 3);
        assert!(w.name.contains("64x48"));
        assert!(w.name.contains("d=800"));
        let c = Workload::cnn_unsupervised(64, 48, 3, 100, 2, 10);
        assert!(c.name.contains("F=100"));
    }
}
