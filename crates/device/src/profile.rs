use crate::{DeviceError, Result, Workload};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Sustained-throughput description of a target device.
///
/// The constants are deliberately coarse — the experiments reproduced from
/// the paper only rely on *relative* latencies (SegHDC vs. the CNN baseline)
/// and on the absolute memory capacity, both of which are insensitive to
/// ±2× errors in the throughput numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human readable device name.
    pub name: String,
    /// Number of CPU cores.
    pub cores: u32,
    /// Core clock frequency in Hz.
    pub clock_hz: f64,
    /// Sustained single-precision FLOP/s for dense convolution kernels
    /// (all cores, SIMD, as achieved by an optimised BLAS/NNPACK backend).
    pub flops_per_second: f64,
    /// Sustained 64-bit integer/bit operations per second for the HDC
    /// kernels (XOR, popcount, integer accumulation).
    pub int_ops_per_second: f64,
    /// Memory that a user process can actually allocate (total RAM minus
    /// OS, framework and allocator overhead).
    pub usable_memory_bytes: u64,
    /// Single-thread speed relative to the development host profile
    /// (`1.0` = host); used to rescale wall-clock measurements.
    pub relative_speed: f64,
}

/// A latency estimate produced by [`DeviceProfile::estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Time attributed to floating-point work.
    pub float_seconds: f64,
    /// Time attributed to integer/bit work.
    pub int_seconds: f64,
}

impl LatencyEstimate {
    /// Total estimated latency.
    pub fn total(&self) -> Duration {
        Duration::from_secs_f64(self.float_seconds + self.int_seconds)
    }
}

impl DeviceProfile {
    /// Raspberry Pi 4 Model B (4 GB), the edge device of the paper.
    ///
    /// Throughput constants are calibrated so that the CNN baseline's
    /// reference workload (≈ 50 TFLOP for 1000 training iterations on a
    /// 256×320×3 image) lands in the `10^4`-second range the paper reports,
    /// and usable memory is 4 GB minus roughly 0.8 GB of OS + framework
    /// overhead.
    pub fn raspberry_pi_4() -> Self {
        Self {
            name: "Raspberry Pi 4 Model B (4 GB)".to_string(),
            cores: 4,
            clock_hz: 1.5e9,
            flops_per_second: 4.5e9,
            int_ops_per_second: 6.0e9,
            usable_memory_bytes: 3_200_000_000,
            relative_speed: 0.12,
        }
    }

    /// A typical x86-64 development host (the machine this repository's
    /// benchmarks run on); the reference point for
    /// [`scale_measurement`](Self::scale_measurement).
    pub fn desktop_host() -> Self {
        Self {
            name: "x86-64 development host".to_string(),
            cores: 16,
            clock_hz: 3.0e9,
            flops_per_second: 1.5e11,
            int_ops_per_second: 8.0e10,
            usable_memory_bytes: 28_000_000_000,
            relative_speed: 1.0,
        }
    }

    /// Checks whether `workload` fits in the device's usable memory.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when it does not — the condition
    /// rendered as `×*` in Table II.
    pub fn check_memory(&self, workload: &Workload) -> Result<()> {
        if workload.peak_memory_bytes > self.usable_memory_bytes {
            return Err(DeviceError::OutOfMemory {
                required_bytes: workload.peak_memory_bytes,
                available_bytes: self.usable_memory_bytes,
            });
        }
        Ok(())
    }

    /// Estimates the latency of `workload` on this device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] if the workload does not fit in
    /// memory (a workload that cannot run has no latency), or
    /// [`DeviceError::InvalidParameter`] if the profile has non-positive
    /// throughput numbers.
    pub fn estimate(&self, workload: &Workload) -> Result<LatencyEstimate> {
        if self.flops_per_second <= 0.0 || self.int_ops_per_second <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                message: "device throughput must be positive".to_string(),
            });
        }
        self.check_memory(workload)?;
        Ok(LatencyEstimate {
            float_seconds: workload.flops / self.flops_per_second,
            int_seconds: workload.int_ops / self.int_ops_per_second,
        })
    }

    /// Rescales a wall-clock duration measured on `measured_on` to this
    /// device using the `relative_speed` ratio of the two profiles.
    ///
    /// This is how the Table II harness converts host measurements of the
    /// Rust SegHDC implementation into Raspberry-Pi-class latencies.
    pub fn scale_measurement(&self, measured_on: &DeviceProfile, measured: Duration) -> Duration {
        let ratio = measured_on.relative_speed / self.relative_speed;
        Duration::from_secs_f64(measured.as_secs_f64() * ratio)
    }

    /// Speedup of workload `fast` over workload `slow` on this device
    /// (`slow latency / fast latency`).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors from either workload.
    pub fn speedup(&self, slow: &Workload, fast: &Workload) -> Result<f64> {
        let slow_latency = self.estimate(slow)?.total().as_secs_f64();
        let fast_latency = self.estimate(fast)?.total().as_secs_f64();
        if fast_latency == 0.0 {
            return Err(DeviceError::InvalidParameter {
                message: "fast workload has zero estimated latency".to_string(),
            });
        }
        Ok(slow_latency / fast_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_profile_matches_the_paper_hardware() {
        let pi = DeviceProfile::raspberry_pi_4();
        assert_eq!(pi.cores, 4);
        assert!((pi.clock_hz - 1.5e9).abs() < 1.0);
        assert!(pi.usable_memory_bytes < 4_000_000_000);
        assert!(pi.relative_speed < 1.0);
    }

    #[test]
    fn baseline_latency_on_pi_is_in_the_papers_range() {
        // Paper: 11453 s for the reference baseline on a 256x320x3 image.
        let pi = DeviceProfile::raspberry_pi_4();
        let cnn = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let estimate = pi.estimate(&cnn).unwrap();
        let seconds = estimate.total().as_secs_f64();
        assert!(
            (3_000.0..40_000.0).contains(&seconds),
            "estimated {seconds} s"
        );
    }

    #[test]
    fn baseline_oom_on_the_large_image_but_not_the_small_one() {
        let pi = DeviceProfile::raspberry_pi_4();
        let small = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let large = Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000);
        assert!(pi.check_memory(&small).is_ok());
        assert!(matches!(
            pi.check_memory(&large),
            Err(DeviceError::OutOfMemory { .. })
        ));
        assert!(pi.estimate(&large).is_err());
    }

    #[test]
    fn seghdc_speedup_over_baseline_is_hundreds_fold() {
        // Table II reports 319.9x; the analytical model should land within
        // an order of magnitude of that.
        let pi = DeviceProfile::raspberry_pi_4();
        let cnn = Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000);
        let seghdc = Workload::seghdc(320, 256, 3, 800, 2, 3);
        let speedup = pi.speedup(&cnn, &seghdc).unwrap();
        assert!(speedup > 100.0, "speedup {speedup}");
    }

    #[test]
    fn host_is_faster_than_the_pi() {
        let pi = DeviceProfile::raspberry_pi_4();
        let host = DeviceProfile::desktop_host();
        let workload = Workload::seghdc(320, 256, 3, 800, 2, 3);
        let on_pi = pi.estimate(&workload).unwrap().total();
        let on_host = host.estimate(&workload).unwrap().total();
        assert!(on_pi > on_host);
    }

    #[test]
    fn measurement_scaling_is_inverse_between_devices() {
        let pi = DeviceProfile::raspberry_pi_4();
        let host = DeviceProfile::desktop_host();
        let measured = Duration::from_secs_f64(2.0);
        let on_pi = pi.scale_measurement(&host, measured);
        assert!(on_pi > measured);
        let back = host.scale_measurement(&pi, on_pi);
        assert!((back.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut broken = DeviceProfile::raspberry_pi_4();
        broken.flops_per_second = 0.0;
        let workload = Workload::seghdc(32, 32, 1, 256, 2, 1);
        assert!(matches!(
            broken.estimate(&workload),
            Err(DeviceError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn latency_estimate_splits_into_components() {
        let pi = DeviceProfile::raspberry_pi_4();
        let workload = Workload::seghdc(64, 64, 1, 1024, 2, 3);
        let estimate = pi.estimate(&workload).unwrap();
        assert!(estimate.int_seconds > 0.0);
        assert!(estimate.total().as_secs_f64() >= estimate.int_seconds);
    }
}
