//! Analytical edge-device cost model.
//!
//! The SegHDC paper measures latency and memory behaviour on a Raspberry Pi
//! 4 Model B with 4 GB of RAM. This crate replaces the physical board with
//! an analytical model:
//!
//! * [`Workload`] — operation and memory accounting for the two algorithms
//!   under study, derived from their configurations and the image shape
//!   ([`Workload::seghdc`] and [`Workload::cnn_unsupervised`]).
//! * [`DeviceProfile`] — sustained throughput and usable memory of a device
//!   ([`DeviceProfile::raspberry_pi_4`] and [`DeviceProfile::desktop_host`]).
//! * [`DeviceProfile::estimate`] — converts a workload into an estimated
//!   latency, or reports an out-of-memory condition exactly like the `×*`
//!   entry of Table II.
//! * [`DeviceProfile::scale_measurement`] — rescales a wall-clock time
//!   measured on one device to another device, used by the Table II harness
//!   to translate host measurements of the Rust SegHDC implementation into
//!   Raspberry-Pi-class numbers.
//!
//! The conclusions reproduced from the paper are *relative* (SegHDC is two
//! to three orders of magnitude cheaper than the CNN baseline; the baseline
//! does not fit in 4 GB on a 520×696 image), so the model only needs
//! order-of-magnitude throughput constants, which are documented on each
//! profile.
//!
//! # Example
//!
//! ```rust
//! use edge_device::{DeviceProfile, Workload};
//!
//! let pi = DeviceProfile::raspberry_pi_4();
//! // The CNN baseline on the paper's BBBC005 image does not fit in memory.
//! let cnn = Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000);
//! assert!(pi.estimate(&cnn).is_err());
//! // SegHDC on the same image fits comfortably.
//! let seghdc = Workload::seghdc(696, 520, 1, 2000, 2, 3);
//! assert!(pi.estimate(&seghdc).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod profile;
mod workload;

pub use error::DeviceError;
pub use profile::{DeviceProfile, LatencyEstimate};
pub use workload::Workload;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;
