//! Property-based tests for the hypervector substrate.

use hdc::{similarity, Accumulator, BinaryHypervector, HdcRng, HvMatrix};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    1usize..1500
}

fn arb_seed() -> impl Strategy<Value = u64> {
    any::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hamming_is_a_metric(dim in arb_dim(), seed in arb_seed()) {
        let mut rng = HdcRng::seed_from(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let c = BinaryHypervector::random(dim, &mut rng);
        let ab = a.hamming(&b).unwrap();
        let ba = b.hamming(&a).unwrap();
        let ac = a.hamming(&c).unwrap();
        let cb = c.hamming(&b).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(a.hamming(&a).unwrap(), 0);
        // Triangle inequality.
        prop_assert!(ab <= ac + cb);
        // Bounded by dimension.
        prop_assert!(ab <= dim);
    }

    #[test]
    fn xor_binding_preserves_distances(dim in arb_dim(), seed in arb_seed()) {
        let mut rng = HdcRng::seed_from(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let key = BinaryHypervector::random(dim, &mut rng);
        let before = a.hamming(&b).unwrap();
        let after = a.xor(&key).unwrap().hamming(&b.xor(&key).unwrap()).unwrap();
        prop_assert_eq!(before, after);
        // Unbinding recovers the original.
        prop_assert_eq!(a.xor(&key).unwrap().xor(&key).unwrap(), a);
    }

    #[test]
    fn flip_range_distance_equals_length(
        dim in 64usize..2000,
        seed in arb_seed(),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let mut rng = HdcRng::seed_from(seed);
        let base = BinaryHypervector::random(dim, &mut rng);
        let start = ((dim - 1) as f64 * start_frac) as usize;
        let len = ((dim - start) as f64 * len_frac) as usize;
        let mut flipped = base.clone();
        flipped.flip_range(start, len).unwrap();
        prop_assert_eq!(base.hamming(&flipped).unwrap(), len);
    }

    #[test]
    fn cosine_similarity_is_bounded_and_symmetric(dim in arb_dim(), seed in arb_seed()) {
        let mut rng = HdcRng::seed_from(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let sab = similarity::cosine(&a, &b).unwrap();
        let sba = similarity::cosine(&b, &a).unwrap();
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&sab));
    }

    #[test]
    fn accumulator_dot_matches_naive(dim in arb_dim(), seed in arb_seed(), n in 1usize..6) {
        let mut rng = HdcRng::seed_from(seed);
        let members: Vec<BinaryHypervector> =
            (0..n).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let probe = BinaryHypervector::random(dim, &mut rng);
        let mut acc = Accumulator::zeros(dim).unwrap();
        for m in &members {
            acc.add(m).unwrap();
        }
        // Naive count-based dot product.
        let mut naive = 0u64;
        for i in 0..dim {
            if probe.bit(i).unwrap() {
                let count = members.iter().filter(|m| m.bit(i).unwrap()).count() as u64;
                naive += count;
            }
        }
        prop_assert_eq!(acc.dot(&probe).unwrap(), naive);
    }

    #[test]
    fn majority_bundle_is_closer_to_members_than_random(seed in arb_seed()) {
        let dim = 2048usize;
        let mut rng = HdcRng::seed_from(seed);
        let members: Vec<BinaryHypervector> =
            (0..5).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let outsider = BinaryHypervector::random(dim, &mut rng);
        let mut acc = Accumulator::zeros(dim).unwrap();
        for m in &members {
            acc.add(m).unwrap();
        }
        let bundle = acc.to_majority().unwrap();
        let mean_member: f64 = members
            .iter()
            .map(|m| bundle.hamming(m).unwrap() as f64)
            .sum::<f64>()
            / members.len() as f64;
        let outsider_dist = bundle.hamming(&outsider).unwrap() as f64;
        prop_assert!(mean_member < outsider_dist);
    }

    #[test]
    fn to_bits_from_bits_roundtrip(dim in arb_dim(), seed in arb_seed()) {
        let mut rng = HdcRng::seed_from(seed);
        let hv = BinaryHypervector::random(dim, &mut rng);
        let rebuilt = BinaryHypervector::from_bits(&hv.to_bits()).unwrap();
        prop_assert_eq!(hv, rebuilt);
    }

    /// `HvMatrix` rows round-trip with `BinaryHypervector` bit-for-bit for
    /// any dimension, including non-multiples of 64.
    #[test]
    fn matrix_rows_roundtrip_with_vectors(dim in arb_dim(), seed in arb_seed(), n in 1usize..8) {
        let mut rng = HdcRng::seed_from(seed);
        let vectors: Vec<BinaryHypervector> =
            (0..n).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let matrix = HvMatrix::from_vectors(&vectors).unwrap();
        prop_assert_eq!(matrix.rows(), n);
        prop_assert_eq!(matrix.stride_words(), dim.div_ceil(64));
        prop_assert_eq!(matrix.to_vectors(), vectors);
    }

    /// XOR binding into a matrix row equals the allocating vector XOR, and
    /// row Hamming distances equal vector Hamming distances.
    #[test]
    fn matrix_bind_and_hamming_match_vector_path(dim in arb_dim(), seed in arb_seed()) {
        let mut rng = HdcRng::seed_from(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let key = BinaryHypervector::random(dim, &mut rng);
        let mut matrix = HvMatrix::from_vectors(&[a.clone(), b.clone()]).unwrap();
        matrix.row_mut(0).xor_assign(&key).unwrap();
        matrix.row_mut(1).xor_assign(&key).unwrap();
        prop_assert_eq!(matrix.row(0).to_hypervector(), a.xor(&key).unwrap());
        prop_assert_eq!(
            matrix.row(0).hamming(matrix.row(1)).unwrap(),
            a.hamming(&b).unwrap()
        );
        prop_assert_eq!(matrix.row(0).count_ones(), a.xor(&key).unwrap().count_ones());
    }

    /// Bundling matrix rows into an accumulator matches bundling the
    /// equivalent vectors: identical counts, majority vector and
    /// bit-identical cosine similarities.
    #[test]
    fn matrix_bundling_matches_vector_bundling(dim in arb_dim(), seed in arb_seed(), n in 1usize..6) {
        let mut rng = HdcRng::seed_from(seed);
        let members: Vec<BinaryHypervector> =
            (0..n).map(|_| BinaryHypervector::random(dim, &mut rng)).collect();
        let probe = BinaryHypervector::random(dim, &mut rng);
        let matrix = HvMatrix::from_vectors(&members).unwrap();

        let mut by_vector = Accumulator::zeros(dim).unwrap();
        let mut by_row = Accumulator::zeros(dim).unwrap();
        for (i, member) in members.iter().enumerate() {
            by_vector.add(member).unwrap();
            by_row.add_row(matrix.row(i)).unwrap();
        }
        prop_assert_eq!(&by_vector, &by_row);
        prop_assert_eq!(by_vector.to_majority().unwrap(), by_row.to_majority().unwrap());

        let probe_matrix = HvMatrix::from_vectors(std::slice::from_ref(&probe)).unwrap();
        prop_assert_eq!(
            by_vector.dot(&probe).unwrap(),
            by_row.dot_row(probe_matrix.row(0)).unwrap()
        );
        prop_assert_eq!(
            by_vector.cosine_similarity(&probe).unwrap().to_bits(),
            by_row.cosine_similarity_row(probe_matrix.row(0)).unwrap().to_bits()
        );
    }
}
