//! AVX-512 implementations of the [`Kernels`] trait.
//!
//! Two variants share one code shape through a macro:
//!
//! * [`Avx512VpopcntKernels`] (`"avx512-vpopcnt"`) uses the VPOPCNTDQ
//!   extension's native per-lane popcount (`_mm512_popcnt_epi64`) — one
//!   instruction where the lookup variant needs five.
//! * [`Avx512Kernels`] (`"avx512"`) is the fallback for CPUs without
//!   VPOPCNTDQ: the Muła nibble-lookup popcount widened to 512 bits. The
//!   512-bit `vpshufb`/`vpsadbw` it needs are AVX-512BW instructions, so
//!   this variant probes `avx512f` + `avx512bw` (present on effectively
//!   every AVX-512 CPU; a hypothetical F-only part falls back to AVX2).
//!
//! Ragged tails never leave the vector unit: both variants use AVX-512's
//! masked loads/stores (`_mm512_maskz_loadu_epi64`), so a 67-word row is
//! eight full vectors plus one three-lane masked vector — no scalar tail
//! loop to keep in sync.
//!
//! Like the sibling `simd` module this is allowed `unsafe`: every unsafe
//! function is private, guarded by `#[target_feature]`, and only reachable
//! after the runtime probe in [`available`] has confirmed support. Results
//! are bit-exact with [`super::ScalarKernels`].
#![allow(unsafe_code)]

use super::Kernels;

/// Probes the running CPU and returns the AVX-512 kernels it supports,
/// best first (VPOPCNTDQ before the Muła fallback); empty when unsupported.
pub(super) fn available() -> Vec<&'static dyn Kernels> {
    let mut found: Vec<&'static dyn Kernels> = Vec::new();
    if std::arch::is_x86_feature_detected!("avx512f") {
        if std::arch::is_x86_feature_detected!("avx512vpopcntdq") {
            found.push(&Avx512VpopcntKernels);
        }
        if std::arch::is_x86_feature_detected!("avx512bw") {
            found.push(&Avx512Kernels);
        }
    }
    found
}

/// AVX-512 kernels with the native VPOPCNTDQ per-lane popcount.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx512VpopcntKernels;

/// AVX-512 kernels with the Muła nibble-lookup popcount (AVX-512F + BW).
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx512Kernels;

/// Generates one variant's operation set: identical 512-bit loops, differing
/// only in the enabled feature string and the per-lane popcount primitive.
macro_rules! avx512_ops {
    ($modname:ident, $feat:literal, $popcnt:path) => {
        mod $modname {
            use core::arch::x86_64::{
                __m512i, _mm512_add_epi64, _mm512_and_si512, _mm512_loadu_epi64,
                _mm512_mask_storeu_epi64, _mm512_maskz_loadu_epi64, _mm512_reduce_add_epi64,
                _mm512_setzero_si512, _mm512_sll_epi64, _mm512_storeu_epi64, _mm512_xor_si512,
                _mm_cvtsi32_si128,
            };

            /// `u64` words per 512-bit vector.
            const LANES: usize = 8;

            /// Load mask selecting the low `rem` lanes (callers guarantee
            /// `0 < rem < LANES`).
            #[inline]
            fn tail_mask(rem: usize) -> u8 {
                debug_assert!(rem > 0 && rem < LANES);
                (1u8 << rem) - 1
            }

            #[inline]
            #[target_feature(enable = $feat)]
            unsafe fn load(words: &[u64], offset: usize) -> __m512i {
                debug_assert!(offset + LANES <= words.len());
                _mm512_loadu_epi64(words.as_ptr().add(offset).cast())
            }

            #[inline]
            #[target_feature(enable = $feat)]
            unsafe fn load_tail(words: &[u64], offset: usize, rem: usize) -> __m512i {
                debug_assert_eq!(offset + rem, words.len());
                _mm512_maskz_loadu_epi64(tail_mask(rem), words.as_ptr().add(offset).cast())
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn popcount_words(words: &[u64]) -> u64 {
                let full = words.len() / LANES * LANES;
                let rem = words.len() - full;
                let mut acc = _mm512_setzero_si512();
                for offset in (0..full).step_by(LANES) {
                    acc = _mm512_add_epi64(acc, $popcnt(load(words, offset)));
                }
                if rem != 0 {
                    acc = _mm512_add_epi64(acc, $popcnt(load_tail(words, full, rem)));
                }
                _mm512_reduce_add_epi64(acc) as u64
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn hamming_words(a: &[u64], b: &[u64]) -> u64 {
                let full = a.len() / LANES * LANES;
                let rem = a.len() - full;
                let mut acc = _mm512_setzero_si512();
                for offset in (0..full).step_by(LANES) {
                    let x = _mm512_xor_si512(load(a, offset), load(b, offset));
                    acc = _mm512_add_epi64(acc, $popcnt(x));
                }
                if rem != 0 {
                    let x = _mm512_xor_si512(load_tail(a, full, rem), load_tail(b, full, rem));
                    acc = _mm512_add_epi64(acc, $popcnt(x));
                }
                _mm512_reduce_add_epi64(acc) as u64
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn and_popcount_words(a: &[u64], b: &[u64]) -> u64 {
                let full = a.len() / LANES * LANES;
                let rem = a.len() - full;
                let mut acc = _mm512_setzero_si512();
                for offset in (0..full).step_by(LANES) {
                    let x = _mm512_and_si512(load(a, offset), load(b, offset));
                    acc = _mm512_add_epi64(acc, $popcnt(x));
                }
                if rem != 0 {
                    let x = _mm512_and_si512(load_tail(a, full, rem), load_tail(b, full, rem));
                    acc = _mm512_add_epi64(acc, $popcnt(x));
                }
                _mm512_reduce_add_epi64(acc) as u64
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn xor_into_words(dst: &mut [u64], src: &[u64]) {
                let full = dst.len() / LANES * LANES;
                let rem = dst.len() - full;
                for offset in (0..full).step_by(LANES) {
                    let value = _mm512_xor_si512(load(dst, offset), load(src, offset));
                    _mm512_storeu_epi64(dst.as_mut_ptr().add(offset).cast(), value);
                }
                if rem != 0 {
                    let value =
                        _mm512_xor_si512(load_tail(dst, full, rem), load_tail(src, full, rem));
                    _mm512_mask_storeu_epi64(
                        dst.as_mut_ptr().add(full).cast(),
                        tail_mask(rem),
                        value,
                    );
                }
            }

            /// Fused bit-sliced dot product of `row` against one plane
            /// group: each row vector (full or masked) is loaded once and
            /// reused across every plane of the group, plane popcounts are
            /// weighted by `2^p` in the vector domain (`vpsllq`), and a
            /// single lane reduction finishes the whole group.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn plane_dot_group(
                group: &[u64],
                words_per_plane: usize,
                row: &[u64],
            ) -> u64 {
                let full = words_per_plane / LANES * LANES;
                let rem = words_per_plane - full;
                let mut acc = _mm512_setzero_si512();
                for offset in (0..full).step_by(LANES) {
                    let row_vec = load(row, offset);
                    for (p, plane) in group.chunks_exact(words_per_plane).enumerate() {
                        let masked = _mm512_and_si512(row_vec, load(plane, offset));
                        acc = _mm512_add_epi64(
                            acc,
                            _mm512_sll_epi64($popcnt(masked), _mm_cvtsi32_si128(p as i32)),
                        );
                    }
                }
                if rem != 0 {
                    let row_vec = load_tail(row, full, rem);
                    for (p, plane) in group.chunks_exact(words_per_plane).enumerate() {
                        let masked = _mm512_and_si512(row_vec, load_tail(plane, full, rem));
                        acc = _mm512_add_epi64(
                            acc,
                            _mm512_sll_epi64($popcnt(masked), _mm_cvtsi32_si128(p as i32)),
                        );
                    }
                }
                _mm512_reduce_add_epi64(acc) as u64
            }
        }
    };
}

/// Per-64-bit-lane popcount via VPOPCNTDQ.
#[inline]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn popcnt512_hw(v: core::arch::x86_64::__m512i) -> core::arch::x86_64::__m512i {
    core::arch::x86_64::_mm512_popcnt_epi64(v)
}

/// Per-64-bit-lane popcount via the Muła nibble lookup widened to 512 bits
/// (`vpshufb` + `vpsadbw`, both AVX-512BW).
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn popcnt512_mula(v: core::arch::x86_64::__m512i) -> core::arch::x86_64::__m512i {
    use core::arch::x86_64::{
        _mm512_add_epi8, _mm512_and_si512, _mm512_broadcast_i32x4, _mm512_sad_epu8,
        _mm512_set1_epi8, _mm512_setzero_si512, _mm512_shuffle_epi8, _mm512_srli_epi64,
        _mm_setr_epi8,
    };
    let lookup = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    ));
    let low_mask = _mm512_set1_epi8(0x0f);
    let lo = _mm512_and_si512(v, low_mask);
    let hi = _mm512_and_si512(_mm512_srli_epi64::<4>(v), low_mask);
    let counts = _mm512_add_epi8(
        _mm512_shuffle_epi8(lookup, lo),
        _mm512_shuffle_epi8(lookup, hi),
    );
    _mm512_sad_epu8(counts, _mm512_setzero_si512())
}

avx512_ops!(vpopcnt, "avx512f,avx512vpopcntdq", super::popcnt512_hw);
avx512_ops!(mula, "avx512f,avx512bw", super::popcnt512_mula);

/// Members per block in [`counts_dot_multi_bw`] — see the AVX2 sibling.
const COUNT_MEMBERS: usize = 4;

/// Fused multi-centroid dot product over expanded `u16` counts (the
/// [`Kernels::counts_dot_multi`] contract), shared by both variants. Here
/// the bit→lane expansion is free: 32 row bits move straight into a
/// `__mmask32` register (`kmov`) that zero-masks the counts load, so each
/// member costs one masked load plus one `vpmaddwd`-by-1 per 32 dimensions.
/// Needs AVX-512BW for the 16-bit masked loads, which the VPOPCNTDQ
/// variant's probe does not cover — its trait method re-probes BW and
/// declines without it.
///
/// Exactness relies on the caller's gates (counts ≤ `i16::MAX`,
/// `lanes · i16::MAX ≤ i32::MAX`): pair sums and the 32-bit accumulators —
/// including the final signed lane reduction — never wrap.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn counts_dot_multi_bw(counts: &[u16], row: &[u64], out: &mut [u64]) {
    debug_assert_eq!(counts.len(), row.len() * 64 * out.len());
    let mut member = 0usize;
    while out.len() - member >= COUNT_MEMBERS {
        counts_dot_block_bw::<COUNT_MEMBERS>(counts, member, row, out);
        member += COUNT_MEMBERS;
    }
    match out.len() - member {
        3 => counts_dot_block_bw::<3>(counts, member, row, out),
        2 => counts_dot_block_bw::<2>(counts, member, row, out),
        1 => counts_dot_block_bw::<1>(counts, member, row, out),
        _ => {}
    }
}

/// One member block of [`counts_dot_multi_bw`]. The block width is a const
/// generic so the member loops fully unroll and the `MEMBERS` accumulators
/// live in `zmm` registers (a runtime bound kept them in memory).
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn counts_dot_block_bw<const MEMBERS: usize>(
    counts: &[u16],
    member_base: usize,
    row: &[u64],
    out: &mut [u64],
) {
    use core::arch::x86_64::{
        __mmask32, _mm512_add_epi32, _mm512_madd_epi16, _mm512_maskz_loadu_epi16,
        _mm512_reduce_add_epi32, _mm512_set1_epi16, _mm512_setzero_si512,
    };
    debug_assert!(member_base + MEMBERS <= out.len());
    let lanes_per_member = row.len() * 64;
    let one16 = _mm512_set1_epi16(1);
    let mut acc = [_mm512_setzero_si512(); MEMBERS];
    for (w, &word) in row.iter().enumerate() {
        for half in 0..2 {
            let mask = ((word >> (32 * half)) & 0xFFFF_FFFF) as __mmask32;
            if mask == 0 {
                continue;
            }
            let lane = w * 64 + half * 32;
            for (member, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `lane + 32 ≤ lanes_per_member` (32 lanes per half
                // word) and `member_base + member < out.len()`, so the
                // masked 32-`u16` load sits inside `counts` per the length
                // contract asserted by the caller.
                let selected = _mm512_maskz_loadu_epi16(
                    mask,
                    counts
                        .as_ptr()
                        .add((member_base + member) * lanes_per_member + lane)
                        .cast(),
                );
                *slot = _mm512_add_epi32(*slot, _mm512_madd_epi16(selected, one16));
            }
        }
    }
    for (member, acc32) in acc.into_iter().enumerate() {
        out[member_base + member] += _mm512_reduce_add_epi32(acc32) as u64;
    }
}

/// Implements the trait for one variant by delegating to its ops module.
macro_rules! avx512_kernels_impl {
    ($struct:ident, $name:literal, $ops:ident) => {
        impl Kernels for $struct {
            fn name(&self) -> &'static str {
                $name
            }

            fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
                debug_assert_eq!(dst.len(), src.len());
                // SAFETY: `available` gated construction of this kernel on
                // runtime support for every enabled feature.
                unsafe { $ops::xor_into_words(dst, src) }
            }

            fn popcount(&self, words: &[u64]) -> u64 {
                // SAFETY: see `xor_into`.
                unsafe { $ops::popcount_words(words) }
            }

            fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
                debug_assert_eq!(a.len(), b.len());
                // SAFETY: see `xor_into`.
                unsafe { $ops::hamming_words(a, b) }
            }

            fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
                debug_assert_eq!(a.len(), b.len());
                // SAFETY: see `xor_into`.
                unsafe { $ops::and_popcount_words(a, b) }
            }

            fn plane_dot(&self, planes: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
                debug_assert_ne!(words_per_plane, 0);
                debug_assert_eq!(planes.len() % words_per_plane, 0);
                debug_assert_eq!(row.len(), words_per_plane);
                // SAFETY: see `xor_into`.
                unsafe { $ops::plane_dot_group(planes, words_per_plane, row) }
            }

            fn plane_dot_multi(
                &self,
                planes: &[u64],
                words_per_plane: usize,
                group_plane_counts: &[usize],
                row: &[u64],
                out: &mut [u64],
            ) {
                debug_assert_ne!(words_per_plane, 0);
                debug_assert_eq!(row.len(), words_per_plane);
                debug_assert_eq!(out.len(), group_plane_counts.len());
                let mut offset = 0;
                for (slot, &count) in out.iter_mut().zip(group_plane_counts) {
                    let end = offset + count * words_per_plane;
                    // SAFETY: see `xor_into`.
                    *slot += unsafe {
                        $ops::plane_dot_group(&planes[offset..end], words_per_plane, row)
                    };
                    offset = end;
                }
            }

            fn hamming_multi(&self, row: &[u64], stacked: &[u64], out: &mut [u64]) {
                debug_assert_eq!(stacked.len(), row.len() * out.len());
                for (k, slot) in out.iter_mut().enumerate() {
                    // SAFETY: see `xor_into`. Direct internal call keeps
                    // the per-centroid loop free of virtual dispatch.
                    *slot =
                        unsafe { $ops::hamming_words(row, &stacked[k * row.len()..][..row.len()]) };
                }
            }

            fn counts_dot_multi(&self, counts: &[u16], row: &[u64], out: &mut [u64]) -> bool {
                debug_assert_eq!(counts.len(), row.len() * 64 * out.len());
                // The shared implementation needs 16-bit masked loads
                // (AVX-512BW), which the VPOPCNTDQ probe does not imply;
                // `is_x86_feature_detected!` caches, so this is one atomic
                // load per call.
                if !std::arch::is_x86_feature_detected!("avx512bw") {
                    return false;
                }
                // SAFETY: `avx512f` was gated by `available`, `avx512bw`
                // re-probed just above.
                unsafe { counts_dot_multi_bw(counts, row, out) };
                true
            }
        }
    };
}

avx512_kernels_impl!(Avx512VpopcntKernels, "avx512-vpopcnt", vpopcnt);
avx512_kernels_impl!(Avx512Kernels, "avx512", mula);
