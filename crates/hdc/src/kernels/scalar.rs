//! The portable scalar reference kernels.

use super::Kernels;

/// Portable scalar implementation of every [`Kernels`] operation.
///
/// This is the specification the SIMD implementations are held to
/// (bit-exact results) and the fallback [`super::auto()`] selects when no
/// SIMD implementation is compiled in or supported by the CPU. The loops
/// are plain word walks — exactly the code that used to be duplicated
/// across `binary.rs`, `matrix.rs` and `accumulator.rs` before the kernel
/// layer unified them.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernels;

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len());
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    fn popcount(&self, words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x ^ y).count_ones()))
            .sum()
    }

    fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum()
    }
}
