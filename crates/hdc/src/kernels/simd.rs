//! Explicit SIMD implementations of the [`Kernels`] trait.
//!
//! Compiled only with the `simd` crate feature on `x86_64` (AVX2) and
//! `aarch64` (NEON). Selection happens at runtime through
//! [`available`]: the instruction sets are probed and the matching
//! implementations are handed out as `&'static dyn Kernels`, so a binary
//! built on one machine runs correctly (falling back to scalar) on another.
//! The AVX-512 implementations live in the sibling `avx512` module.
//!
//! This module (with `avx512`) is where the crate allows `unsafe`: the
//! vendor intrinsics require it. Every unsafe function is private, guarded
//! by the corresponding `#[target_feature]`, and only reachable after the
//! runtime probe in [`available`] has confirmed the CPU supports that
//! feature. Results are bit-exact with [`super::ScalarKernels`] — the
//! popcount algorithms differ (nibble-lookup vs `count_ones`) but both are
//! exact integer popcounts, so there is nothing approximate to diverge.
#![allow(unsafe_code)]

use super::Kernels;

/// Probes the running CPU and returns the 128/256-bit SIMD kernels it
/// supports (AVX2 on `x86_64`, NEON on `aarch64`); empty when unsupported.
pub(super) fn available() -> Vec<&'static dyn Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::Avx2Kernels::is_supported() {
            return vec![&x86::Avx2Kernels];
        }
        Vec::new()
    }
    #[cfg(target_arch = "aarch64")]
    {
        if aarch64::NeonKernels::is_supported() {
            return vec![&aarch64::NeonKernels];
        }
        Vec::new()
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Kernels;
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi16, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8,
        _mm256_and_si256, _mm256_cmpeq_epi16, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_maddubs_epi16, _mm256_sad_epu8, _mm256_set1_epi16, _mm256_set1_epi8,
        _mm256_setr_epi16, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
        _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Number of `u64` words per 256-bit AVX2 lane group.
    const LANES: usize = 4;

    /// AVX2 kernels: 256-bit XOR/AND passes and the Muła nibble-lookup
    /// vector popcount (`pshufb` + `psadbw`), four words per step.
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct Avx2Kernels;

    impl Avx2Kernels {
        /// Runtime probe for every feature the kernels are compiled with.
        pub(super) fn is_supported() -> bool {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
        }
    }

    /// Per-64-bit-lane popcount of a 256-bit vector: nibble lookup via
    /// `pshufb`, horizontal byte sums via `psadbw`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Sums the four 64-bit lanes of an accumulator vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum(v: __m256i) -> u64 {
        let mut lanes = [0u64; LANES];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(words: &[u64]) -> __m256i {
        debug_assert_eq!(words.len(), LANES);
        _mm256_loadu_si256(words.as_ptr().cast())
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn popcount_avx2(words: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = words.chunks_exact(LANES);
        let tail = chunks.remainder();
        for chunk in chunks {
            acc = _mm256_add_epi64(acc, popcount256(load(chunk)));
        }
        // `count_ones` compiles to `popcnt` here: the feature is enabled on
        // this function, so the scalar tail is still hardware popcount.
        horizontal_sum(acc) + tail.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(load(chunk), load(other))));
        }
        let tail_start = a.len() - a_tail.len();
        horizontal_sum(acc)
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn and_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(load(chunk), load(other))));
        }
        let tail_start = a.len() - a_tail.len();
        horizontal_sum(acc)
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x & y).count_ones()))
                .sum::<u64>()
    }

    /// Fused bit-sliced dot product of `row` against one plane group,
    /// computed in the **byte domain**: the row chunk is loaded once per
    /// lane group and reused across every plane; each masked plane's
    /// per-byte popcounts (Muła nibble LUT) are multiplied by the plane
    /// weight `2^p` and pair-summed into 16-bit lanes with one
    /// `vpmaddubsw`, skipping both the per-chunk `vpsadbw` reduction and
    /// the per-plane horizontal sum of the per-centroid path — one 32-bit
    /// reduction finishes a whole weight group.
    ///
    /// `vpmaddubsw` saturates at `i16::MAX`, so exactness is kept by
    /// construction: plane weights are capped at `2^6` (planes are
    /// processed in weight groups of ≤ 7, each group's partial total
    /// shifted by `2^(7g)` at the end), which bounds one chunk's
    /// contribution to a 16-bit lane by `2·8·(2^7 − 1) = 2032`, and the
    /// 16-bit accumulator is drained into 32-bit lanes (`vpmaddwd` by 1)
    /// every `⌊32767 / per-chunk-bound⌋` chunks — the saturation point is
    /// unreachable.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn plane_dot_group_avx2(group: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
        debug_assert_eq!(row.len(), words_per_plane);
        debug_assert!(words_per_plane == 0 || group.len().is_multiple_of(words_per_plane));
        let planes = group.len().checked_div(words_per_plane).unwrap_or(0);
        let full = words_per_plane / LANES * LANES;
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let one16 = _mm256_set1_epi16(1);
        let mut total = 0u64;
        let mut base = 0usize;
        while base < planes {
            let group_planes = (planes - base).min(7);
            let mut weights = [_mm256_setzero_si256(); 7];
            for (p, weight) in weights.iter_mut().take(group_planes).enumerate() {
                *weight = _mm256_set1_epi8(1i8 << p);
            }
            // One chunk adds at most `2·8·2^p` per plane to a 16-bit lane;
            // summed over the weight group that is `16·(2^group_planes − 1)`.
            let drain_every = 32_767 / (16 * ((1usize << group_planes) - 1));
            let mut acc32 = _mm256_setzero_si256();
            let mut acc16 = _mm256_setzero_si256();
            let mut chunks_held = 0usize;
            let mut chunk_start = 0usize;
            while chunk_start < full {
                // Raw-pointer loads: the slice-indexed form re-checks
                // bounds on every strided plane access (the optimiser
                // cannot see `start + LANES ≤ group.len()` through the
                // multiplication), which costs ~15% on this hot loop. The
                // asserts above pin the invariants that make these in
                // bounds: `chunk_start + LANES ≤ full ≤ words_per_plane`
                // and `base + p < planes`.
                let row_vec = _mm256_loadu_si256(row.as_ptr().add(chunk_start).cast());
                for (p, weight) in weights.iter().take(group_planes).enumerate() {
                    let start = (base + p) * words_per_plane + chunk_start;
                    let masked = _mm256_and_si256(
                        row_vec,
                        _mm256_loadu_si256(group.as_ptr().add(start).cast()),
                    );
                    let lo = _mm256_and_si256(masked, low_mask);
                    let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(masked), low_mask);
                    let bytes = _mm256_add_epi8(
                        _mm256_shuffle_epi8(lookup, lo),
                        _mm256_shuffle_epi8(lookup, hi),
                    );
                    acc16 = _mm256_add_epi16(acc16, _mm256_maddubs_epi16(bytes, *weight));
                }
                chunks_held += 1;
                if chunks_held == drain_every {
                    acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(acc16, one16));
                    acc16 = _mm256_setzero_si256();
                    chunks_held = 0;
                }
                chunk_start += LANES;
            }
            acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(acc16, one16));
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc32);
            total += lanes.iter().map(|&lane| u64::from(lane)).sum::<u64>() << base;
            for w in full..words_per_plane {
                let row_word = row[w];
                for p in 0..group_planes {
                    let word = group[(base + p) * words_per_plane + w];
                    total += u64::from((word & row_word).count_ones()) << (base + p);
                }
            }
            base += group_planes;
        }
        total
    }

    /// Members per block in [`counts_dot_multi_avx2`]: enough to amortise
    /// the shared row-bit mask expansion, few enough that the per-member
    /// 32-bit accumulators stay in registers.
    const COUNT_MEMBERS: usize = 4;

    /// Fused multi-centroid dot product over expanded `u16` counts (the
    /// [`Kernels::counts_dot_multi`] contract). Every 16 row bits are
    /// expanded **once** into a 16-lane `0xFFFF`/`0x0000` mask (broadcast +
    /// `vpand` against per-lane bit selectors + `vpcmpeqw`) and shared by
    /// all members of a block: each member then costs one counts load, one
    /// `vpand`, and one `vpmaddwd`-by-1 into its 32-bit accumulator. All
    /// planes of the counter are consumed at once, so for K centroids of P
    /// planes this does O(K + 3) vector ops per 16 dimensions where the
    /// bit-sliced path does O(10·K·P / 4).
    ///
    /// Exactness relies on the caller's gates (counts ≤ `i16::MAX`,
    /// `lanes · i16::MAX ≤ i32::MAX`): masked counts are non-negative
    /// `i16`s, so `vpmaddwd` pair sums and the 32-bit lane accumulators
    /// never wrap.
    #[target_feature(enable = "avx2")]
    unsafe fn counts_dot_multi_avx2(counts: &[u16], row: &[u64], out: &mut [u64]) {
        debug_assert_eq!(counts.len(), row.len() * 64 * out.len());
        let mut member = 0usize;
        while out.len() - member >= COUNT_MEMBERS {
            counts_dot_block_avx2::<COUNT_MEMBERS>(counts, member, row, out);
            member += COUNT_MEMBERS;
        }
        match out.len() - member {
            3 => counts_dot_block_avx2::<3>(counts, member, row, out),
            2 => counts_dot_block_avx2::<2>(counts, member, row, out),
            1 => counts_dot_block_avx2::<1>(counts, member, row, out),
            _ => {}
        }
    }

    /// One member block of [`counts_dot_multi_avx2`]. The block width is a
    /// const generic so the member loops fully unroll and the `MEMBERS`
    /// 32-bit accumulators live in registers — with a runtime bound the
    /// compiler kept the accumulator array in memory, which tripled the
    /// loop's cost.
    #[target_feature(enable = "avx2")]
    unsafe fn counts_dot_block_avx2<const MEMBERS: usize>(
        counts: &[u16],
        member_base: usize,
        row: &[u64],
        out: &mut [u64],
    ) {
        debug_assert!(member_base + MEMBERS <= out.len());
        let lanes_per_member = row.len() * 64;
        let bit_sel = _mm256_setr_epi16(
            1,
            2,
            4,
            8,
            16,
            32,
            64,
            128,
            256,
            512,
            1024,
            2048,
            4096,
            8192,
            16384,
            i16::MIN,
        );
        let one16 = _mm256_set1_epi16(1);
        let mut acc = [_mm256_setzero_si256(); MEMBERS];
        for (w, &word) in row.iter().enumerate() {
            for quarter in 0..4 {
                let piece = (word >> (16 * quarter)) & 0xFFFF;
                if piece == 0 {
                    continue;
                }
                let broadcast = _mm256_set1_epi16(piece as i16);
                let mask = _mm256_cmpeq_epi16(_mm256_and_si256(broadcast, bit_sel), bit_sel);
                let lane = w * 64 + quarter * 16;
                for (member, slot) in acc.iter_mut().enumerate() {
                    // SAFETY: `lane + 16 ≤ lanes_per_member` (16 lanes per
                    // quarter word) and `member_base + member < out.len()`,
                    // so the 16 `u16`s read here sit inside `counts` per
                    // the length contract asserted by the caller.
                    let member_counts = _mm256_loadu_si256(
                        counts
                            .as_ptr()
                            .add((member_base + member) * lanes_per_member + lane)
                            .cast(),
                    );
                    let selected = _mm256_and_si256(member_counts, mask);
                    *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(selected, one16));
                }
            }
        }
        for (member, acc32) in acc.into_iter().enumerate() {
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc32);
            out[member_base + member] += lanes.iter().map(|&lane| u64::from(lane)).sum::<u64>();
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_into_avx2(dst: &mut [u64], src: &[u64]) {
        let chunks = dst.chunks_exact_mut(LANES);
        let split = src.len() - src.len() % LANES;
        for (chunk, other) in chunks.zip(src.chunks_exact(LANES)) {
            let value = _mm256_xor_si256(load(chunk), load(other));
            _mm256_storeu_si256(chunk.as_mut_ptr().cast(), value);
        }
        for (d, s) in dst[split..].iter_mut().zip(&src[split..]) {
            *d ^= s;
        }
    }

    impl Kernels for Avx2Kernels {
        fn name(&self) -> &'static str {
            "avx2"
        }

        fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            // SAFETY: `is_supported` gated construction of this kernel on
            // runtime AVX2 support.
            unsafe { xor_into_avx2(dst, src) }
        }

        fn popcount(&self, words: &[u64]) -> u64 {
            // SAFETY: see `xor_into`.
            unsafe { popcount_avx2(words) }
        }

        fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { hamming_avx2(a, b) }
        }

        fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { and_popcount_avx2(a, b) }
        }

        fn plane_dot(&self, planes: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
            debug_assert_ne!(words_per_plane, 0);
            debug_assert_eq!(planes.len() % words_per_plane, 0);
            debug_assert_eq!(row.len(), words_per_plane);
            // SAFETY: see `xor_into`.
            unsafe { plane_dot_group_avx2(planes, words_per_plane, row) }
        }

        fn plane_dot_multi(
            &self,
            planes: &[u64],
            words_per_plane: usize,
            group_plane_counts: &[usize],
            row: &[u64],
            out: &mut [u64],
        ) {
            debug_assert_ne!(words_per_plane, 0);
            debug_assert_eq!(row.len(), words_per_plane);
            debug_assert_eq!(out.len(), group_plane_counts.len());
            let mut offset = 0;
            for (slot, &count) in out.iter_mut().zip(group_plane_counts) {
                let end = offset + count * words_per_plane;
                // SAFETY: see `xor_into`.
                *slot +=
                    unsafe { plane_dot_group_avx2(&planes[offset..end], words_per_plane, row) };
                offset = end;
            }
        }

        fn hamming_multi(&self, row: &[u64], stacked: &[u64], out: &mut [u64]) {
            debug_assert_eq!(stacked.len(), row.len() * out.len());
            for (k, slot) in out.iter_mut().enumerate() {
                // SAFETY: see `xor_into`. Direct internal call keeps the
                // per-centroid loop free of virtual dispatch.
                *slot = unsafe { hamming_avx2(row, &stacked[k * row.len()..][..row.len()]) };
            }
        }

        fn counts_dot_multi(&self, counts: &[u16], row: &[u64], out: &mut [u64]) -> bool {
            debug_assert_eq!(counts.len(), row.len() * 64 * out.len());
            // SAFETY: see `xor_into`.
            unsafe { counts_dot_multi_avx2(counts, row, out) };
            true
        }

        // `bundle_add_planes` deliberately keeps the trait's default body:
        // the carry add is pure AND/XOR data movement with an early exit,
        // which the compiler already auto-vectorizes; a hand-written
        // AVX2 version measured *slower* (extra liveness reduction per
        // plane) in the `kernels` bench.
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use super::Kernels;
    use core::arch::aarch64::{
        uint64x2_t, vaddlvq_u8, vandq_u64, vcntq_u8, veorq_u64, vld1q_u64, vreinterpretq_u8_u64,
        vst1q_u64,
    };

    /// Number of `u64` words per 128-bit NEON vector.
    const LANES: usize = 2;

    /// NEON kernels: 128-bit XOR/AND passes and the `cnt` byte popcount
    /// with an across-vector widening sum.
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct NeonKernels;

    impl NeonKernels {
        pub(super) fn is_supported() -> bool {
            std::arch::is_aarch64_feature_detected!("neon")
        }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn load(words: &[u64]) -> uint64x2_t {
        debug_assert_eq!(words.len(), LANES);
        vld1q_u64(words.as_ptr())
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn popcount128(v: uint64x2_t) -> u64 {
        u64::from(vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))))
    }

    #[target_feature(enable = "neon")]
    unsafe fn popcount_neon(words: &[u64]) -> u64 {
        let chunks = words.chunks_exact(LANES);
        let tail = chunks.remainder();
        let mut total = 0u64;
        for chunk in chunks {
            total += popcount128(load(chunk));
        }
        total + tail.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
    }

    #[target_feature(enable = "neon")]
    unsafe fn hamming_neon(a: &[u64], b: &[u64]) -> u64 {
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        let tail_start = a.len() - a_tail.len();
        let mut total = 0u64;
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            total += popcount128(veorq_u64(load(chunk), load(other)));
        }
        total
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "neon")]
    unsafe fn and_popcount_neon(a: &[u64], b: &[u64]) -> u64 {
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        let tail_start = a.len() - a_tail.len();
        let mut total = 0u64;
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            total += popcount128(vandq_u64(load(chunk), load(other)));
        }
        total
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x & y).count_ones()))
                .sum::<u64>()
    }

    /// Fused bit-sliced dot product of `row` against one plane group: the
    /// row chunk is loaded once per vector and reused across every plane.
    #[target_feature(enable = "neon")]
    unsafe fn plane_dot_group_neon(group: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
        let full = words_per_plane / LANES * LANES;
        let mut total = 0u64;
        for chunk_start in (0..full).step_by(LANES) {
            let row_vec = load(&row[chunk_start..chunk_start + LANES]);
            for (p, plane) in group.chunks_exact(words_per_plane).enumerate() {
                let masked = vandq_u64(row_vec, load(&plane[chunk_start..chunk_start + LANES]));
                total += popcount128(masked) << p;
            }
        }
        for w in full..words_per_plane {
            let row_word = row[w];
            for (p, plane) in group.chunks_exact(words_per_plane).enumerate() {
                total += u64::from((plane[w] & row_word).count_ones()) << p;
            }
        }
        total
    }

    #[target_feature(enable = "neon")]
    unsafe fn xor_into_neon(dst: &mut [u64], src: &[u64]) {
        let split = dst.len() - dst.len() % LANES;
        for (chunk, other) in dst.chunks_exact_mut(LANES).zip(src.chunks_exact(LANES)) {
            let value = veorq_u64(load(chunk), load(other));
            vst1q_u64(chunk.as_mut_ptr(), value);
        }
        for (d, s) in dst[split..].iter_mut().zip(&src[split..]) {
            *d ^= s;
        }
    }

    impl Kernels for NeonKernels {
        fn name(&self) -> &'static str {
            "neon"
        }

        fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            // SAFETY: `is_supported` gated construction of this kernel on
            // runtime NEON support.
            unsafe { xor_into_neon(dst, src) }
        }

        fn popcount(&self, words: &[u64]) -> u64 {
            // SAFETY: see `xor_into`.
            unsafe { popcount_neon(words) }
        }

        fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { hamming_neon(a, b) }
        }

        fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { and_popcount_neon(a, b) }
        }

        fn plane_dot(&self, planes: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
            debug_assert_ne!(words_per_plane, 0);
            debug_assert_eq!(planes.len() % words_per_plane, 0);
            debug_assert_eq!(row.len(), words_per_plane);
            // SAFETY: see `xor_into`.
            unsafe { plane_dot_group_neon(planes, words_per_plane, row) }
        }

        fn plane_dot_multi(
            &self,
            planes: &[u64],
            words_per_plane: usize,
            group_plane_counts: &[usize],
            row: &[u64],
            out: &mut [u64],
        ) {
            debug_assert_ne!(words_per_plane, 0);
            debug_assert_eq!(row.len(), words_per_plane);
            debug_assert_eq!(out.len(), group_plane_counts.len());
            let mut offset = 0;
            for (slot, &count) in out.iter_mut().zip(group_plane_counts) {
                let end = offset + count * words_per_plane;
                // SAFETY: see `xor_into`.
                *slot +=
                    unsafe { plane_dot_group_neon(&planes[offset..end], words_per_plane, row) };
                offset = end;
            }
        }

        fn hamming_multi(&self, row: &[u64], stacked: &[u64], out: &mut [u64]) {
            debug_assert_eq!(stacked.len(), row.len() * out.len());
            for (k, slot) in out.iter_mut().enumerate() {
                // SAFETY: see `xor_into`. Direct internal call keeps the
                // per-centroid loop free of virtual dispatch.
                *slot = unsafe { hamming_neon(row, &stacked[k * row.len()..][..row.len()]) };
            }
        }
    }
}
