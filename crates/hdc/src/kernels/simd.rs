//! Explicit SIMD implementations of the [`Kernels`] trait.
//!
//! Compiled only with the `simd` crate feature on `x86_64` (AVX2) and
//! `aarch64` (NEON). Selection happens at runtime through
//! [`detect`]: the instruction sets are probed once and the matching
//! implementation is handed out as a `&'static dyn Kernels`, so a binary
//! built on one machine runs correctly (falling back to scalar) on another.
//!
//! This is the one module in the crate allowed to use `unsafe`: the vendor
//! intrinsics require it. Every unsafe function is private, guarded by the
//! corresponding `#[target_feature]`, and only reachable after the runtime
//! probe in [`detect`] has confirmed the CPU supports that feature. Results
//! are bit-exact with [`super::ScalarKernels`] — the popcount algorithms
//! differ (nibble-lookup vs `count_ones`) but both are exact integer
//! popcounts, so there is nothing approximate to diverge.
#![allow(unsafe_code)]

use super::Kernels;

/// Probes the running CPU once per call site chain and returns the best
/// SIMD kernels available, or `None` when the CPU lacks support.
pub(super) fn detect() -> Option<&'static dyn Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::Avx2Kernels::is_supported() {
            return Some(&x86::Avx2Kernels);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        if aarch64::NeonKernels::is_supported() {
            return Some(&aarch64::NeonKernels);
        }
        None
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Kernels;
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_loadu_si256,
        _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Number of `u64` words per 256-bit AVX2 lane group.
    const LANES: usize = 4;

    /// AVX2 kernels: 256-bit XOR/AND passes and the Muła nibble-lookup
    /// vector popcount (`pshufb` + `psadbw`), four words per step.
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct Avx2Kernels;

    impl Avx2Kernels {
        /// Runtime probe for every feature the kernels are compiled with.
        pub(super) fn is_supported() -> bool {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
        }
    }

    /// Per-64-bit-lane popcount of a 256-bit vector: nibble lookup via
    /// `pshufb`, horizontal byte sums via `psadbw`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Sums the four 64-bit lanes of an accumulator vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum(v: __m256i) -> u64 {
        let mut lanes = [0u64; LANES];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(words: &[u64]) -> __m256i {
        debug_assert_eq!(words.len(), LANES);
        _mm256_loadu_si256(words.as_ptr().cast())
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn popcount_avx2(words: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = words.chunks_exact(LANES);
        let tail = chunks.remainder();
        for chunk in chunks {
            acc = _mm256_add_epi64(acc, popcount256(load(chunk)));
        }
        // `count_ones` compiles to `popcnt` here: the feature is enabled on
        // this function, so the scalar tail is still hardware popcount.
        horizontal_sum(acc) + tail.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(load(chunk), load(other))));
        }
        let tail_start = a.len() - a_tail.len();
        horizontal_sum(acc)
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    unsafe fn and_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(load(chunk), load(other))));
        }
        let tail_start = a.len() - a_tail.len();
        horizontal_sum(acc)
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x & y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_into_avx2(dst: &mut [u64], src: &[u64]) {
        let chunks = dst.chunks_exact_mut(LANES);
        let split = src.len() - src.len() % LANES;
        for (chunk, other) in chunks.zip(src.chunks_exact(LANES)) {
            let value = _mm256_xor_si256(load(chunk), load(other));
            _mm256_storeu_si256(chunk.as_mut_ptr().cast(), value);
        }
        for (d, s) in dst[split..].iter_mut().zip(&src[split..]) {
            *d ^= s;
        }
    }

    impl Kernels for Avx2Kernels {
        fn name(&self) -> &'static str {
            "avx2"
        }

        fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            // SAFETY: `is_supported` gated construction of this kernel on
            // runtime AVX2 support.
            unsafe { xor_into_avx2(dst, src) }
        }

        fn popcount(&self, words: &[u64]) -> u64 {
            // SAFETY: see `xor_into`.
            unsafe { popcount_avx2(words) }
        }

        fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { hamming_avx2(a, b) }
        }

        fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { and_popcount_avx2(a, b) }
        }

        // `bundle_add_planes` deliberately keeps the trait's default body:
        // the carry add is pure AND/XOR data movement with an early exit,
        // which the compiler already auto-vectorizes; a hand-written
        // AVX2 version measured *slower* (extra liveness reduction per
        // plane) in the `kernels` bench.
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use super::Kernels;
    use core::arch::aarch64::{
        uint64x2_t, vaddlvq_u8, vandq_u64, vcntq_u8, veorq_u64, vld1q_u64, vreinterpretq_u8_u64,
        vst1q_u64,
    };

    /// Number of `u64` words per 128-bit NEON vector.
    const LANES: usize = 2;

    /// NEON kernels: 128-bit XOR/AND passes and the `cnt` byte popcount
    /// with an across-vector widening sum.
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct NeonKernels;

    impl NeonKernels {
        pub(super) fn is_supported() -> bool {
            std::arch::is_aarch64_feature_detected!("neon")
        }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn load(words: &[u64]) -> uint64x2_t {
        debug_assert_eq!(words.len(), LANES);
        vld1q_u64(words.as_ptr())
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn popcount128(v: uint64x2_t) -> u64 {
        u64::from(vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))))
    }

    #[target_feature(enable = "neon")]
    unsafe fn popcount_neon(words: &[u64]) -> u64 {
        let chunks = words.chunks_exact(LANES);
        let tail = chunks.remainder();
        let mut total = 0u64;
        for chunk in chunks {
            total += popcount128(load(chunk));
        }
        total + tail.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
    }

    #[target_feature(enable = "neon")]
    unsafe fn hamming_neon(a: &[u64], b: &[u64]) -> u64 {
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        let tail_start = a.len() - a_tail.len();
        let mut total = 0u64;
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            total += popcount128(veorq_u64(load(chunk), load(other)));
        }
        total
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "neon")]
    unsafe fn and_popcount_neon(a: &[u64], b: &[u64]) -> u64 {
        let chunks = a.chunks_exact(LANES);
        let a_tail = chunks.remainder();
        let tail_start = a.len() - a_tail.len();
        let mut total = 0u64;
        for (chunk, other) in chunks.zip(b.chunks_exact(LANES)) {
            total += popcount128(vandq_u64(load(chunk), load(other)));
        }
        total
            + a_tail
                .iter()
                .zip(&b[tail_start..])
                .map(|(x, y)| u64::from((x & y).count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "neon")]
    unsafe fn xor_into_neon(dst: &mut [u64], src: &[u64]) {
        let split = dst.len() - dst.len() % LANES;
        for (chunk, other) in dst.chunks_exact_mut(LANES).zip(src.chunks_exact(LANES)) {
            let value = veorq_u64(load(chunk), load(other));
            vst1q_u64(chunk.as_mut_ptr(), value);
        }
        for (d, s) in dst[split..].iter_mut().zip(&src[split..]) {
            *d ^= s;
        }
    }

    impl Kernels for NeonKernels {
        fn name(&self) -> &'static str {
            "neon"
        }

        fn xor_into(&self, dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            // SAFETY: `is_supported` gated construction of this kernel on
            // runtime NEON support.
            unsafe { xor_into_neon(dst, src) }
        }

        fn popcount(&self, words: &[u64]) -> u64 {
            // SAFETY: see `xor_into`.
            unsafe { popcount_neon(words) }
        }

        fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { hamming_neon(a, b) }
        }

        fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
            debug_assert_eq!(a.len(), b.len());
            // SAFETY: see `xor_into`.
            unsafe { and_popcount_neon(a, b) }
        }
    }
}
